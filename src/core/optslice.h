/**
 * @file
 * OptSlice: the end-to-end optimistic hybrid dynamic-slicing
 * pipeline (Section 5).
 *
 * Phases:
 *  1. profile likely invariants (including call contexts) to
 *     stability;
 *  2. pick the most accurate static analyses that run within budget —
 *     context-sensitive if it completes, context-insensitive
 *     otherwise — separately for the sound and predicated variants
 *     and separately for points-to and slicing, exactly like the
 *     AT columns of Table 2;
 *  3. choose non-trivial slice endpoints (sound static slice at least
 *     a threshold size, Section 6.1.2);
 *  4. run the testing corpus under the traditional hybrid slicer and
 *     under OptSlice (speculative, invariant-checked, with rollback
 *     to the hybrid configuration on violation).
 */

#pragma once

#include <string>
#include <vector>

#include "analysis/slicer.h"
#include "core/cost_model.h"
#include "dyn/fault_injector.h"
#include "dyn/violation.h"
#include "workloads/workloads.h"

namespace oha::core {

/** OptSlice pipeline configuration. */
struct OptSliceConfig
{
    std::size_t maxProfileRuns = 48;
    std::size_t convergenceWindow = 6;
    /** Non-trivial endpoint threshold (instructions in sound slice). */
    std::size_t minSliceSize = 25;
    std::size_t maxEndpoints = 3;
    /** Context budget for the CS points-to attempt. */
    std::uint32_t csContextBudget = 4000;
    /** Work budget for one static slice. */
    std::uint64_t sliceWorkBudget = 3'000'000;
    /** >1 enables aggressive likely-unreachable code (Section 2.1). */
    std::uint64_t aggressiveLucMinVisits = 0;
    /** Worker threads for batched runs (profiling and test
     *  evaluation); 0 = OHA_THREADS env var, 1 = serial.  Results are
     *  merged in input-index order, so they are identical for any
     *  value — only wall-clock time changes. */
    std::size_t threads = 0;
    /** Worker threads for each wavefront-parallel Andersen solve
     *  inside the static phase; 0 = the OHA_THREADS pool size.  The
     *  solver is deterministic, so results are byte-identical at any
     *  value (AndersenOptions::solverThreads). */
    std::uint32_t solverThreads = 0;
    /** Record-once/analyze-many: execute each testing input once with
     *  a TraceRecorder, then drive every per-endpoint hybrid and
     *  optimistic Giri configuration — and the rollback re-analysis —
     *  from TraceReplayer.  All reported results are byte-identical
     *  to the direct path; only interpretedSteps/replayedEvents (and
     *  wall-clock time) differ. */
    bool useTraceReplay = true;
    /** With useTraceReplay: minimum worker width for the reference
     *  replay batch.  Giri slices per (input, endpoint) task rather
     *  than per address range, so replay parallelism here is axis (a)
     *  of sharded replay — many independent tasks reading one
     *  immutable capture concurrently; this floor lets
     *  OHA_REPLAY_SHARDS widen those batches beyond OHA_THREADS
     *  without touching interpreter-bound phases.  0 = the
     *  OHA_REPLAY_SHARDS env var (validated + clamped to [1, 64];
     *  default 1 = no widening).  Results are index-merged, hence
     *  identical at any width. */
    std::size_t replayShards = 0;
    /** With useTraceReplay: serve captures from the shared
     *  cross-request cache (exec/trace_cache.h) instead of recording
     *  privately — see OptFtConfig::cacheTraceCaptures. */
    bool cacheTraceCaptures = true;
    /** Serve profiling observations from the shared cache — see
     *  OptFtConfig::cacheProfileObservations. */
    bool cacheProfileObservations = true;
    /** Adaptive misspeculation recovery: after a rollback, demote the
     *  violated invariant, re-run the predicated points-to + slicing
     *  phase through the memo caches, rebuild the optimistic plans,
     *  and continue the remaining (input, endpoint) tasks under the
     *  repaired plans.  Off reproduces the historical behavior. */
    bool adaptiveRecovery = true;
    /** Circuit breaker: maximum demote + re-predicate repairs before
     *  the remaining corpus degrades to the sound hybrid plans. */
    std::size_t maxRepredications = 4;
    /** Circuit breaker: degrade when rollbacks / tasks-evaluated
     *  exceeds this rate (see minRunsForMisspecRate). */
    double misspecRateThreshold = 0.5;
    /** Rate threshold only arms after this many evaluated tasks. */
    std::size_t minRunsForMisspecRate = 8;
    /** Non-zero: deterministically perturb the profiled invariants
     *  (dyn::FaultInjector) so the testing corpus mis-speculates.
     *  CI sweeps this via OHA_FAULT_SEED (see ci/run.sh faults). */
    std::uint64_t faultSeed = 0;
    CostModel cost;
};

/** Analysis-type pick for one analysis (a Table 2 "AT" cell). */
struct AnalysisPick
{
    bool contextSensitive = false;
    double seconds = 0;
};

/** End-to-end result for one benchmark (Figure 6 / Table 2 row). */
struct OptSliceResult
{
    std::string name;

    AnalysisPick soundPts, soundSlice;
    AnalysisPick optPts, optSlice;

    double profileSeconds = 0;
    std::size_t profileRunsUsed = 0;

    std::size_t endpoints = 0;
    std::size_t testRuns = 0;
    double baselineSeconds = 0;
    RunCost hybrid;
    RunCost optimistic;
    std::uint64_t misSpeculations = 0;
    bool sliceResultsMatch = true;

    /** Mean static slice sizes over the chosen endpoints (Figure 10). */
    double soundSliceSize = 0;
    double optSliceSize = 0;
    /** Load/store alias rates over the optimistic access set (Fig 9). */
    double soundAliasRate = 0;
    double optAliasRate = 0;

    double dynSpeedup = 1.0;
    /** Break-even baseline-seconds vs. traditional hybrid; <0 never;
     *  0 means optimistic is cheaper from the very first run. */
    double breakEven = -1.0;

    // Execute-once/replay-many accounting over the testing corpus
    // (see OptFtResult for the parity rules: the first two differ
    // between modes by design, the seconds metrics do not).
    std::uint64_t interpretedSteps = 0;
    std::uint64_t replayedEvents = 0;
    double recordSeconds = 0;
    double replayRollbackSeconds = 0;

    // Adaptive-recovery accounting (see OptFtResult).
    std::size_t repredications = 0;
    double repredStaticSeconds = 0;
    bool circuitBroken = false;
    std::vector<dyn::Violation> demotions;
    std::vector<dyn::FaultInjection> injectedFaults;
};

/** Run the whole OptSlice pipeline on @p workload. */
OptSliceResult runOptSlice(const workloads::Workload &workload,
                           const OptSliceConfig &config = {});

} // namespace oha::core
