/**
 * @file
 * Tests for the IR text parser: hand-written programs, semantics of
 * parsed modules, error-free round-trips with the printer — including
 * a parameterized print->parse->print round-trip over every benchmark
 * workload module.
 */

#include <gtest/gtest.h>

#include "exec/interpreter.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "workloads/workloads.h"

namespace oha::ir {
namespace {

TEST(IrParser, ParsesMinimalProgram)
{
    const auto module = parseModule(R"(
func main() {
  entry:
    r0 = 40
    r1 = 2
    r2 = r0 + r1
    output r2
    ret
}
)");
    exec::Interpreter interp(*module, {});
    const auto result = interp.run();
    ASSERT_TRUE(result.finished());
    ASSERT_EQ(result.outputs.size(), 1u);
    EXPECT_EQ(result.outputs[0].second, 42);
}

TEST(IrParser, ParsesGlobalsAndMemory)
{
    const auto module = parseModule(R"(
global cell[2]

func main() {
  entry:
    r0 = &cell
    r1 = &r0[1]
    r2 = 7
    *r1 = r2
    r3 = *r1
    output r3
    ret
}
)");
    exec::Interpreter interp(*module, {});
    EXPECT_EQ(interp.run().outputs[0].second, 7);
}

TEST(IrParser, ParsesControlFlowAndLoops)
{
    const auto module = parseModule(R"(
func main() {
  entry:
    r0 = 0
    r1 = 0
    r2 = 5
    r3 = 1
    br head
  head:
    r4 = r0 < r2
    condbr r4, body, exit
  body:
    r1 = r1 + r0
    r0 = r0 + r3
    br head
  exit:
    output r1
    ret
}
)");
    exec::Interpreter interp(*module, {});
    EXPECT_EQ(interp.run().outputs[0].second, 10);
}

TEST(IrParser, ParsesCallsIcallsAndForwardReferences)
{
    // `helper` is used before its definition appears.
    const auto module = parseModule(R"(
func main() {
  entry:
    r0 = 5
    r1 = call helper(r0)
    r2 = &helper
    r3 = icall *r2(r1)
    output r3
    ret
}

func helper(r0) {
  entry:
    r1 = r0 * r0
    ret r1
}
)");
    exec::Interpreter interp(*module, {});
    EXPECT_EQ(interp.run().outputs[0].second, 625);
}

TEST(IrParser, ParsesThreadsAndLocks)
{
    const auto module = parseModule(R"(
global g
global m

func worker() {
  entry:
    r0 = &m
    lock r0
    r1 = &g
    r2 = *r1
    r3 = 1
    r4 = r2 + r3
    *r1 = r4
    unlock r0
    ret r4
}

func main() {
  entry:
    r0 = spawn worker()
    r1 = spawn worker()
    r2 = join r0
    r3 = join r1
    r4 = &g
    r5 = *r4
    output r5
    ret
}
)");
    exec::ExecConfig config;
    config.scheduleSeed = 3;
    exec::Interpreter interp(*module, config);
    EXPECT_EQ(interp.run().outputs[0].second, 2);
}

TEST(IrParser, ParsesInputWithDynamicIndex)
{
    const auto module = parseModule(R"(
func main() {
  entry:
    r0 = input[1]
    r1 = input[0 + r0]
    output r1
    ret
}
)");
    exec::ExecConfig config;
    config.input = {10, 2, 30};
    exec::Interpreter interp(*module, config);
    EXPECT_EQ(interp.run().outputs[0].second, 30);
}

TEST(IrParser, CommentsAndBlankLinesAreIgnored)
{
    const auto module = parseModule(R"(
; a module-level comment

func main() {   ; trailing comment
  entry:        ; block comment
    r0 = 1      ; instruction comment

    output r0
    ret
}
)");
    exec::Interpreter interp(*module, {});
    EXPECT_EQ(interp.run().outputs[0].second, 1);
}

TEST(IrParser, RoundTripsItsOwnOutput)
{
    const auto module = parseModule(R"(
global table[4]

func pick(r0) {
  entry:
    r1 = &table
    r2 = &r1[r0]
    r3 = *r2
    ret r3
}

func main() {
  entry:
    r0 = &table
    r1 = &pick
    r2 = &r0[2]
    r3 = 9
    *r2 = r3
    r4 = call pick(r3)
    r5 = 0
    r6 = r3 <= r5
    condbr r6, low, high
  low:
    output r5
    ret
  high:
    output r4
    ret
}
)");
    const std::string once = printModule(*module);
    const auto reparsed = parseModule(once);
    EXPECT_EQ(printModule(*reparsed), once);
}

/** Round-trip property over every benchmark module. */
class WorkloadRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadRoundTrip, PrintParsePrintIsStable)
{
    const std::string name = GetParam();
    const bool race = [&] {
        for (const auto &n : workloads::raceWorkloadNames())
            if (n == name)
                return true;
        return false;
    }();
    const auto workload = race ? workloads::makeRaceWorkload(name, 1, 1)
                               : workloads::makeSliceWorkload(name, 1, 1);

    const std::string once = printModule(*workload.module);
    const auto reparsed = parseModule(once);
    EXPECT_EQ(printModule(*reparsed), once);

    // The reparsed module must behave identically.
    exec::Interpreter a(*workload.module, workload.testingSet.front());
    exec::Interpreter b(*reparsed, workload.testingSet.front());
    EXPECT_EQ(a.run().outputs, b.run().outputs);
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names = workloads::raceWorkloadNames();
    for (const auto &n : workloads::sliceWorkloadNames())
        names.push_back(n);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadRoundTrip,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace oha::ir
