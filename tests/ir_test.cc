/**
 * @file
 * Unit tests for the IR: builder, module finalization, printer,
 * verifier helpers and CFG reachability.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/cfg.h"
#include "ir/printer.h"

namespace oha::ir {
namespace {

TEST(IrBuilder, BuildsStraightLineFunction)
{
    Module module;
    IRBuilder builder(module);
    Function *main = builder.createFunction("main", 0);
    const Reg a = builder.constInt(2);
    const Reg b = builder.constInt(3);
    const Reg c = builder.add(a, b);
    builder.output(c);
    builder.ret();
    module.finalize();

    EXPECT_EQ(module.numFunctions(), 1u);
    EXPECT_EQ(module.entryFunction(), main);
    EXPECT_EQ(module.numInstrs(), 5u);
    EXPECT_EQ(module.numBlocks(), 1u);

    const Instruction &add = module.instr(2);
    EXPECT_EQ(add.op, Opcode::BinOp);
    EXPECT_EQ(add.func, main->id());
}

TEST(IrBuilder, RegistersAreFreshPerDef)
{
    Module module;
    IRBuilder builder(module);
    builder.createFunction("main", 0);
    const Reg a = builder.constInt(1);
    const Reg b = builder.constInt(2);
    EXPECT_NE(a, b);
    builder.ret();
    module.finalize();
}

TEST(IrModule, InstrIdsAreDenseAndResolvable)
{
    Module module;
    IRBuilder builder(module);
    Function *helper = builder.createFunction("helper", 1);
    builder.ret(0);
    builder.createFunction("main", 0);
    const Reg x = builder.constInt(10);
    builder.call(helper, {x});
    builder.ret();
    module.finalize();

    for (InstrId id = 0; id < module.numInstrs(); ++id)
        EXPECT_EQ(module.instr(id).id, id);
}

TEST(IrModule, FunctionLookupByName)
{
    Module module;
    IRBuilder builder(module);
    builder.createFunction("foo", 0);
    builder.ret();
    builder.createFunction("main", 0);
    builder.ret();
    module.finalize();

    EXPECT_NE(module.functionByName("foo"), nullptr);
    EXPECT_EQ(module.functionByName("bar"), nullptr);
}

TEST(IrModule, GlobalsGetSequentialIds)
{
    Module module;
    const std::uint32_t g0 = module.addGlobal("a", 4);
    const std::uint32_t g1 = module.addGlobal("b");
    EXPECT_EQ(g0, 0u);
    EXPECT_EQ(g1, 1u);
    IRBuilder builder(module);
    builder.createFunction("main", 0);
    builder.ret();
    module.finalize();
    EXPECT_EQ(module.globals()[0].size, 4u);
    EXPECT_EQ(module.globals()[1].size, 1u);
}

TEST(IrInstruction, UsedRegs)
{
    Instruction store;
    store.op = Opcode::Store;
    store.a = 3;
    store.b = 7;
    std::vector<Reg> uses;
    store.usedRegs(uses);
    EXPECT_EQ(uses, (std::vector<Reg>{3, 7}));

    Instruction icall;
    icall.op = Opcode::ICall;
    icall.a = 1;
    icall.args = {4, 5};
    icall.usedRegs(uses);
    EXPECT_EQ(uses, (std::vector<Reg>{1, 4, 5}));
}

TEST(IrInstruction, EvalBinOp)
{
    EXPECT_EQ(evalBinOp(BinOpKind::Add, 2, 3), 5);
    EXPECT_EQ(evalBinOp(BinOpKind::Div, 7, 0), 0);
    EXPECT_EQ(evalBinOp(BinOpKind::Mod, 7, 0), 0);
    EXPECT_EQ(evalBinOp(BinOpKind::Lt, 1, 2), 1);
    EXPECT_EQ(evalBinOp(BinOpKind::Ge, 1, 2), 0);
    EXPECT_EQ(evalBinOp(BinOpKind::Xor, 6, 3), 5);
}

Module *
buildDiamond(Module &module, BasicBlock *&thenB, BasicBlock *&elseB,
             BasicBlock *&exitB)
{
    IRBuilder builder(module);
    Function *main = builder.createFunction("main", 0);
    thenB = builder.createBlock(main, "then");
    elseB = builder.createBlock(main, "else");
    exitB = builder.createBlock(main, "exit");

    const Reg cond = builder.input(0);
    builder.condBr(cond, thenB, elseB);
    builder.setInsertPoint(thenB);
    builder.br(exitB);
    builder.setInsertPoint(elseB);
    builder.br(exitB);
    builder.setInsertPoint(exitB);
    builder.ret();
    module.finalize();
    return &module;
}

TEST(Cfg, DiamondReachability)
{
    Module module;
    BasicBlock *thenB, *elseB, *exitB;
    buildDiamond(module, thenB, elseB, exitB);
    const Function &main = *module.entryFunction();
    Cfg cfg(main);

    const BlockId entry = main.entry()->id();
    EXPECT_TRUE(cfg.reaches(entry, exitB->id()));
    EXPECT_TRUE(cfg.reaches(thenB->id(), exitB->id()));
    EXPECT_FALSE(cfg.reaches(thenB->id(), elseB->id()));
    EXPECT_FALSE(cfg.reaches(exitB->id(), entry));
    EXPECT_FALSE(cfg.reaches(entry, entry)); // acyclic: not reflexive

    EXPECT_EQ(cfg.successors(entry).size(), 2u);
    EXPECT_EQ(cfg.predecessors(exitB->id()).size(), 2u);
    EXPECT_EQ(cfg.reachableFromEntry().size(), 4u);
}

TEST(Cfg, LoopIsSelfReaching)
{
    Module module;
    IRBuilder builder(module);
    Function *main = builder.createFunction("main", 0);
    BasicBlock *loop = builder.createBlock(main, "loop");
    BasicBlock *exit = builder.createBlock(main, "exit");

    builder.br(loop);
    builder.setInsertPoint(loop);
    const Reg cond = builder.input(0);
    builder.condBr(cond, loop, exit);
    builder.setInsertPoint(exit);
    builder.ret();
    module.finalize();

    Cfg cfg(*main);
    EXPECT_TRUE(cfg.reaches(loop->id(), loop->id()));
    EXPECT_TRUE(cfg.mayPrecede(loop->id(), 1, loop->id(), 0));
    EXPECT_FALSE(cfg.reaches(exit->id(), exit->id()));
}

TEST(Cfg, MayPrecedeWithinBlockRespectsOrder)
{
    Module module;
    IRBuilder builder(module);
    Function *main = builder.createFunction("main", 0);
    builder.constInt(1);
    builder.constInt(2);
    builder.ret();
    module.finalize();

    Cfg cfg(*main);
    const BlockId entry = main->entry()->id();
    EXPECT_TRUE(cfg.mayPrecede(entry, 0, entry, 1));
    EXPECT_FALSE(cfg.mayPrecede(entry, 1, entry, 0));
}

TEST(IrPrinter, PrintsRecognizableText)
{
    Module module;
    module.addGlobal("counter", 2);
    IRBuilder builder(module);
    Function *main = builder.createFunction("main", 0);
    const Reg g = builder.globalAddr(0);
    const Reg v = builder.constInt(41);
    builder.store(g, v);
    const Reg loaded = builder.load(g);
    builder.output(loaded);
    builder.ret();
    module.finalize();

    const std::string text = printModule(module);
    EXPECT_NE(text.find("global counter[2]"), std::string::npos);
    EXPECT_NE(text.find("func main()"), std::string::npos);
    EXPECT_NE(text.find("&counter"), std::string::npos);
    EXPECT_NE(text.find("output"), std::string::npos);
    (void)main;
}

TEST(IrBuilder, RedefinitionHelpers)
{
    Module module;
    IRBuilder builder(module);
    builder.createFunction("main", 0);
    const Reg i = builder.constInt(0);
    const Reg one = builder.constInt(1);
    builder.binopTo(i, BinOpKind::Add, i, one);
    builder.assignTo(i, one);
    builder.constTo(i, 9);
    builder.ret();
    module.finalize();

    // Three redefinitions of the same register, no fresh registers.
    int defs = 0;
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).dest == i)
            ++defs;
    EXPECT_EQ(defs, 4); // original + 3 redefinitions
}

} // namespace
} // namespace oha::ir
