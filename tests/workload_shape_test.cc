/**
 * @file
 * Contract tests pinning the static-analysis phenomena each benchmark
 * generator is engineered to exhibit (see workloads.h).  If a future
 * change to a generator or an analysis silently destroys a
 * phenomenon, the corresponding figure loses its meaning — these
 * tests fail first.
 */

#include <gtest/gtest.h>

#include "analysis/race_detector.h"
#include "core/optft.h"
#include "core/optslice.h"
#include "profile/profiler.h"

namespace oha {
namespace {

inv::InvariantSet
profileRace(const workloads::Workload &workload, std::size_t runs)
{
    prof::ProfilingCampaign campaign(*workload.module, {});
    for (std::size_t i = 0; i < runs && i < workload.profilingSet.size();
         ++i)
        campaign.addRun(workload.profilingSet[i]);
    return campaign.invariants();
}

TEST(WorkloadShape, KernelsAreRaceFreeOnlyBecauseOfThreadLocality)
{
    // The five kernels must be proven race-free by the *sound*
    // analysis — that is what puts them right of Figure 5's line.
    for (const auto &name : workloads::raceFreeKernelNames()) {
        const auto workload = workloads::makeRaceWorkload(name, 1, 1);
        const auto sound =
            analysis::runStaticRaceDetector(*workload.module, nullptr);
        EXPECT_TRUE(sound.racyAccesses.empty()) << name;
    }
}

TEST(WorkloadShape, LockHeavyBenchmarksNeedTheGuardingLocksInvariant)
{
    // raytracer: sound analysis keeps the locked accesses; the
    // invariant-predicated analysis removes every one of them.
    const auto workload = workloads::makeRaceWorkload("raytracer", 12, 1);
    const auto sound =
        analysis::runStaticRaceDetector(*workload.module, nullptr);
    EXPECT_GT(sound.racyAccesses.size(), 8u);

    const auto inv = profileRace(workload, 12);
    const auto predicated =
        analysis::runStaticRaceDetector(*workload.module, &inv);
    EXPECT_TRUE(predicated.racyAccesses.empty());
    EXPECT_FALSE(predicated.usedLockAliases.empty());
}

TEST(WorkloadShape, BarrierBenchmarksResistLocksetPruning)
{
    // sunflow: no locks guard the disjoint-slot writes, so the
    // predicated detector keeps them (Figure 5's flat pair).
    const auto workload = workloads::makeRaceWorkload("sunflow", 12, 1);
    const auto inv = profileRace(workload, 12);
    const auto sound =
        analysis::runStaticRaceDetector(*workload.module, nullptr);
    const auto predicated =
        analysis::runStaticRaceDetector(*workload.module, &inv);
    EXPECT_FALSE(predicated.racyAccesses.empty());
    EXPECT_TRUE(predicated.usedLockAliases.empty());
    // LUC still trims something, but the hot barrier writes remain.
    EXPECT_LE(predicated.racyAccesses.size(), sound.racyAccesses.size());
}

TEST(WorkloadShape, LuindexNeedsTheSingletonInvariant)
{
    const auto workload = workloads::makeRaceWorkload("luindex", 12, 1);
    const auto sound =
        analysis::runStaticRaceDetector(*workload.module, nullptr);
    const auto inv = profileRace(workload, 12);
    const auto predicated =
        analysis::runStaticRaceDetector(*workload.module, &inv);
    EXPECT_LT(predicated.racyAccesses.size(), sound.racyAccesses.size());
    EXPECT_FALSE(predicated.usedSingletonSites.empty())
        << "the helper-spawned indexer is only provably single via "
           "the invariant";
}

TEST(WorkloadShape, VimSoundCsExplodesPredicatedCsFits)
{
    // Table 2's CI -> CS flip.
    const auto workload = workloads::makeSliceWorkload("vim", 16, 1);
    analysis::AndersenOptions options;
    options.contextSensitive = true;
    options.maxContexts = 4000;
    const auto sound = analysis::runAndersen(*workload.module, options);
    EXPECT_FALSE(sound.completed)
        << "vim's cold call fan must exhaust the sound CS budget";

    prof::ProfileOptions profOptions;
    profOptions.callContexts = true;
    prof::ProfilingCampaign campaign(*workload.module, profOptions);
    for (std::size_t i = 0; i < 16; ++i)
        campaign.addRun(workload.profilingSet[i]);
    options.invariants = &campaign.invariants();
    const auto predicated =
        analysis::runAndersen(*workload.module, options);
    EXPECT_TRUE(predicated.completed)
        << "context pruning must collapse the fan (Figure 11)";
    EXPECT_LT(predicated.contexts.size(), 400u);
}

TEST(WorkloadShape, ZlibAndSphinxSoundCsCompletes)
{
    // Their pipelines are linear: even the sound CS analysis fits
    // (matching Table 2's zlib/sphinx CS rows); the speedup there
    // comes from LUC, not from an analysis-type flip.
    for (const char *name : {"zlib", "sphinx"}) {
        const auto workload = workloads::makeSliceWorkload(name, 1, 1);
        analysis::AndersenOptions options;
        options.contextSensitive = true;
        options.maxContexts = 4000;
        EXPECT_TRUE(
            analysis::runAndersen(*workload.module, options).completed)
            << name;
    }
}

TEST(WorkloadShape, MoldynCalibrationKeepsCustomSyncLocks)
{
    // The Figure 4 pair: lock elision must not survive calibration
    // for the sync lock, while the stats lock may be elided.
    const auto workload = workloads::makeRaceWorkload("moldyn", 12, 4);
    const auto result = core::runOptFt(workload);
    EXPECT_TRUE(result.raceReportsMatch);
    // Some lock instrumentation was elided (the stats lock)...
    EXPECT_GT(result.elidedLockSites, 0u);
    // ...but not all of it: the custom-sync lock sites must stay.
    std::size_t lockSites = 0;
    for (InstrId id = 0; id < workload.module->numInstrs(); ++id) {
        const auto op = workload.module->instr(id).op;
        lockSites += op == ir::Opcode::Lock || op == ir::Opcode::Unlock;
    }
    EXPECT_LT(result.elidedLockSites, lockSites);
}

} // namespace
} // namespace oha
