/**
 * @file
 * End-to-end integration tests: the full OptFT and OptSlice
 * pipelines over the synthetic benchmark workloads, checking the
 * paper's soundness theorem (optimistic results == sound results)
 * and the expected performance direction.
 */

#include <gtest/gtest.h>

#include "core/optft.h"
#include "core/optslice.h"

namespace oha::core {
namespace {

TEST(Workloads, AllRaceWorkloadsBuildAndRun)
{
    for (const auto &name : workloads::raceWorkloadNames()) {
        const auto workload = workloads::makeRaceWorkload(name, 2, 2);
        ASSERT_TRUE(workload.module->finalized()) << name;
        exec::Interpreter interp(*workload.module,
                                 workload.testingSet.front());
        const auto result = interp.run();
        EXPECT_TRUE(result.finished()) << name << ": "
                                       << result.abortReason;
        EXPECT_FALSE(result.outputs.empty()) << name;
    }
}

TEST(Workloads, AllSliceWorkloadsBuildAndRun)
{
    for (const auto &name : workloads::sliceWorkloadNames()) {
        const auto workload = workloads::makeSliceWorkload(name, 2, 2);
        exec::Interpreter interp(*workload.module,
                                 workload.testingSet.front());
        const auto result = interp.run();
        EXPECT_TRUE(result.finished()) << name << ": "
                                       << result.abortReason;
        EXPECT_FALSE(result.outputs.empty()) << name;
    }
}

TEST(Workloads, ExecutionIsAPureFunctionOfConfig)
{
    const auto workload = workloads::makeRaceWorkload("lusearch", 1, 1);
    const auto &config = workload.testingSet.front();
    exec::Interpreter a(*workload.module, config);
    exec::Interpreter b(*workload.module, config);
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.outputs, rb.outputs);
    EXPECT_EQ(ra.steps, rb.steps);
}

TEST(OptFtPipeline, KernelsAreStaticallyRaceFree)
{
    for (const auto &name : workloads::raceFreeKernelNames()) {
        const auto workload = workloads::makeRaceWorkload(name, 6, 3);
        const auto result = runOptFt(workload);
        EXPECT_TRUE(result.staticallyRaceFree) << name;
        EXPECT_TRUE(result.raceReportsMatch) << name;
        EXPECT_EQ(result.racesObserved, 0u) << name;
        // With no dynamic checks left, hybrid and OptFT sit at the
        // framework floor, far below full FastTrack.
        EXPECT_LT(result.hybridFt.normalized(),
                  result.fastTrack.normalized())
            << name;
    }
}

TEST(OptFtPipeline, LockHeavyBenchmarkGains)
{
    const auto workload = workloads::makeRaceWorkload("raytracer", 16, 8);
    const auto result = runOptFt(workload);
    EXPECT_TRUE(result.raceReportsMatch);
    EXPECT_FALSE(result.staticallyRaceFree);
    // OptFT must beat hybrid FastTrack (guarding-locks invariant) and
    // full FastTrack by more.
    EXPECT_GT(result.speedupVsHybrid, 1.1) << "got "
                                           << result.speedupVsHybrid;
    EXPECT_GT(result.speedupVsFastTrack, result.speedupVsHybrid);
    // Predicated analysis prunes more accesses than the sound one.
    EXPECT_LT(result.predRacyAccesses, result.soundRacyAccesses);
}

TEST(OptFtPipeline, BarrierBenchmarkGainsLittle)
{
    const auto workload = workloads::makeRaceWorkload("sunflow", 12, 6);
    const auto result = runOptFt(workload);
    EXPECT_TRUE(result.raceReportsMatch);
    // Lockset-based pruning is algorithmically unequipped here
    // (Section 6.2): OptFT ~= hybrid.
    EXPECT_LT(result.speedupVsHybrid, 1.4);
}

TEST(OptFtPipeline, CustomSyncIsCalibratedSafely)
{
    const auto workload = workloads::makeRaceWorkload("moldyn", 12, 8);
    const auto result = runOptFt(workload);
    // Whatever the calibration decided about lock elision, the final
    // reports must match the sound detector on every test run.
    EXPECT_TRUE(result.raceReportsMatch);
}

TEST(OptFtPipeline, RealRacesAreNeverLost)
{
    const auto workload = workloads::makeRaceWorkload("pmd", 12, 10);
    const auto result = runOptFt(workload);
    EXPECT_TRUE(result.raceReportsMatch)
        << "OptFT must report exactly the races FastTrack reports";
    EXPECT_GT(result.racesObserved, 0u)
        << "the pmd corpus is tuned to exhibit its intentional race";
}

TEST(OptFtPipeline, SingletonThreadInvariantWins)
{
    const auto workload = workloads::makeRaceWorkload("luindex", 12, 6);
    const auto result = runOptFt(workload);
    EXPECT_TRUE(result.raceReportsMatch);
    EXPECT_GT(result.speedupVsHybrid, 1.2);
}

TEST(OptSlicePipeline, ZlibTinySliceBigSpeedup)
{
    const auto workload = workloads::makeSliceWorkload("zlib", 10, 5);
    const auto result = runOptSlice(workload);
    EXPECT_TRUE(result.sliceResultsMatch);
    EXPECT_GT(result.dynSpeedup, 2.0) << "got " << result.dynSpeedup;
    EXPECT_LT(result.optSliceSize, result.soundSliceSize);
}

TEST(OptSlicePipeline, DispatchAppSoundAndFaster)
{
    const auto workload = workloads::makeSliceWorkload("redis", 12, 6);
    const auto result = runOptSlice(workload);
    EXPECT_TRUE(result.sliceResultsMatch);
    EXPECT_GE(result.dynSpeedup, 1.0);
    EXPECT_LE(result.optAliasRate, result.soundAliasRate + 1e-12);
}

TEST(OptSlicePipeline, MisSpeculationRollsBackSoundly)
{
    // go is tuned for unstable behaviour: with a tiny profiling set,
    // test inputs routinely violate invariants.  Every violation must
    // roll back and still produce the hybrid slicer's slices.
    const auto workload = workloads::makeSliceWorkload("go", 4, 10);
    const auto result = runOptSlice(workload);
    EXPECT_TRUE(result.sliceResultsMatch);
    EXPECT_GT(result.misSpeculations, 0u)
        << "under-profiled go should mis-speculate";
}

TEST(OptSlicePipeline, MoreProfilingReducesMisSpeculation)
{
    const auto lean = workloads::makeSliceWorkload("vim", 3, 12);
    OptSliceConfig leanConfig;
    leanConfig.maxProfileRuns = 3;
    const auto few = runOptSlice(lean, leanConfig);

    const auto rich = workloads::makeSliceWorkload("vim", 40, 12);
    OptSliceConfig richConfig;
    richConfig.maxProfileRuns = 40;
    richConfig.convergenceWindow = 40; // profile everything
    const auto many = runOptSlice(rich, richConfig);

    EXPECT_LE(many.misSpeculations, few.misSpeculations);
    EXPECT_TRUE(few.sliceResultsMatch);
    EXPECT_TRUE(many.sliceResultsMatch);
}

} // namespace
} // namespace oha::core
