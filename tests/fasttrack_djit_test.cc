/**
 * @file
 * Differential testing of FastTrack's epoch optimization against a
 * DJIT+-style reference detector that keeps full vector clocks per
 * variable.  Flanagan & Freund prove FastTrack reports a race on
 * exactly the same *variables* as the full-VC detector (individual
 * pair attribution may differ once a variable already raced), so the
 * property checked here is equality of racing-address sets, swept
 * over random multithreaded programs and schedules.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dyn/fasttrack.h"
#include "dyn/plans.h"
#include "exec/interpreter.h"
#include "ir/builder.h"
#include "support/rng.h"
#include "support/vector_clock.h"

namespace oha::dyn {
namespace {

using ir::BasicBlock;
using ir::BinOpKind;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Reg;

/** DJIT+-style detector: full vector clocks everywhere. */
class DjitReference : public exec::Tool
{
  public:
    void
    onThreadStart(ThreadId tid, ThreadId parent,
                  InstrId spawnSite) override
    {
        VectorClock &clock = clockOf(tid);
        if (spawnSite != kNoInstr) {
            clock.join(clockOf(parent));
            clockOf(parent).incr(parent);
        }
        clock.incr(tid);
    }

    void
    onEvent(const exec::EventCtx &ctx) override
    {
        switch (ctx.instr->op) {
          case ir::Opcode::Load: {
            VarState &var = vars_[key(ctx)];
            const VectorClock &clock = clockOf(ctx.tid);
            // Read races with any write not ordered before it.
            for (std::size_t t = 0; t < var.writes.size(); ++t) {
                const Epoch w(static_cast<ThreadId>(t),
                              var.writes.get(static_cast<ThreadId>(t)));
                if (w.clock() != 0 && !clock.covers(w))
                    racingAddrs_.insert(key(ctx));
            }
            var.reads.set(ctx.tid, clock.get(ctx.tid));
            break;
          }
          case ir::Opcode::Store: {
            VarState &var = vars_[key(ctx)];
            const VectorClock &clock = clockOf(ctx.tid);
            if (!clock.coversAll(var.writes) ||
                !clock.coversAll(var.reads)) {
                racingAddrs_.insert(key(ctx));
            }
            var.writes.set(ctx.tid, clock.get(ctx.tid));
            break;
          }
          case ir::Opcode::Lock:
            clockOf(ctx.tid).join(locks_[ctx.obj]);
            break;
          case ir::Opcode::Unlock:
            locks_[ctx.obj] = clockOf(ctx.tid);
            clockOf(ctx.tid).incr(ctx.tid);
            break;
          case ir::Opcode::Join:
            clockOf(ctx.tid).join(clockOf(ctx.otherTid));
            break;
          default:
            break;
        }
    }

    const std::set<std::uint64_t> &
    racingAddrs() const
    {
        return racingAddrs_;
    }

  private:
    struct VarState
    {
        VectorClock writes;
        VectorClock reads;
    };

    static std::uint64_t
    key(const exec::EventCtx &ctx)
    {
        return (std::uint64_t(ctx.obj) << 32) | ctx.off;
    }

    VectorClock &
    clockOf(ThreadId tid)
    {
        if (tid >= threads_.size())
            threads_.resize(tid + 1);
        return threads_[tid];
    }

    std::vector<VectorClock> threads_;
    std::map<exec::ObjectId, VectorClock> locks_;
    std::map<std::uint64_t, VarState> vars_;
    std::set<std::uint64_t> racingAddrs_;
};

/** Random multithreaded racy-ish program. */
std::shared_ptr<Module>
randomMtModule(std::uint64_t seed)
{
    Rng rng(seed);
    auto module = std::make_shared<Module>();
    IRBuilder b(*module);
    const auto data = module->addGlobal("data", 4);
    const auto mutex = module->addGlobal("mutex", 1);

    const int numWorkers = 2 + int(rng.below(2));
    std::vector<Function *> workers;
    for (int w = 0; w < numWorkers; ++w) {
        Function *worker =
            b.createFunction("w" + std::to_string(w), 1);
        const int ops = 3 + int(rng.below(8));
        for (int i = 0; i < ops; ++i) {
            const int cell = int(rng.below(4));
            const bool locked = rng.chance(0.5);
            const Reg addr = b.gep(b.globalAddr(data), cell);
            if (locked)
                b.lock(b.globalAddr(mutex));
            if (rng.chance(0.5)) {
                b.store(addr, b.add(b.load(addr), b.constInt(1)));
            } else {
                b.load(addr);
            }
            if (locked)
                b.unlock(b.globalAddr(mutex));
        }
        b.ret(b.constInt(w));
        workers.push_back(worker);
    }

    b.createFunction("main", 0);
    std::vector<Reg> handles;
    for (int w = 0; w < numWorkers; ++w) {
        handles.push_back(
            b.spawn(workers[std::size_t(w)], {b.constInt(w)}));
    }
    for (Reg h : handles)
        b.join(h);
    b.output(b.load(b.gep(b.globalAddr(data), 0)));
    b.ret();
    module->finalize();
    return module;
}

class FastTrackVsDjit : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FastTrackVsDjit, SameRacingVariables)
{
    const auto module = randomMtModule(GetParam());
    const auto plan = fullFastTrackPlan(*module);

    for (std::uint64_t scheduleSeed = 0; scheduleSeed < 8;
         ++scheduleSeed) {
        exec::ExecConfig config;
        config.scheduleSeed = scheduleSeed;

        FastTrack fast;
        DjitReference reference;
        exec::Interpreter interp(*module, config);
        interp.attach(&fast, &plan);
        interp.attach(&reference, &plan);
        ASSERT_TRUE(interp.run().finished());

        std::set<std::uint64_t> fastAddrs;
        for (const auto &race : fast.races())
            fastAddrs.insert((std::uint64_t(race.obj) << 32) | race.off);

        EXPECT_EQ(fastAddrs, reference.racingAddrs())
            << "program seed " << GetParam() << " schedule "
            << scheduleSeed;
    }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, FastTrackVsDjit,
                         ::testing::Range<std::uint64_t>(1, 21));

} // namespace
} // namespace oha::dyn
