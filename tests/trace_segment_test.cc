/**
 * @file
 * Segmented spill-to-disk capture + mmap-backed replay.
 *
 * Covers the segment-boundary edges of the TraceStore: captures
 * larger than OHA_TRACE_SEGMENT_BYTES demonstrably spill (segment
 * count > 1) and replay field-exact against live runs; an abort
 * landing exactly on a segment's last step truncates identically; a
 * thread whose first event lands in segment k > 0 replays correctly;
 * a final segment that would be empty is dropped; spill-disabled
 * captures keep the single-segment in-RAM behavior; and peak
 * mmap-resident trace bytes during replay are bounded by
 * O(segment size × concurrent replays), not O(trace size).  The
 * pipeline-level parity (direct vs replay over spilled captures) is
 * checked at 1 and 4 worker threads.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/optft.h"
#include "dyn/fasttrack.h"
#include "dyn/invariant_checker.h"
#include "dyn/plans.h"
#include "exec/trace.h"
#include "ir/builder.h"
#include "profile/profiler.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

namespace oha {
namespace {

std::vector<std::uint64_t>
eventVec(const exec::EventCounts &counts)
{
    return std::vector<std::uint64_t>(std::begin(counts.counts),
                                      std::end(counts.counts));
}

/** Everything observable from one checked FastTrack run. */
struct RunSnapshot
{
    int status = 0;
    std::string abortReason;
    std::vector<std::pair<InstrId, std::int64_t>> outputs;
    std::uint64_t steps = 0;
    std::uint32_t numThreads = 0;
    std::vector<std::uint64_t> totalEvents;
    std::vector<std::vector<std::uint64_t>> delivered;
    std::set<std::pair<InstrId, InstrId>> races;
    bool violated = false;
};

void
expectEqual(const RunSnapshot &live, const RunSnapshot &replayed,
            const std::string &label)
{
    EXPECT_EQ(live.status, replayed.status) << label;
    EXPECT_EQ(live.abortReason, replayed.abortReason) << label;
    EXPECT_EQ(live.outputs, replayed.outputs) << label;
    EXPECT_EQ(live.steps, replayed.steps) << label;
    EXPECT_EQ(live.numThreads, replayed.numThreads) << label;
    EXPECT_EQ(live.totalEvents, replayed.totalEvents) << label;
    EXPECT_EQ(live.delivered, replayed.delivered) << label;
    EXPECT_EQ(live.races, replayed.races) << label;
    EXPECT_EQ(live.violated, replayed.violated) << label;
}

/** FastTrack + invariant checker, live (config) or replayed (trace). */
RunSnapshot
ftSnapshot(const ir::Module &module, const inv::InvariantSet &invariants,
           const exec::InstrumentationPlan &plan,
           const exec::ExecConfig *config,
           const exec::RecordedTrace *trace)
{
    RunSnapshot snap;
    dyn::FastTrack tool;
    dyn::InvariantChecker checker(module, invariants, {});
    exec::RunResult result;
    if (trace) {
        exec::TraceReplayer replayer(module, *trace);
        replayer.attach(&tool, &plan);
        checker.setControl(&replayer);
        replayer.attach(&checker, &checker.plan());
        result = replayer.run();
    } else {
        exec::Interpreter interp(module, *config);
        interp.attach(&tool, &plan);
        checker.setControl(&interp);
        interp.attach(&checker, &checker.plan());
        result = interp.run();
    }
    snap.status = static_cast<int>(result.status);
    snap.abortReason = result.abortReason;
    snap.outputs = result.outputs;
    snap.steps = result.steps;
    snap.numThreads = result.numThreads;
    snap.totalEvents = eventVec(result.totalEvents);
    for (const exec::EventCounts &counts : result.delivered)
        snap.delivered.push_back(eventVec(counts));
    snap.races = tool.racePairs();
    snap.violated = checker.violated();
    return snap;
}

inv::InvariantSet
profiled(const ir::Module &module,
         const std::vector<exec::ExecConfig> &inputs)
{
    prof::ProfilingCampaign campaign(module, {});
    for (const auto &config : inputs)
        campaign.addRun(config);
    return campaign.invariants();
}

constexpr std::size_t kTinySegment = 2048;

TEST(SegmentedCapture, SpillsAndIndexesSegments)
{
    const auto workload = workloads::makeRaceWorkload("raytracer", 1, 1);
    const ir::Module &module = *workload.module;
    exec::TraceStoreOptions options;
    options.segmentBytes = kTinySegment;
    const exec::RecordedTrace trace =
        exec::recordRun(module, workload.testingSet.front(), options);
    const exec::TraceStore &store = trace.events;

    ASSERT_GT(store.numSegments(), 1u);
    EXPECT_TRUE(store.spilled());
    // Everything but the trailing segment went to disk.
    EXPECT_LT(store.residentBytes(), store.sizeBytes());
    EXPECT_LT(store.residentBytes(), kTinySegment + 256);

    std::uint64_t bytes = 0;
    std::uint64_t steps = 0;
    std::uint64_t records = 0;
    std::uint64_t tidUnion = 0;
    for (std::size_t i = 0; i < store.numSegments(); ++i) {
        const exec::SegmentHeader &header = store.header(i);
        EXPECT_GT(header.records, 0u) << "segment " << i;
        // Segments close at the first record boundary past the
        // threshold, so they overshoot by at most one record.
        EXPECT_LE(header.bytes, kTinySegment + 256) << "segment " << i;
        if (header.firstInstr != kNoInstr) {
            EXPECT_LT(header.firstInstr, module.numInstrs());
            EXPECT_LT(header.lastInstr, module.numInstrs());
        }
        bytes += header.bytes;
        steps += header.steps;
        records += header.records;
        tidUnion |= header.tidBitmap;
    }
    EXPECT_EQ(bytes, store.sizeBytes());
    EXPECT_EQ(steps, trace.result.steps);
    EXPECT_GT(records, 0u);
    EXPECT_NE(tidUnion, 0u);
}

TEST(SegmentedCapture, SpilledReplayMatchesLiveOnAllRaceWorkloads)
{
    std::size_t spilledCaptures = 0;
    for (const auto &name : workloads::raceWorkloadNames()) {
        const auto workload = workloads::makeRaceWorkload(name, 2, 3);
        const ir::Module &module = *workload.module;
        const auto invariants = profiled(module, workload.profilingSet);
        const auto plan = dyn::fullFastTrackPlan(module);
        exec::TraceStoreOptions options;
        options.segmentBytes = kTinySegment;
        for (const exec::ExecConfig &config : workload.testingSet) {
            const exec::RecordedTrace trace =
                exec::recordRun(module, config, options);
            spilledCaptures += trace.events.numSegments() > 1;
            const RunSnapshot live =
                ftSnapshot(module, invariants, plan, &config, nullptr);
            const RunSnapshot replayed =
                ftSnapshot(module, invariants, plan, nullptr, &trace);
            expectEqual(live, replayed, name + " (spilled)");
        }
    }
    EXPECT_GT(spilledCaptures, 0u)
        << "no capture crossed the segment threshold; the spill path "
           "is untested";
}

TEST(SegmentedCapture, AbortExactlyOnSegmentLastStep)
{
    // The LUC-abort module from the parity suite: trained on input 0,
    // input 1 enters the cold block and the checker aborts.
    using namespace ir;
    Module module;
    IRBuilder b(module);
    b.createFunction("main", 0);
    BasicBlock *cold = b.createBlock(b.currentFunction(), "cold");
    BasicBlock *done = b.createBlock(b.currentFunction(), "done");
    b.condBr(b.input(0), cold, done);
    b.setInsertPoint(cold);
    b.output(b.constInt(13));
    b.br(done);
    b.setInsertPoint(done);
    b.output(b.constInt(7));
    b.ret();
    module.finalize();

    exec::ExecConfig trained;
    trained.input = {0};
    exec::ExecConfig violating;
    violating.input = {1};
    const auto invariants = profiled(module, {trained});
    const auto plan = dyn::fullFastTrackPlan(module);

    const RunSnapshot live =
        ftSnapshot(module, invariants, plan, &violating, nullptr);
    ASSERT_TRUE(live.violated);
    ASSERT_GT(live.steps, 0u);

    // Engineer the spill threshold so segment 0 ends exactly after
    // the aborting step's records: the replay's truncation point then
    // coincides with the segment boundary (the abort fires on the
    // step flag of segment 1's first record).
    const exec::RecordedTrace flat = exec::recordRun(module, violating);
    const std::size_t boundary = exec::testing::byteOffsetAfterStep(
        module, flat.events, live.steps);
    ASSERT_GT(boundary, 0u);
    ASSERT_LT(boundary, flat.events.sizeBytes());

    exec::TraceStoreOptions options;
    options.segmentBytes = boundary;
    const exec::RecordedTrace segmented =
        exec::recordRun(module, violating, options);
    ASSERT_GT(segmented.events.numSegments(), 1u);
    EXPECT_EQ(segmented.events.header(0).bytes, boundary);
    EXPECT_EQ(segmented.events.header(0).steps, live.steps);

    const RunSnapshot replayed =
        ftSnapshot(module, invariants, plan, nullptr, &segmented);
    expectEqual(live, replayed, "abort on segment boundary");
    EXPECT_EQ(replayed.steps, live.steps);
}

TEST(SegmentedCapture, ThreadFirstEventInLaterSegment)
{
    // Main pads out more than one tiny segment of records before
    // spawning, so the worker thread's entire event stream — its
    // ThreadStart included — lands in segment k > 0.
    using namespace ir;
    Module module;
    IRBuilder b(module);
    Function *worker = b.createFunction("worker", 0);
    b.output(b.constInt(99));
    b.ret();
    b.createFunction("main", 0);
    for (int i = 0; i < 400; ++i)
        b.output(b.constInt(i));
    const Reg handle = b.spawn(worker);
    b.join(handle);
    b.output(b.constInt(7));
    b.ret();
    module.finalize();

    exec::ExecConfig config;
    exec::TraceStoreOptions options;
    options.segmentBytes = 512;
    const exec::RecordedTrace trace =
        exec::recordRun(module, config, options);
    const exec::TraceStore &store = trace.events;
    ASSERT_GT(store.numSegments(), 1u);
    ASSERT_EQ(trace.result.numThreads, 2u);

    // The worker (tid 1) must be absent from every segment before
    // the one carrying its first event.
    std::size_t firstSeen = store.numSegments();
    for (std::size_t i = 0; i < store.numSegments(); ++i) {
        if (store.header(i).tidBitmap & 2u) {
            firstSeen = i;
            break;
        }
    }
    ASSERT_LT(firstSeen, store.numSegments());
    EXPECT_GT(firstSeen, 0u)
        << "spawn landed in segment 0; shrink the threshold";

    const auto invariants = profiled(module, {config});
    const auto plan = dyn::fullFastTrackPlan(module);
    const RunSnapshot live =
        ftSnapshot(module, invariants, plan, &config, nullptr);
    const RunSnapshot replayed =
        ftSnapshot(module, invariants, plan, nullptr, &trace);
    expectEqual(live, replayed, "late-spawned thread");
    EXPECT_EQ(replayed.numThreads, 2u);
}

TEST(SegmentedCapture, EmptyFinalSegmentIsDropped)
{
    const auto workload = workloads::makeRaceWorkload("pmd", 1, 1);
    const ir::Module &module = *workload.module;
    const exec::ExecConfig &config = workload.testingSet.front();

    const exec::RecordedTrace flat = exec::recordRun(module, config);
    ASSERT_EQ(flat.events.numSegments(), 1u);
    const std::size_t total = flat.events.sizeBytes();

    // Threshold exactly equal to the stream length: the one segment
    // closes (and spills) right after the last record, and the empty
    // trailing open segment must be dropped, not stored.
    exec::TraceStoreOptions options;
    options.segmentBytes = total;
    const exec::RecordedTrace edge =
        exec::recordRun(module, config, options);
    EXPECT_EQ(edge.events.numSegments(), 1u);
    EXPECT_TRUE(edge.events.spilled());
    EXPECT_EQ(edge.events.sizeBytes(), total);
    EXPECT_EQ(edge.events.header(0).steps, edge.result.steps);
    EXPECT_EQ(edge.events.residentBytes(), 0u);

    const auto invariants = profiled(module, workload.profilingSet);
    const auto plan = dyn::fullFastTrackPlan(module);
    const RunSnapshot live =
        ftSnapshot(module, invariants, plan, &config, nullptr);
    const RunSnapshot replayed =
        ftSnapshot(module, invariants, plan, nullptr, &edge);
    expectEqual(live, replayed, "exact-threshold capture");
}

TEST(SegmentedCapture, SpillDisabledCaptureKeepsInMemoryBehavior)
{
    const auto workload = workloads::makeRaceWorkload("raytracer", 2, 2);
    const ir::Module &module = *workload.module;
    const exec::ExecConfig &config = workload.testingSet.front();

    // Default threshold (64 MiB): nothing here comes close, so the
    // capture must stay a single in-RAM segment with no spill file.
    const exec::RecordedTrace trace = exec::recordRun(module, config);
    EXPECT_EQ(trace.events.numSegments(), 1u);
    EXPECT_FALSE(trace.events.spilled());
    EXPECT_EQ(trace.events.residentBytes(), trace.events.sizeBytes());

    const auto invariants = profiled(module, workload.profilingSet);
    const auto plan = dyn::fullFastTrackPlan(module);
    const RunSnapshot live =
        ftSnapshot(module, invariants, plan, &config, nullptr);
    const RunSnapshot replayed =
        ftSnapshot(module, invariants, plan, nullptr, &trace);
    expectEqual(live, replayed, "spill-disabled capture");
}

TEST(SegmentedCapture, ReplayMappedBytesBoundedBySegmentTimesShards)
{
    const auto workload = workloads::makeRaceWorkload("raytracer", 1, 1);
    const ir::Module &module = *workload.module;
    const auto plan = dyn::fullFastTrackPlan(module);
    exec::TraceStoreOptions options;
    options.segmentBytes = kTinySegment;
    const exec::RecordedTrace trace =
        exec::recordRun(module, workload.testingSet.front(), options);
    ASSERT_TRUE(trace.events.spilled());
    ASSERT_GT(trace.events.numSegments(), 2u);

    // One mmap window per live cursor, page-rounded: segment bytes
    // plus at most one page of alignment slack.
    const std::size_t perReplayBound = kTinySegment + 256 + 4096;

    exec::testing::resetMappedTraceBytesPeak();
    {
        dyn::FastTrack tool;
        exec::TraceReplayer replayer(module, trace);
        replayer.attach(&tool, &plan);
        replayer.run();
    }
    const std::size_t serialPeak = exec::testing::mappedTraceBytesPeak();
    EXPECT_GT(serialPeak, 0u);
    EXPECT_LE(serialPeak, perReplayBound);

    // Four concurrent sharded replays of the same capture: the bound
    // scales with the replay count, never with the trace size.
    constexpr std::uint32_t kShards = 4;
    exec::testing::resetMappedTraceBytesPeak();
    support::runBatch(
        kShards,
        [&](std::size_t s) {
            dyn::FastTrack tool;
            tool.setShardFilter(static_cast<std::uint32_t>(s), kShards);
            exec::TraceReplayer replayer(module, trace);
            replayer.setShardFilter(static_cast<std::uint32_t>(s),
                                    kShards);
            replayer.attach(&tool, &plan);
            replayer.run();
            return s;
        },
        kShards);
    const std::size_t shardedPeak = exec::testing::mappedTraceBytesPeak();
    EXPECT_GT(shardedPeak, 0u);
    EXPECT_LE(shardedPeak, kShards * perReplayBound);
    EXPECT_LT(kShards * perReplayBound, trace.events.sizeBytes())
        << "trace too small for the bound to be meaningful";
    EXPECT_EQ(exec::testing::mappedTraceBytesNow(), 0u);
}

void
expectEqual(const core::RunCost &a, const core::RunCost &b,
            const std::string &label)
{
    EXPECT_EQ(a.base, b.base) << label;
    EXPECT_EQ(a.framework, b.framework) << label;
    EXPECT_EQ(a.analysis, b.analysis) << label;
    EXPECT_EQ(a.invariants, b.invariants) << label;
    EXPECT_EQ(a.rollback, b.rollback) << label;
}

/** Field-by-field OptFtResult equality, excluding interpretedSteps /
 *  replayedEvents (their divergence is the optimization itself). */
void
expectEqual(const core::OptFtResult &a, const core::OptFtResult &b,
            const std::string &label)
{
    EXPECT_EQ(a.name, b.name) << label;
    EXPECT_EQ(a.staticallyRaceFree, b.staticallyRaceFree) << label;
    EXPECT_EQ(a.soundStaticSeconds, b.soundStaticSeconds) << label;
    EXPECT_EQ(a.predStaticSeconds, b.predStaticSeconds) << label;
    EXPECT_EQ(a.profileSeconds, b.profileSeconds) << label;
    EXPECT_EQ(a.profileRunsUsed, b.profileRunsUsed) << label;
    EXPECT_EQ(a.testRuns, b.testRuns) << label;
    EXPECT_EQ(a.baselineSeconds, b.baselineSeconds) << label;
    expectEqual(a.fastTrack, b.fastTrack, label + " fastTrack");
    expectEqual(a.hybridFt, b.hybridFt, label + " hybridFt");
    expectEqual(a.optFt, b.optFt, label + " optFt");
    EXPECT_EQ(a.misSpeculations, b.misSpeculations) << label;
    EXPECT_EQ(a.raceReportsMatch, b.raceReportsMatch) << label;
    EXPECT_EQ(a.racesObserved, b.racesObserved) << label;
    EXPECT_EQ(a.soundRacyAccesses, b.soundRacyAccesses) << label;
    EXPECT_EQ(a.predRacyAccesses, b.predRacyAccesses) << label;
    EXPECT_EQ(a.elidedLockSites, b.elidedLockSites) << label;
    EXPECT_EQ(a.speedupVsFastTrack, b.speedupVsFastTrack) << label;
    EXPECT_EQ(a.speedupVsHybrid, b.speedupVsHybrid) << label;
    EXPECT_EQ(a.breakEvenVsHybrid, b.breakEvenVsHybrid) << label;
    EXPECT_EQ(a.breakEvenVsFastTrack, b.breakEvenVsFastTrack) << label;
    EXPECT_EQ(a.recordSeconds, b.recordSeconds) << label;
    EXPECT_EQ(a.replayRollbackSeconds, b.replayRollbackSeconds) << label;
}

TEST(SegmentedPipeline, SpilledReplayFieldExactVsLiveAt1And4Threads)
{
    // Force every capture in the pipeline through the spill path and
    // compare the whole OptFT result against the direct (live
    // interpreter) evaluation, serial and at 4 worker threads.
    ASSERT_EQ(setenv("OHA_TRACE_SEGMENT_BYTES", "4096", 1), 0);
    const auto workload = workloads::makeRaceWorkload("raytracer", 8, 4);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        core::OptFtConfig direct;
        direct.useTraceReplay = false;
        direct.threads = threads;
        core::OptFtConfig replay;
        replay.useTraceReplay = true;
        replay.threads = threads;
        // Private captures: the shared cache must not serve a trace
        // recorded by another test under a different threshold.
        replay.cacheTraceCaptures = false;

        const auto a = core::runOptFt(workload, direct);
        const auto b = core::runOptFt(workload, replay);
        expectEqual(a, b,
                    "spilled pipeline @" + std::to_string(threads) + "t");
    }
    unsetenv("OHA_TRACE_SEGMENT_BYTES");
}

} // namespace
} // namespace oha
