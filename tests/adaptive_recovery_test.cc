/**
 * @file
 * Tests for adaptive misspeculation recovery: the demote +
 * re-predicate repair loop in the OptFT/OptSlice pipelines, the
 * circuit breaker, and the determinism of the whole machinery across
 * thread counts.
 */

#include <gtest/gtest.h>

#include "core/optft.h"
#include "core/optslice.h"
#include "core/recovery.h"
#include "ir/builder.h"

namespace oha::core {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::IRBuilder;
using ir::Reg;

exec::ExecConfig
oneInput(std::int64_t v)
{
    exec::ExecConfig config;
    config.input = {v};
    return config;
}

/**
 * A race workload with exactly one wrong likely invariant: profiling
 * only ever sees input 0, so the input-1 cold block becomes likely
 * unreachable — and the testing corpus takes it twice.
 */
workloads::Workload
oneBadInvariantWorkload()
{
    workloads::Workload w;
    w.name = "adversarial-luc";
    w.race = true;
    w.module = std::make_shared<ir::Module>();
    IRBuilder b(*w.module);
    Function *main = b.createFunction("main", 0);
    BasicBlock *cold = b.createBlock(main, "cold");
    BasicBlock *done = b.createBlock(main, "done");
    b.condBr(b.input(0), cold, done);
    b.setInsertPoint(cold);
    b.output(b.constInt(13));
    b.br(done);
    b.setInsertPoint(done);
    b.output(b.constInt(7));
    b.ret();
    w.module->finalize();
    for (int i = 0; i < 6; ++i)
        w.profilingSet.push_back(oneInput(0));
    w.testingSet = {oneInput(1), oneInput(0), oneInput(1), oneInput(0),
                    oneInput(0)};
    return w;
}

/**
 * A race workload where one bad input violates several invariant
 * families in sequence: a likely-unreachable block, an unprofiled
 * indirect-call target (whose entry block is also unvisited), and a
 * second spawn from a profiled-singleton spawn site.
 */
workloads::Workload
multiViolationWorkload()
{
    workloads::Workload w;
    w.name = "adversarial-multi";
    w.race = true;
    w.module = std::make_shared<ir::Module>();
    IRBuilder b(*w.module);
    Function *worker = b.createFunction("worker", 0);
    b.ret(b.constInt(0));
    Function *fa = b.createFunction("fa", 0);
    b.ret(b.constInt(1));
    Function *fb = b.createFunction("fb", 0);
    b.ret(b.constInt(2));
    Function *main = b.createFunction("main", 0);
    BasicBlock *cold = b.createBlock(main, "cold");
    BasicBlock *join = b.createBlock(main, "join");
    const Reg table = b.alloc(2);
    b.store(b.gep(table, 0), b.funcAddr(fa));
    b.store(b.gep(table, 1), b.funcAddr(fb));
    b.condBr(b.input(0), cold, join);
    b.setInsertPoint(cold);
    b.output(b.constInt(99));
    b.br(join);
    b.setInsertPoint(join);
    const Reg fp = b.load(b.gepDyn(table, b.input(0)));
    b.output(b.icall(fp, {}));
    // Spawn 1 + input threads from one site.
    BasicBlock *loop = b.createBlock(main, "loop");
    BasicBlock *body = b.createBlock(main, "body");
    BasicBlock *done = b.createBlock(main, "done");
    const Reg i = b.constInt(0);
    const Reg n = b.binop(ir::BinOpKind::Add, b.input(0), b.constInt(1));
    const Reg one = b.constInt(1);
    const Reg box = b.alloc(1);
    b.br(loop);
    b.setInsertPoint(loop);
    b.condBr(b.lt(i, n), body, done);
    b.setInsertPoint(body);
    b.store(box, b.spawn(worker, {}));
    b.join(b.load(box));
    b.binopTo(i, ir::BinOpKind::Add, i, one);
    b.br(loop);
    b.setInsertPoint(done);
    b.ret();
    w.module->finalize();
    for (int i = 0; i < 6; ++i)
        w.profilingSet.push_back(oneInput(0));
    w.testingSet = {oneInput(1), oneInput(1), oneInput(1), oneInput(1),
                    oneInput(1), oneInput(0), oneInput(0), oneInput(0)};
    return w;
}

TEST(RecoveryBreaker, RepairBudgetIsCheckedBeforeRepairing)
{
    const RecoveryBreaker breaker{/*maxRepredications=*/2,
                                  /*misspecRateThreshold=*/0.5,
                                  /*minRunsForRate=*/8};
    EXPECT_FALSE(breaker.tripped(0, 1, 1));
    EXPECT_FALSE(breaker.tripped(1, 2, 2));
    EXPECT_TRUE(breaker.tripped(2, 3, 3))
        << "budget exhausted: the third repair must not happen";
    // A zero budget trips on the very first rollback.
    const RecoveryBreaker zero{0, 0.5, 8};
    EXPECT_TRUE(zero.tripped(0, 1, 1));
}

TEST(RecoveryBreaker, RateThresholdArmsAtMinRuns)
{
    const RecoveryBreaker breaker{/*maxRepredications=*/100,
                                  /*misspecRateThreshold=*/0.5,
                                  /*minRunsForRate=*/8};
    // Under the arming threshold the rate never trips, however bad.
    EXPECT_FALSE(breaker.tripped(0, 7, 7));
    // At 8 evaluated: 5/8 > 0.5 trips, 4/8 does not (strict >).
    EXPECT_TRUE(breaker.tripped(0, 5, 8));
    EXPECT_FALSE(breaker.tripped(0, 4, 8));
}

TEST(AdaptiveRecovery, OneBadInvariantMeansOneRollback)
{
    const auto workload = oneBadInvariantWorkload();
    const auto result = runOptFt(workload);
    EXPECT_EQ(result.misSpeculations, 1u)
        << "the repaired plan must survive the second bad input";
    EXPECT_EQ(result.repredications, 1u);
    ASSERT_EQ(result.demotions.size(), 1u);
    EXPECT_EQ(result.demotions[0].family,
              dyn::ViolationFamily::UnreachableBlock);
    EXPECT_FALSE(result.circuitBroken);
    EXPECT_TRUE(result.raceReportsMatch);
    EXPECT_GT(result.repredStaticSeconds, 0.0);
}

TEST(AdaptiveRecovery, NonAdaptiveRollsBackEveryTime)
{
    const auto workload = oneBadInvariantWorkload();
    OptFtConfig config;
    config.adaptiveRecovery = false;
    const auto result = runOptFt(workload, config);
    EXPECT_EQ(result.misSpeculations, 2u)
        << "without repair both bad inputs pay a rollback";
    EXPECT_EQ(result.repredications, 0u);
    EXPECT_TRUE(result.demotions.empty());
    EXPECT_FALSE(result.circuitBroken);
    EXPECT_TRUE(result.raceReportsMatch);
    EXPECT_EQ(result.repredStaticSeconds, 0.0);
}

TEST(AdaptiveRecovery, ZeroRepairBudgetDegradesToHybrid)
{
    const auto workload = oneBadInvariantWorkload();
    OptFtConfig config;
    config.maxRepredications = 0;
    const auto result = runOptFt(workload, config);
    EXPECT_TRUE(result.circuitBroken);
    EXPECT_EQ(result.repredications, 0u);
    EXPECT_TRUE(result.demotions.empty());
    EXPECT_EQ(result.misSpeculations, 1u)
        << "degraded inputs run the sound hybrid plan: no speculation, "
           "no rollback — including the second bad input";
    EXPECT_TRUE(result.raceReportsMatch);
}

TEST(AdaptiveRecovery, MisspecRateThresholdTripsTheBreaker)
{
    const auto workload = oneBadInvariantWorkload();
    OptFtConfig config;
    config.misspecRateThreshold = 0.0;
    config.minRunsForMisspecRate = 1;
    const auto result = runOptFt(workload, config);
    EXPECT_TRUE(result.circuitBroken);
    EXPECT_TRUE(result.demotions.empty())
        << "the rate breaker fires before any repair";
    EXPECT_EQ(result.misSpeculations, 1u);
    EXPECT_TRUE(result.raceReportsMatch);
}

TEST(AdaptiveRecovery, MultiViolationRunDemotesDeterministically)
{
    const auto workload = multiViolationWorkload();
    OptFtConfig config;
    config.maxRepredications = 8;
    const auto first = runOptFt(workload, config);
    EXPECT_TRUE(first.raceReportsMatch);
    EXPECT_FALSE(first.circuitBroken);
    // One family per rollback, repaired in encounter order; the bad
    // input becomes clean once every lying fact is demoted.
    EXPECT_EQ(first.repredications, first.demotions.size());
    EXPECT_GE(first.demotions.size(), 3u);
    EXPECT_LT(first.misSpeculations, 5u)
        << "the fifth bad input must run clean";
    std::size_t luc = 0, callee = 0, spawn = 0;
    for (const dyn::Violation &v : first.demotions) {
        luc += v.family == dyn::ViolationFamily::UnreachableBlock;
        callee += v.family == dyn::ViolationFamily::CalleeSet;
        spawn += v.family == dyn::ViolationFamily::SingletonSpawn;
    }
    EXPECT_GE(luc, 1u);
    EXPECT_EQ(callee, 1u);
    EXPECT_EQ(spawn, 1u);

    // Byte-identical repair sequence on a re-run.
    const auto second = runOptFt(workload, config);
    EXPECT_EQ(first.demotions, second.demotions);
    EXPECT_EQ(first.misSpeculations, second.misSpeculations);
}

TEST(AdaptiveRecovery, RepairSequenceIsThreadCountInvariant)
{
    const auto workload = multiViolationWorkload();
    OptFtConfig serial, parallel;
    serial.maxRepredications = parallel.maxRepredications = 8;
    serial.threads = 1;
    parallel.threads = 4;
    const auto a = runOptFt(workload, serial);
    const auto b = runOptFt(workload, parallel);
    EXPECT_EQ(a.demotions, b.demotions);
    EXPECT_EQ(a.misSpeculations, b.misSpeculations);
    EXPECT_EQ(a.repredications, b.repredications);
    EXPECT_EQ(a.circuitBroken, b.circuitBroken);
    EXPECT_EQ(a.raceReportsMatch, b.raceReportsMatch);
    EXPECT_DOUBLE_EQ(a.optFt.normalized(), b.optFt.normalized());
    EXPECT_DOUBLE_EQ(a.repredStaticSeconds, b.repredStaticSeconds);
}

TEST(AdaptiveRecovery, LiveAndReplayModesAgree)
{
    const auto workload = multiViolationWorkload();
    OptFtConfig replay, live;
    replay.maxRepredications = live.maxRepredications = 8;
    replay.useTraceReplay = true;
    live.useTraceReplay = false;
    const auto a = runOptFt(workload, replay);
    const auto b = runOptFt(workload, live);
    EXPECT_EQ(a.demotions, b.demotions);
    EXPECT_EQ(a.misSpeculations, b.misSpeculations);
    EXPECT_EQ(a.repredications, b.repredications);
    EXPECT_EQ(a.raceReportsMatch, b.raceReportsMatch);
    EXPECT_DOUBLE_EQ(a.optFt.normalized(), b.optFt.normalized());
}

TEST(AdaptiveRecovery, OptSliceRepairReducesMisSpeculation)
{
    // go is tuned for unstable behaviour: with a tiny profiling set,
    // test inputs routinely violate invariants.
    const auto workload = workloads::makeSliceWorkload("go", 4, 10);
    OptSliceConfig off;
    off.adaptiveRecovery = false;
    const auto repaired = runOptSlice(workload);
    const auto historical = runOptSlice(workload, off);
    EXPECT_TRUE(repaired.sliceResultsMatch);
    EXPECT_TRUE(historical.sliceResultsMatch);
    EXPECT_GT(historical.misSpeculations, 0u);
    EXPECT_LE(repaired.misSpeculations, historical.misSpeculations);
    if (repaired.misSpeculations < historical.misSpeculations)
        EXPECT_GE(repaired.repredications, 1u);
    EXPECT_EQ(historical.repredications, 0u);
}

TEST(AdaptiveRecovery, OptSliceRepairIsThreadCountInvariant)
{
    const auto workload = workloads::makeSliceWorkload("go", 4, 8);
    OptSliceConfig serial, parallel;
    serial.threads = 1;
    parallel.threads = 4;
    const auto a = runOptSlice(workload, serial);
    const auto b = runOptSlice(workload, parallel);
    EXPECT_EQ(a.demotions, b.demotions);
    EXPECT_EQ(a.misSpeculations, b.misSpeculations);
    EXPECT_EQ(a.repredications, b.repredications);
    EXPECT_EQ(a.sliceResultsMatch, b.sliceResultsMatch);
    EXPECT_DOUBLE_EQ(a.optimistic.normalized(), b.optimistic.normalized());
}

} // namespace
} // namespace oha::core
