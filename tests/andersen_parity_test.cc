/**
 * @file
 * Pre/post-overhaul parity for the Andersen constraint solver.
 *
 * The solver overhaul (difference propagation, offline constraint
 * reduction, least-recently-fired worklist, hash-consed result sets)
 * must be a pure throughput change: both solvers compute the same
 * inclusion fixpoint, so on every workload the points-to sets,
 * indirect-call targets, static slice sets and static race reports
 * must be identical.  The original FIFO full-propagation solver is
 * kept behind AndersenOptions::referenceSolver and compared here
 * against the production delta solver, in CI and CS modes, sound and
 * predicated.  Batches run at 1 and 4 worker threads and their
 * results are compared, pinning thread-count invariance of the
 * parallelized static phase.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/constraint_diff.h"
#include "analysis/race_detector.h"
#include "analysis/slicer.h"
#include "ir/module_diff.h"
#include "profile/profiler.h"
#include "support/thread_pool.h"
#include "workloads/edits.h"
#include "workloads/workloads.h"

namespace oha {
namespace {

using analysis::AndersenOptions;
using analysis::AndersenResult;
using analysis::CellId;

std::vector<CellId>
toVector(const SparseBitSet &set)
{
    std::vector<CellId> cells;
    set.forEach([&](CellId cell) { cells.push_back(cell); });
    return cells;
}

/** Everything observable about one points-to run, in comparable form.
 *  workUnits is deliberately absent: the two solvers count different
 *  events, only the fixpoint must agree. */
struct PtsView
{
    bool completed = false;
    std::size_t numContexts = 0;
    /** pts of every (context instance, register) pair. */
    std::vector<std::vector<CellId>> regPts;
    /** Flattened pts of every (function, register) pair. */
    std::vector<std::vector<CellId>> flatPts;
    /** cellPts of every abstract cell. */
    std::vector<std::vector<CellId>> cellPts;
    /** Sorted targets of every ICall instruction. */
    std::vector<std::vector<FuncId>> icalls;
    /** Static slices (instruction sets) from every Output. */
    std::vector<std::pair<bool, std::set<InstrId>>> slices;

    bool
    operator==(const PtsView &other) const
    {
        return completed == other.completed &&
               numContexts == other.numContexts &&
               regPts == other.regPts && flatPts == other.flatPts &&
               cellPts == other.cellPts && icalls == other.icalls &&
               slices == other.slices;
    }
};

PtsView
viewOf(const ir::Module &module, const AndersenResult &result,
       const inv::InvariantSet *invariants)
{
    PtsView view;
    view.completed = result.completed;
    view.numContexts = result.contexts.size();
    // An incomplete result (CS context-budget overflow) carries no
    // queryable points-to structure; the flag itself is the parity.
    if (!result.completed)
        return view;
    for (const analysis::ContextInstance &inst : result.contexts) {
        const unsigned numRegs = module.function(inst.func)->numRegs();
        for (ir::Reg reg = 0; reg < numRegs; ++reg)
            view.regPts.push_back(toVector(result.pts(inst.id, reg)));
    }
    for (const auto &func : module.functions())
        for (ir::Reg reg = 0; reg < func->numRegs(); ++reg)
            view.flatPts.push_back(
                toVector(result.ptsAllContexts(func->id(), reg)));
    for (CellId cell = 0; cell < result.memory.numCells(); ++cell)
        view.cellPts.push_back(toVector(result.cellPts(cell)));
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == ir::Opcode::ICall)
            view.icalls.push_back(result.icallTargets(id));

    if (result.completed) {
        analysis::SlicerOptions sliceOptions;
        sliceOptions.invariants = invariants;
        const analysis::StaticSlicer slicer(module, result, sliceOptions);
        for (InstrId id = 0; id < module.numInstrs(); ++id) {
            if (module.instr(id).op != ir::Opcode::Output)
                continue;
            const analysis::StaticSliceResult slice = slicer.slice(id);
            view.slices.push_back({slice.completed, slice.instructions});
        }
    }
    return view;
}

std::vector<std::tuple<InstrId, InstrId>>
pairList(const std::set<std::pair<InstrId, InstrId>> &pairs)
{
    std::vector<std::tuple<InstrId, InstrId>> out;
    for (const auto &[a, b] : pairs)
        out.push_back({a, b});
    return out;
}

/** Race-detector output in comparable form (workUnits excluded). */
struct RaceView
{
    std::vector<std::tuple<InstrId, InstrId>> racyPairs;
    std::vector<InstrId> racyAccesses;
    std::vector<std::tuple<InstrId, InstrId>> usedLockAliases;
    std::vector<InstrId> usedSingletonSites;
    std::size_t accessesConsidered = 0;

    bool
    operator==(const RaceView &other) const
    {
        return racyPairs == other.racyPairs &&
               racyAccesses == other.racyAccesses &&
               usedLockAliases == other.usedLockAliases &&
               usedSingletonSites == other.usedSingletonSites &&
               accessesConsidered == other.accessesConsidered;
    }
};

RaceView
raceViewOf(const analysis::StaticRaceResult &result)
{
    RaceView view;
    view.racyPairs = pairList(result.racyPairs);
    view.racyAccesses.assign(result.racyAccesses.begin(),
                             result.racyAccesses.end());
    view.usedLockAliases = pairList(result.usedLockAliases);
    view.usedSingletonSites.assign(result.usedSingletonSites.begin(),
                                   result.usedSingletonSites.end());
    view.accessesConsidered = result.accessesConsidered;
    return view;
}

/** Likely invariants for a workload, exactly as the pipelines derive
 *  them (profiling campaign over the profiling corpus). */
inv::InvariantSet
profiledInvariants(const workloads::Workload &workload)
{
    prof::ProfilingCampaign campaign(*workload.module, {});
    campaign.addRunsUntilConverged(workload.profilingSet, 4, 2);
    return campaign.invariants();
}

/** Reference-vs-delta comparison over one workload: CI and CS, sound
 *  and predicated, plus full race-detector parity. */
struct WorkloadParity
{
    std::string name;
    std::vector<PtsView> reference, delta;
    std::vector<RaceView> referenceRaces, deltaRaces;

    bool
    operator==(const WorkloadParity &other) const
    {
        return name == other.name && reference == other.reference &&
               delta == other.delta &&
               referenceRaces == other.referenceRaces &&
               deltaRaces == other.deltaRaces;
    }
};

WorkloadParity
runParity(const workloads::Workload &workload)
{
    WorkloadParity out;
    out.name = workload.name;
    const ir::Module &module = *workload.module;
    const inv::InvariantSet invariants = profiledInvariants(workload);

    for (const bool contextSensitive : {false, true}) {
        for (const inv::InvariantSet *inv :
             {static_cast<const inv::InvariantSet *>(nullptr),
              &invariants}) {
            AndersenOptions options;
            options.contextSensitive = contextSensitive;
            options.invariants = inv;

            AndersenOptions refOptions = options;
            refOptions.referenceSolver = true;
            const AndersenResult ref =
                analysis::runAndersen(module, refOptions);
            const AndersenResult now =
                analysis::runAndersen(module, options);
            out.reference.push_back(viewOf(module, ref, inv));
            out.delta.push_back(viewOf(module, now, inv));
        }
    }

    for (const inv::InvariantSet *inv :
         {static_cast<const inv::InvariantSet *>(nullptr), &invariants}) {
        out.referenceRaces.push_back(
            raceViewOf(analysis::runStaticRaceDetector(
                module, inv, nullptr, /*referenceSolver=*/true)));
        out.deltaRaces.push_back(raceViewOf(
            analysis::runStaticRaceDetector(module, inv, nullptr)));
    }
    return out;
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names = workloads::raceWorkloadNames();
    const auto &slice = workloads::sliceWorkloadNames();
    names.insert(names.end(), slice.begin(), slice.end());
    return names;
}

WorkloadParity
runParityByName(const std::string &name, bool race)
{
    return runParity(race ? workloads::makeRaceWorkload(name, 1, 3)
                          : workloads::makeSliceWorkload(name, 1, 3));
}

TEST(AndersenParity, DeltaSolverMatchesReferenceOnAllWorkloads)
{
    const std::vector<std::string> names = allWorkloadNames();
    const std::size_t numRace = workloads::raceWorkloadNames().size();

    const auto serial = support::runBatch(
        names.size(),
        [&](std::size_t i) {
            return runParityByName(names[i], i < numRace);
        },
        1);

    std::size_t nonEmptySets = 0, icalls = 0, slices = 0, races = 0;
    for (const WorkloadParity &parity : serial) {
        ASSERT_EQ(parity.reference.size(), parity.delta.size());
        for (std::size_t m = 0; m < parity.reference.size(); ++m) {
            EXPECT_EQ(parity.reference[m], parity.delta[m])
                << "points-to / slice parity broke on " << parity.name
                << " (mode " << m << ")";
        }
        EXPECT_EQ(parity.referenceRaces, parity.deltaRaces)
            << "race reports diverged on " << parity.name;
        for (const PtsView &view : parity.reference) {
            for (const auto &pts : view.flatPts)
                nonEmptySets += !pts.empty();
            icalls += view.icalls.size();
            slices += view.slices.size();
        }
        for (const RaceView &view : parity.referenceRaces)
            races += view.racyPairs.size();
    }
    // Sanity: the comparisons above must not be vacuous.
    EXPECT_GT(nonEmptySets, 0u);
    EXPECT_GT(icalls, 0u);
    EXPECT_GT(slices, 0u);
    EXPECT_GT(races, 0u);

    // The same batch at 4 workers must produce the same results in
    // the same index order.
    const auto parallel = support::runBatch(
        names.size(),
        [&](std::size_t i) {
            return runParityByName(names[i], i < numRace);
        },
        4);
    EXPECT_TRUE(serial == parallel)
        << "Andersen parity batch differs between 1 and 4 threads";
}

// ---------------------------------------------------------------------
// Wavefront-parallel solver: the multithreaded wave scheduler must be
// byte-identical to the 1-thread solve — points-to sets, icall
// targets, slices, race reports AND workUnits (all structural
// decisions are serialized in node-id order; threads only ever split
// a wave's independent per-node work).  A seeded task-order shuffle
// perturbs execution interleaving without being allowed to perturb
// results.
// ---------------------------------------------------------------------

constexpr std::uint64_t kShuffleSeeds[] = {0, 0x9e3779b97f4a7c15ull};

TEST(WavefrontParallel, SolveByteIdenticalAcrossThreadsAndShuffles)
{
    // One race and one slice workload keep the matrix affordable; the
    // all-workloads reference sweep above already pins what the
    // 1-thread fixpoint must be.
    const std::vector<workloads::Workload> subjects = {
        workloads::makeRaceWorkload(workloads::raceWorkloadNames().front(),
                                    1, 3),
        workloads::makeSliceWorkload("vim", 1, 3)};
    for (const workloads::Workload &workload : subjects) {
        const ir::Module &module = *workload.module;
        const inv::InvariantSet invariants = profiledInvariants(workload);
        for (const bool contextSensitive : {false, true}) {
            for (const inv::InvariantSet *inv :
                 {static_cast<const inv::InvariantSet *>(nullptr),
                  &invariants}) {
                AndersenOptions serialOptions;
                serialOptions.contextSensitive = contextSensitive;
                serialOptions.invariants = inv;
                serialOptions.solverThreads = 1;
                const AndersenResult serial =
                    analysis::runAndersen(module, serialOptions);
                const PtsView serialView = viewOf(module, serial, inv);
                for (const std::uint32_t threads : {2u, 4u}) {
                    for (const std::uint64_t seed : kShuffleSeeds) {
                        AndersenOptions options = serialOptions;
                        options.solverThreads = threads;
                        options.waveShuffleSeed = seed;
                        const AndersenResult parallel =
                            analysis::runAndersen(module, options);
                        EXPECT_EQ(serialView,
                                  viewOf(module, parallel, inv))
                            << workload.name << " cs=" << contextSensitive
                            << " pred=" << (inv != nullptr)
                            << " threads=" << threads << " seed=" << seed;
                        EXPECT_EQ(serial.workUnits, parallel.workUnits)
                            << workload.name
                            << " workUnits moved with thread count";
                    }
                }
            }
        }
    }
}

TEST(WavefrontParallel, RaceReportsByteIdenticalAtAnyThreadCount)
{
    const workloads::Workload workload = workloads::makeRaceWorkload(
        workloads::raceWorkloadNames().front(), 1, 3);
    const ir::Module &module = *workload.module;
    const inv::InvariantSet invariants = profiledInvariants(workload);

    for (const inv::InvariantSet *inv :
         {static_cast<const inv::InvariantSet *>(nullptr), &invariants}) {
        const RaceView serial =
            raceViewOf(analysis::runStaticRaceDetector(
                module, inv, nullptr, /*referenceSolver=*/false,
                /*solverThreads=*/1));
        for (const std::uint32_t threads : {2u, 4u})
            EXPECT_EQ(serial,
                      raceViewOf(analysis::runStaticRaceDetector(
                          module, inv, nullptr, false, threads)))
                << "pred=" << (inv != nullptr)
                << " threads=" << threads;
    }

    // solverThreads = 0 defaults to the OHA_THREADS pool width; the
    // env value must not leak into results either.
    const char *saved = std::getenv("OHA_THREADS");
    const std::string savedValue = saved ? saved : "";
    std::vector<RaceView> perEnv;
    for (const char *env : {"1", "2", "4"}) {
        ASSERT_EQ(setenv("OHA_THREADS", env, 1), 0);
        support::refreshConfiguredThreads();
        perEnv.push_back(raceViewOf(analysis::runStaticRaceDetector(
            module, &invariants, nullptr, false, /*solverThreads=*/0)));
    }
    if (saved)
        setenv("OHA_THREADS", savedValue.c_str(), 1);
    else
        unsetenv("OHA_THREADS");
    support::refreshConfiguredThreads();
    EXPECT_EQ(perEnv[0], perEnv[1]) << "OHA_THREADS 1 vs 2";
    EXPECT_EQ(perEnv[0], perEnv[2]) << "OHA_THREADS 1 vs 4";
}

/** Non-entry, spawn/join-free function names: edits there keep the
 *  constraint diff usable, so resolveIncremental actually engages. */
std::vector<std::string>
incrementalEditNames(const ir::Module &module, std::size_t count)
{
    std::vector<char> hasThreadOp(module.numFunctions(), 0);
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (ins.op == ir::Opcode::Spawn || ins.op == ir::Opcode::Join)
            hasThreadOp[ins.func] = 1;
    }
    std::vector<std::string> names;
    for (const auto &func : module.functions()) {
        if (func->name() == "main" || hasThreadOp[func->id()])
            continue;
        names.push_back(func->name());
        if (names.size() == count)
            break;
    }
    return names;
}

TEST(WavefrontParallel, IncrementalResolveByteIdenticalAcrossThreads)
{
    // resolveIncremental rides the same wave scheduler (the taint
    // closure is just the initial wave set), so the patched result
    // must match the from-scratch solve at every thread count too.
    const workloads::Workload workload = workloads::makeRaceWorkload(
        workloads::raceWorkloadNames().front(), 1, 3);
    const std::shared_ptr<const ir::Module> base = workload.module;
    const std::shared_ptr<const ir::Module> next =
        workloads::editFunctions(*base, incrementalEditNames(*base, 2));
    const ir::ModuleDiff structural = ir::computeModuleDiff(*base, *next);
    const analysis::ConstraintDiff diff = analysis::lowerToConstraints(
        *base, *next, structural, nullptr, nullptr);
    ASSERT_TRUE(diff.usable);

    const AndersenResult baseResult =
        analysis::runAndersen(*base, AndersenOptions{});
    const PtsView scratchView = viewOf(
        *next, analysis::runAndersen(*next, AndersenOptions{}), nullptr);

    for (const std::uint32_t threads : {1u, 2u, 4u}) {
        for (const std::uint64_t seed : kShuffleSeeds) {
            AndersenOptions options;
            options.solverThreads = threads;
            options.waveShuffleSeed = seed;
            analysis::IncrementalInput input;
            input.baseModule = base.get();
            input.base = &baseResult;
            input.diff = &diff;
            bool usedIncremental = false;
            const AndersenResult patched =
                analysis::runAndersenIncremental(*next, options, input,
                                                 nullptr, &usedIncremental);
            EXPECT_TRUE(usedIncremental)
                << "threads=" << threads << " seed=" << seed;
            EXPECT_EQ(scratchView, viewOf(*next, patched, nullptr))
                << "threads=" << threads << " seed=" << seed;
        }
    }
}

} // namespace
} // namespace oha
