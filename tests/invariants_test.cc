/**
 * @file
 * Tests for the InvariantSet artifact: text (de)serialization
 * round-trips, context hashing, fact counting and query helpers.
 */

#include <gtest/gtest.h>

#include "dyn/violation.h"
#include "invariants/invariant_set.h"

namespace oha::inv {
namespace {

InvariantSet
sample()
{
    InvariantSet set;
    set.numBlocks = 10;
    set.visitedBlocks.insert(0);
    set.visitedBlocks.insert(3);
    set.visitedBlocks.insert(9);
    set.calleeSets[42] = {1, 2};
    set.calleeSets[77] = {0};
    set.hasCallContexts = true;
    set.callContexts.insert({5});
    set.callContexts.insert({5, 9});
    set.mustAliasLocks.insert({11, 11});
    set.mustAliasLocks.insert({11, 23});
    set.singletonSpawnSites.insert(31);
    set.elidableLockSites.insert(11);
    set.rehashContexts();
    return set;
}

TEST(InvariantSet, TextRoundTrip)
{
    const InvariantSet original = sample();
    const std::string text = original.saveText();
    const InvariantSet reloaded = InvariantSet::loadText(text);
    EXPECT_TRUE(reloaded == original);
}

TEST(InvariantSet, RoundTripOfEmptySet)
{
    InvariantSet empty;
    empty.numBlocks = 0;
    const InvariantSet reloaded =
        InvariantSet::loadText(empty.saveText());
    EXPECT_TRUE(reloaded == empty);
}

TEST(InvariantSet, SaveIsHumanReadable)
{
    const std::string text = sample().saveText();
    EXPECT_NE(text.find("oha-invariants v1"), std::string::npos);
    EXPECT_NE(text.find("visited"), std::string::npos);
    EXPECT_NE(text.find("callees 42 1 2"), std::string::npos);
    EXPECT_NE(text.find("lockalias 11 23"), std::string::npos);
    EXPECT_NE(text.find("singleton 31"), std::string::npos);
    EXPECT_NE(text.find("context 5 9"), std::string::npos);
}

TEST(InvariantSet, FactCountCoversEveryFamily)
{
    EXPECT_EQ(sample().factCount(),
              3u /*blocks*/ + 3u /*callees*/ + 2u /*contexts*/ +
                  2u /*locks*/ + 1u /*singleton*/ + 1u /*elidable*/);
}

TEST(InvariantSet, LocksMustAliasIsOrderNormalized)
{
    const InvariantSet set = sample();
    EXPECT_TRUE(set.locksMustAlias(11, 23));
    EXPECT_TRUE(set.locksMustAlias(23, 11));
    EXPECT_FALSE(set.locksMustAlias(23, 23));
}

TEST(InvariantSet, ContextHashIsIncremental)
{
    const CallContext context = {4, 8, 15};
    std::uint64_t h = 0x51ed270b0a1f39c1ULL;
    for (InstrId site : context)
        h = contextHashPush(h, site);
    EXPECT_EQ(h, contextHash(context));
}

TEST(InvariantSet, ContextHashesDistinguishOrderAndDepth)
{
    EXPECT_NE(contextHash({1, 2}), contextHash({2, 1}));
    EXPECT_NE(contextHash({1}), contextHash({1, 1}));
    EXPECT_NE(contextHash({}), contextHash({0}));
}

TEST(InvariantSet, RehashMatchesStoredContexts)
{
    InvariantSet set = sample();
    for (const CallContext &context : set.callContexts)
        EXPECT_TRUE(set.contextHashes.count(contextHash(context)));
    EXPECT_EQ(set.contextHashes.size(), set.callContexts.size());
}

TEST(InvariantSet, BlockVisitedOutOfRangeIsFalse)
{
    const InvariantSet set = sample();
    EXPECT_FALSE(set.blockVisited(1000));
    EXPECT_TRUE(set.blockVisited(3));
    EXPECT_FALSE(set.blockVisited(4));
}

dyn::Violation
violation(dyn::ViolationFamily family, InstrId site,
          InstrId partner = kNoInstr)
{
    dyn::Violation v;
    v.family = family;
    v.site = site;
    v.partner = partner;
    return v;
}

TEST(InvariantDemotion, UnreachableBlockBecomesVisited)
{
    InvariantSet set = sample();
    ASSERT_FALSE(set.blockVisited(4));
    EXPECT_TRUE(
        set.demote(violation(dyn::ViolationFamily::UnreachableBlock, 4)));
    EXPECT_TRUE(set.blockVisited(4));
    // Already repaired: nothing left to remove.
    EXPECT_FALSE(
        set.demote(violation(dyn::ViolationFamily::UnreachableBlock, 4)));
}

TEST(InvariantDemotion, CalleeSetAdmitsTheObservedTarget)
{
    InvariantSet set = sample();
    ASSERT_EQ(set.calleeSets.at(42), (std::set<FuncId>{1, 2}));
    dyn::Violation v = violation(dyn::ViolationFamily::CalleeSet, 42);
    v.observed = 9;
    EXPECT_TRUE(set.demote(v));
    // Widened, never dropped: a missing entry would read as "the site
    // never executes" to the predicated analyses.
    EXPECT_EQ(set.calleeSets.at(42), (std::set<FuncId>{1, 2, 9}));
    EXPECT_EQ(set.calleeSets.at(77), std::set<FuncId>{0})
        << "other sites untouched";
    EXPECT_FALSE(set.demote(v)) << "target already admitted";
    // A violation at an unknown site is unrepairable (the checker
    // never watches such sites, so this cannot happen organically).
    dyn::Violation stray = violation(dyn::ViolationFamily::CalleeSet, 5);
    stray.observed = 1;
    EXPECT_FALSE(set.demote(stray));
}

TEST(InvariantDemotion, CallContextInsertsChainAndPrefixes)
{
    InvariantSet set = sample();
    dyn::Violation v =
        violation(dyn::ViolationFamily::CallContext, 9);
    v.contextChain = {5, 9, 13};
    ASSERT_FALSE(set.callContexts.count({5, 9, 13}));
    EXPECT_TRUE(set.demote(v));
    EXPECT_TRUE(set.callContexts.count({5, 9, 13}));
    EXPECT_TRUE(set.callContexts.count({5, 9})) << "prefixes too";
    EXPECT_TRUE(set.contextHashes.count(contextHash({5, 9, 13})))
        << "hash index updated incrementally";
    EXPECT_EQ(set.contextHashes.size(), set.callContexts.size());
    EXPECT_FALSE(set.demote(v)) << "chain already admitted";
}

TEST(InvariantDemotion, MustAliasPairErased)
{
    InvariantSet set = sample();
    ASSERT_TRUE(set.locksMustAlias(11, 23));
    // Pair divergence removes the (normalized) pair only.
    EXPECT_TRUE(
        set.demote(violation(dyn::ViolationFamily::MustAliasLock, 23, 11)));
    EXPECT_FALSE(set.locksMustAlias(11, 23));
    EXPECT_TRUE(set.mustAliasLocks.count({11, 11}))
        << "reflexive fact survives a pair divergence";
}

TEST(InvariantDemotion, RebindErasesEveryPairTouchingTheSite)
{
    InvariantSet set = sample();
    // partner == site encodes a single-site rebind: the site is not
    // single-object, so every pair built on it is unsound.
    EXPECT_TRUE(
        set.demote(violation(dyn::ViolationFamily::MustAliasLock, 11, 11)));
    EXPECT_TRUE(set.mustAliasLocks.empty());
    EXPECT_FALSE(
        set.demote(violation(dyn::ViolationFamily::MustAliasLock, 11, 11)));
}

TEST(InvariantDemotion, SingletonSpawnErased)
{
    InvariantSet set = sample();
    EXPECT_TRUE(
        set.demote(violation(dyn::ViolationFamily::SingletonSpawn, 31)));
    EXPECT_FALSE(set.singletonSpawnSites.count(31));
    EXPECT_FALSE(
        set.demote(violation(dyn::ViolationFamily::SingletonSpawn, 31)));
}

TEST(InvariantDemotion, ElidedLockRaceClearsAllElisions)
{
    InvariantSet set = sample();
    ASSERT_FALSE(set.elidableLockSites.empty());
    EXPECT_TRUE(
        set.demote(violation(dyn::ViolationFamily::ElidedLockRace, 0)));
    EXPECT_TRUE(set.elidableLockSites.empty());
    EXPECT_FALSE(
        set.demote(violation(dyn::ViolationFamily::ElidedLockRace, 0)));
}

TEST(InvariantDemotion, NoneIsNotDemotable)
{
    InvariantSet set = sample();
    EXPECT_FALSE(set.demote(violation(dyn::ViolationFamily::None, 0)));
    EXPECT_TRUE(set == sample());
}

} // namespace
} // namespace oha::inv
