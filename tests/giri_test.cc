/**
 * @file
 * Tests for the Giri dynamic slicer: dynamic data-flow closure,
 * memory/call/thread dependencies, and the interaction between
 * instrumentation elision and the static slice (closure ⇒ no missing
 * metadata; broken closure ⇒ detectable missing metadata, Figure 2).
 */

#include <gtest/gtest.h>

#include "analysis/slicer.h"
#include "dyn/giri.h"
#include "dyn/plans.h"
#include "exec/interpreter.h"
#include "ir/builder.h"

namespace oha::dyn {
namespace {

using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Opcode;
using ir::Reg;

InstrId
firstOutput(const Module &module)
{
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == Opcode::Output)
            return id;
    OHA_PANIC("no output");
}

InstrId
defOf(const Module &module, FuncId func, Reg reg)
{
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).func == func && module.instr(id).dest == reg)
            return id;
    OHA_PANIC("no def");
}

struct GiriOutcome
{
    std::set<InstrId> slice;
    std::uint64_t missing;
    std::uint64_t traceLength;
};

GiriOutcome
runGiri(const Module &module, const exec::InstrumentationPlan &plan,
        InstrId endpoint, std::vector<std::int64_t> input = {})
{
    GiriSlicer tool(module);
    exec::ExecConfig config;
    config.input = std::move(input);
    exec::Interpreter interp(module, config);
    interp.attach(&tool, &plan);
    EXPECT_TRUE(interp.run().finished());
    return {tool.slice(endpoint), tool.missingDependencies(),
            tool.traceLength()};
}

TEST(Giri, DynamicSliceFollowsDataFlow)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    const Reg a = b.input(0);
    const Reg noise = b.constInt(1000);
    const Reg c = b.mul(a, a);
    b.output(c);
    b.output(noise);
    b.ret();
    module.finalize();

    const auto outcome = runGiri(module, fullGiriPlan(module),
                                 firstOutput(module), {6});
    EXPECT_TRUE(outcome.slice.count(defOf(module, main->id(), a)));
    EXPECT_TRUE(outcome.slice.count(defOf(module, main->id(), c)));
    EXPECT_FALSE(outcome.slice.count(defOf(module, main->id(), noise)));
    EXPECT_EQ(outcome.missing, 0u);
}

TEST(Giri, MemoryDependenceIsExact)
{
    // Dynamic slicing resolves which store actually fed the load —
    // more precise than the static may-alias edge.
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    const Reg buf = b.alloc(2);
    const Reg v0 = b.constInt(10);
    const Reg v1 = b.constInt(20);
    b.store(b.gep(buf, 0), v0);
    b.store(b.gep(buf, 1), v1);
    b.output(b.load(b.gep(buf, 1)));
    b.ret();
    module.finalize();

    const auto outcome =
        runGiri(module, fullGiriPlan(module), firstOutput(module));
    EXPECT_TRUE(outcome.slice.count(defOf(module, main->id(), v1)));
    EXPECT_FALSE(outcome.slice.count(defOf(module, main->id(), v0)));
}

TEST(Giri, InterproceduralDependencies)
{
    Module module;
    IRBuilder b(module);
    Function *twice = b.createFunction("twice", 1);
    const Reg doubled = b.add(0, 0);
    b.ret(doubled);
    Function *main = b.createFunction("main", 0);
    const Reg seed = b.input(0);
    b.output(b.call(twice, {seed}));
    b.ret();
    module.finalize();

    const auto outcome = runGiri(module, fullGiriPlan(module),
                                 firstOutput(module), {4});
    EXPECT_TRUE(outcome.slice.count(defOf(module, twice->id(), doubled)));
    EXPECT_TRUE(outcome.slice.count(defOf(module, main->id(), seed)));
    EXPECT_EQ(outcome.missing, 0u);
}

TEST(Giri, ThreadReturnDependency)
{
    Module module;
    IRBuilder b(module);
    Function *worker = b.createFunction("worker", 1);
    const Reg sq = b.mul(0, 0);
    b.ret(sq);
    b.createFunction("main", 0);
    const Reg x = b.input(0);
    const Reg h = b.spawn(worker, {x});
    b.output(b.join(h));
    b.ret();
    module.finalize();

    const auto outcome = runGiri(module, fullGiriPlan(module),
                                 firstOutput(module), {7});
    EXPECT_TRUE(outcome.slice.count(defOf(module, worker->id(), sq)));
    EXPECT_EQ(outcome.missing, 0u);
}

/** Program with a relevant and an irrelevant computation chain. */
void
buildTwoChain(Module &module)
{
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    (void)main;
    const Reg buf = b.alloc(1);
    const Reg important = b.input(0);
    b.store(buf, important);
    // Big irrelevant chain.
    Reg junk = b.constInt(3);
    for (int i = 0; i < 20; ++i)
        junk = b.mul(junk, b.constInt(i + 2));
    b.output(b.load(buf));
    b.output(junk);
    b.ret();
    module.finalize();
}

TEST(Giri, HybridPlanFromStaticSliceHasNoMissingMetadata)
{
    Module module;
    buildTwoChain(module);
    const InstrId endpoint = firstOutput(module);

    // Static slice closure -> plan -> dynamic slice must be complete
    // and equal to the full-instrumentation dynamic slice.
    const auto andersen = analysis::runAndersen(module, {});
    analysis::StaticSlicer slicer(module, andersen, {});
    const auto staticSlice = slicer.slice(endpoint);

    const auto hybridPlan =
        sliceGiriPlan(module, staticSlice.instructions);
    const auto hybrid = runGiri(module, hybridPlan, endpoint, {5});
    const auto full =
        runGiri(module, fullGiriPlan(module), endpoint, {5});

    EXPECT_EQ(hybrid.missing, 0u);
    EXPECT_EQ(hybrid.slice, full.slice);
    EXPECT_LT(hybrid.traceLength, full.traceLength)
        << "hybrid instrumentation must be cheaper";
}

TEST(Giri, BrokenClosureIsDetectedAsMissingMetadata)
{
    // Eliding a producer that the slice needs (what happens when a
    // likely invariant is wrong and no check catches it) surfaces as
    // a missing dependency — the Figure 2 situation.
    Module module;
    buildTwoChain(module);
    const InstrId endpoint = firstOutput(module);

    auto plan = fullGiriPlan(module);
    // Elide the store feeding the load.
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == Opcode::Store)
            plan.setInstr(id, false);

    const auto broken = runGiri(module, plan, endpoint, {5});
    const auto full = runGiri(module, fullGiriPlan(module), endpoint, {5});
    EXPECT_NE(broken.slice, full.slice);
}

TEST(Giri, SliceIsDeterministic)
{
    Module module;
    buildTwoChain(module);
    const InstrId endpoint = firstOutput(module);
    const auto a = runGiri(module, fullGiriPlan(module), endpoint, {5});
    const auto b = runGiri(module, fullGiriPlan(module), endpoint, {5});
    EXPECT_EQ(a.slice, b.slice);
    EXPECT_EQ(a.traceLength, b.traceLength);
}

} // namespace
} // namespace oha::dyn
