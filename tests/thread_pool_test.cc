/**
 * @file
 * Unit tests for the thread pool and runBatch(): index-order result
 * collection, the serial inline path, OHA_THREADS parsing, exception
 * propagation, and actual wall-clock overlap of concurrent jobs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "support/thread_pool.h"

namespace oha {
namespace {

/** RAII guard that restores OHA_THREADS (and the cached parse) on
 *  scope exit.  configuredThreads() reads the environment only at
 *  refresh points, so every setenv below is followed by an explicit
 *  refreshConfiguredThreads(). */
class EnvGuard
{
  public:
    EnvGuard()
    {
        if (const char *old = std::getenv("OHA_THREADS"))
            saved_ = old;
    }
    ~EnvGuard()
    {
        if (saved_.empty())
            unsetenv("OHA_THREADS");
        else
            setenv("OHA_THREADS", saved_.c_str(), 1);
        support::refreshConfiguredThreads();
    }

  private:
    std::string saved_;
};

/** setenv + re-parse in one step. */
std::size_t
setThreadsEnv(const char *value)
{
    setenv("OHA_THREADS", value, 1);
    return support::refreshConfiguredThreads();
}

TEST(ThreadPool, RunsSubmittedTasks)
{
    std::atomic<int> counter{0};
    {
        support::ThreadPool pool(3);
        EXPECT_EQ(pool.numThreads(), 3u);
        for (int i = 0; i < 100; ++i)
            pool.submit([&counter] { ++counter; });
        pool.wait();
        EXPECT_EQ(counter.load(), 100);
    }
}

TEST(ThreadPool, WaitIsReusable)
{
    std::atomic<int> counter{0};
    support::ThreadPool pool(2);
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
    pool.submit([&counter] { ++counter; });
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 3);
}

TEST(RunBatch, ResultsComeBackInIndexOrder)
{
    const auto results = support::runBatch(
        64, [](std::size_t i) { return i * i; }, 4);
    ASSERT_EQ(results.size(), 64u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(RunBatch, SerialPathRunsInlineOnCaller)
{
    const std::thread::id caller = std::this_thread::get_id();
    const auto ids = support::runBatch(
        8, [](std::size_t) { return std::this_thread::get_id(); }, 1);
    for (const std::thread::id &id : ids)
        EXPECT_EQ(id, caller);
}

TEST(RunBatch, SingleJobRunsInlineEvenWithManyThreads)
{
    const std::thread::id caller = std::this_thread::get_id();
    const auto ids = support::runBatch(
        1, [](std::size_t) { return std::this_thread::get_id(); }, 8);
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], caller);
}

TEST(RunBatch, JobsActuallyOverlap)
{
    // Four sleeping jobs on four workers should take ~one sleep, not
    // four; this holds even on a single-core host, so it doubles as
    // the speedup check the acceptance criteria ask for.  Serial
    // execution of the same batch would need >= 4 * 50ms.
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    support::runBatch(
        4,
        [](std::size_t i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            return i;
        },
        4);
    const double elapsed =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    // 4 * 50ms serial vs budgeted 110ms parallel: > 1.8x speedup.
    EXPECT_LT(elapsed, 110.0);
}

TEST(RunBatch, PropagatesFirstException)
{
    EXPECT_THROW(support::runBatch(
                     16,
                     [](std::size_t i) {
                         if (i % 5 == 3)
                             throw std::runtime_error("job failed");
                         return i;
                     },
                     4),
                 std::runtime_error);
}

TEST(RunBatch, ZeroJobsIsANoOp)
{
    const auto results =
        support::runBatch(0, [](std::size_t i) { return i; }, 4);
    EXPECT_TRUE(results.empty());
}

TEST(ConfiguredThreads, ExplicitRequestWins)
{
    EnvGuard guard;
    setThreadsEnv("4");
    EXPECT_EQ(support::configuredThreads(3), 3u);
}

TEST(ConfiguredThreads, ReadsEnvironment)
{
    // 3 and 4 are within maxSaneThreads() on any machine (it is at
    // least 4 * max(1, hardware_concurrency)), so no clamping here.
    EnvGuard guard;
    setThreadsEnv("3");
    EXPECT_EQ(support::configuredThreads(), 3u);
    EXPECT_EQ(support::configuredThreads(0), 3u);
}

TEST(ConfiguredThreads, DefaultsToSerial)
{
    EnvGuard guard;
    unsetenv("OHA_THREADS");
    support::refreshConfiguredThreads();
    EXPECT_EQ(support::configuredThreads(), 1u);
}

TEST(ConfiguredThreads, ParsesOnceIntoCache)
{
    EnvGuard guard;
    setThreadsEnv("3");
    EXPECT_EQ(support::configuredThreads(), 3u);
    // A bare setenv without a refresh must NOT change the cached
    // value: steady-state callers never re-read the environment.
    setenv("OHA_THREADS", "4", 1);
    EXPECT_EQ(support::configuredThreads(), 3u);
    support::refreshConfiguredThreads();
    EXPECT_EQ(support::configuredThreads(), 4u);
}

TEST(ConfiguredThreads, IgnoresMalformedValues)
{
    EnvGuard guard;
    EXPECT_EQ(setThreadsEnv("banana"), 1u);
    EXPECT_EQ(support::configuredThreads(), 1u);
    EXPECT_EQ(setThreadsEnv("4x"), 1u);
    EXPECT_EQ(support::configuredThreads(), 1u);
    EXPECT_EQ(setThreadsEnv("0"), 1u);
    EXPECT_EQ(support::configuredThreads(), 1u);
    EXPECT_EQ(setThreadsEnv(""), 1u);
    EXPECT_EQ(support::configuredThreads(), 1u);
}

TEST(ConfiguredThreads, ClampsAbsurdEnvironmentValues)
{
    EnvGuard guard;
    const std::size_t max = support::maxSaneThreads();
    EXPECT_GE(max, 4u);
    EXPECT_EQ(setThreadsEnv("4000000000"), max);
    EXPECT_EQ(support::configuredThreads(), max);
}

TEST(ConfiguredThreads, ClampsAbsurdExplicitRequests)
{
    EnvGuard guard;
    const std::size_t max = support::maxSaneThreads();
    EXPECT_EQ(support::configuredThreads(max + 1), max);
    EXPECT_EQ(support::configuredThreads(std::size_t{1} << 40), max);
    // In-range requests pass through unclamped.
    EXPECT_EQ(support::configuredThreads(2), 2u);
}

} // namespace
} // namespace oha
