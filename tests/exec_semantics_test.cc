/**
 * @file
 * Deeper interpreter semantics: pointer/handle comparisons, deep
 * call stacks, value tagging, event-class mapping, guest-fault
 * taxonomy and scheduler edge cases.
 */

#include <gtest/gtest.h>

#include "exec/interpreter.h"
#include "ir/builder.h"

namespace oha::exec {
namespace {

using ir::BasicBlock;
using ir::BinOpKind;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Opcode;
using ir::Reg;

RunResult
run(const Module &module, ExecConfig config = {})
{
    Interpreter interp(module, std::move(config));
    return interp.run();
}

TEST(ExecSemantics, PointerEqualityComparesObjectAndOffset)
{
    Module module;
    IRBuilder b(module);
    b.createFunction("main", 0);
    const Reg buf = b.alloc(4);
    const Reg p1 = b.gep(buf, 2);
    const Reg p2 = b.gep(b.gep(buf, 1), 1); // same address, two hops
    const Reg p3 = b.gep(buf, 3);
    const Reg other = b.alloc(4);
    b.output(b.eq(p1, p2)); // 1
    b.output(b.eq(p1, p3)); // 0
    b.output(b.ne(buf, other)); // 1
    b.output(b.eq(buf, b.gep(other, 0))); // 0: distinct objects
    b.ret();
    module.finalize();

    const auto result = run(module);
    ASSERT_TRUE(result.finished());
    EXPECT_EQ(result.outputs[0].second, 1);
    EXPECT_EQ(result.outputs[1].second, 0);
    EXPECT_EQ(result.outputs[2].second, 1);
    EXPECT_EQ(result.outputs[3].second, 0);
}

TEST(ExecSemantics, FunctionPointerEquality)
{
    Module module;
    IRBuilder b(module);
    Function *f = b.createFunction("f", 0);
    b.ret(b.constInt(0));
    Function *g = b.createFunction("g", 0);
    b.ret(b.constInt(0));
    b.createFunction("main", 0);
    const Reg pf1 = b.funcAddr(f);
    const Reg pf2 = b.funcAddr(f);
    const Reg pg = b.funcAddr(g);
    b.output(b.eq(pf1, pf2));
    b.output(b.eq(pf1, pg));
    b.ret();
    module.finalize();

    const auto result = run(module);
    EXPECT_EQ(result.outputs[0].second, 1);
    EXPECT_EQ(result.outputs[1].second, 0);
}

TEST(ExecSemantics, ArithmeticOnPointerFaults)
{
    Module module;
    IRBuilder b(module);
    b.createFunction("main", 0);
    const Reg buf = b.alloc(1);
    b.output(b.add(buf, b.constInt(1))); // pointer + int: fault
    b.ret();
    module.finalize();
    EXPECT_EQ(run(module).status, RunResult::Status::RuntimeError);
}

TEST(ExecSemantics, DeepRecursionWorks)
{
    Module module;
    IRBuilder b(module);
    Function *rec = b.createFunction("rec", 1);
    {
        BasicBlock *more = b.createBlock(rec, "more");
        BasicBlock *leaf = b.createBlock(rec, "leaf");
        b.condBr(b.binop(BinOpKind::Gt, 0, b.constInt(0)), more, leaf);
        b.setInsertPoint(more);
        const Reg sub = b.call(rec, {b.sub(0, b.constInt(1))});
        b.ret(b.add(sub, b.constInt(1)));
        b.setInsertPoint(leaf);
        b.ret(b.constInt(0));
    }
    b.createFunction("main", 0);
    b.output(b.call(rec, {b.constInt(500)}));
    b.ret();
    module.finalize();

    const auto result = run(module);
    ASSERT_TRUE(result.finished());
    EXPECT_EQ(result.outputs[0].second, 500);
}

TEST(ExecSemantics, IcallArityMismatchFaults)
{
    Module module;
    IRBuilder b(module);
    Function *unary = b.createFunction("unary", 1);
    b.ret(0);
    b.createFunction("main", 0);
    b.icall(b.funcAddr(unary), {}); // zero args to a unary function
    b.ret();
    module.finalize();
    EXPECT_EQ(run(module).status, RunResult::Status::RuntimeError);
}

TEST(ExecSemantics, IcallThroughNonFunctionFaults)
{
    Module module;
    IRBuilder b(module);
    b.createFunction("main", 0);
    b.icall(b.constInt(7), {});
    b.ret();
    module.finalize();
    EXPECT_EQ(run(module).status, RunResult::Status::RuntimeError);
}

TEST(ExecSemantics, UnlockWithoutHoldFaults)
{
    Module module;
    const auto m = module.addGlobal("m", 1);
    IRBuilder b(module);
    b.createFunction("main", 0);
    b.unlock(b.globalAddr(m));
    b.ret();
    module.finalize();
    EXPECT_EQ(run(module).status, RunResult::Status::RuntimeError);
}

TEST(ExecSemantics, RecursiveLockFaults)
{
    Module module;
    const auto m = module.addGlobal("m", 1);
    IRBuilder b(module);
    b.createFunction("main", 0);
    b.lock(b.globalAddr(m));
    b.lock(b.globalAddr(m));
    b.ret();
    module.finalize();
    EXPECT_EQ(run(module).status, RunResult::Status::RuntimeError);
}

TEST(ExecSemantics, JoinOfNonThreadFaults)
{
    Module module;
    IRBuilder b(module);
    b.createFunction("main", 0);
    b.join(b.constInt(0));
    b.ret();
    module.finalize();
    EXPECT_EQ(run(module).status, RunResult::Status::RuntimeError);
}

TEST(ExecSemantics, NegativeGepFaults)
{
    Module module;
    IRBuilder b(module);
    b.createFunction("main", 0);
    const Reg buf = b.alloc(2);
    b.gep(buf, -1);
    b.ret();
    module.finalize();
    EXPECT_EQ(run(module).status, RunResult::Status::RuntimeError);
}

TEST(ExecSemantics, EventClassMapping)
{
    EXPECT_EQ(eventClassOf(Opcode::Load), EventClass::Load);
    EXPECT_EQ(eventClassOf(Opcode::Store), EventClass::Store);
    EXPECT_EQ(eventClassOf(Opcode::Lock), EventClass::Lock);
    EXPECT_EQ(eventClassOf(Opcode::Unlock), EventClass::Unlock);
    EXPECT_EQ(eventClassOf(Opcode::Spawn), EventClass::Spawn);
    EXPECT_EQ(eventClassOf(Opcode::Join), EventClass::Join);
    EXPECT_EQ(eventClassOf(Opcode::Call), EventClass::Call);
    EXPECT_EQ(eventClassOf(Opcode::ICall), EventClass::Call);
    EXPECT_EQ(eventClassOf(Opcode::Ret), EventClass::Ret);
    EXPECT_EQ(eventClassOf(Opcode::Output), EventClass::Output);
    EXPECT_EQ(eventClassOf(Opcode::BinOp), EventClass::Other);
    EXPECT_EQ(eventClassOf(Opcode::Alloc), EventClass::Other);
}

TEST(ExecSemantics, ValueTagsAndTruthiness)
{
    EXPECT_TRUE(Value::scalar(5).truthy());
    EXPECT_FALSE(Value::scalar(0).truthy());
    EXPECT_TRUE(Value::pointer(0, 0).truthy());
    EXPECT_TRUE(Value::funcPtr(0).truthy());
    EXPECT_TRUE(Value::thread(0).truthy());
    EXPECT_TRUE(Value::scalar(3) == Value::scalar(3));
    EXPECT_FALSE(Value::scalar(3) == Value::pointer(3, 0));
    EXPECT_TRUE(Value::pointer(1, 2) == Value::pointer(1, 2));
    EXPECT_FALSE(Value::pointer(1, 2) == Value::pointer(1, 3));
}

TEST(ExecSemantics, EncodedValuesAreDistinctAcrossKinds)
{
    const auto scalar = Interpreter::encodeValue(Value::scalar(5));
    const auto pointer = Interpreter::encodeValue(Value::pointer(0, 5));
    const auto func = Interpreter::encodeValue(Value::funcPtr(5));
    const auto thread = Interpreter::encodeValue(Value::thread(5));
    EXPECT_NE(scalar, pointer);
    EXPECT_NE(pointer, func);
    EXPECT_NE(func, thread);
    EXPECT_NE(scalar, thread);
}

TEST(ExecSemantics, ManyThreadsAllRetire)
{
    Module module;
    IRBuilder b(module);
    Function *worker = b.createFunction("worker", 1);
    b.ret(b.mul(0, b.constInt(2)));
    Function *main = b.createFunction("main", 0);
    BasicBlock *spawnLoop = b.createBlock(main, "spawnLoop");
    BasicBlock *spawnBody = b.createBlock(main, "spawnBody");
    BasicBlock *joinLoop = b.createBlock(main, "joinLoop");
    BasicBlock *joinBody = b.createBlock(main, "joinBody");
    BasicBlock *done = b.createBlock(main, "done");
    const int kThreads = 24;
    const Reg handles = b.alloc(kThreads);
    const Reg i = b.constInt(0);
    const Reg n = b.constInt(kThreads);
    const Reg one = b.constInt(1);
    const Reg total = b.constInt(0);
    b.br(spawnLoop);
    b.setInsertPoint(spawnLoop);
    b.condBr(b.lt(i, n), spawnBody, joinLoop);
    b.setInsertPoint(spawnBody);
    b.store(b.gepDyn(handles, i), b.spawn(worker, {i}));
    b.binopTo(i, BinOpKind::Add, i, one);
    b.br(spawnLoop);
    b.setInsertPoint(joinLoop);
    b.constTo(i, 0);
    b.br(joinBody);
    b.setInsertPoint(joinBody);
    const Reg v = b.join(b.load(b.gepDyn(handles, i)));
    b.binopTo(total, BinOpKind::Add, total, v);
    b.binopTo(i, BinOpKind::Add, i, one);
    const Reg more = b.lt(i, n);
    BasicBlock *after = b.createBlock(main, "after");
    b.condBr(more, joinBody, after);
    b.setInsertPoint(after);
    b.br(done);
    b.setInsertPoint(done);
    b.output(total);
    b.ret();
    module.finalize();

    const auto result = run(module);
    ASSERT_TRUE(result.finished()) << result.abortReason;
    EXPECT_EQ(result.numThreads, kThreads + 1u);
    EXPECT_EQ(result.outputs[0].second, kThreads * (kThreads - 1));
}

} // namespace
} // namespace oha::exec
