/**
 * @file
 * Property tests of the paper's central soundness theorem, swept over
 * schedule seeds (parameterized): a speculative analysis with
 * invariant checking and rollback produces exactly the sound
 * analysis' results, for both OptFT-style race detection and
 * OptSlice-style slicing, on an adversarial program whose inputs
 * regularly escape the profiled envelope.
 */

#include <gtest/gtest.h>

#include "analysis/race_detector.h"
#include "analysis/slicer.h"
#include "dyn/fasttrack.h"
#include "dyn/giri.h"
#include "dyn/invariant_checker.h"
#include "dyn/plans.h"
#include "ir/builder.h"
#include "profile/profiler.h"

namespace oha {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Reg;

/**
 * Adversarial program: two workers; input word 0 steers them through
 * a profiled path (locked update), a cold path (unlocked update) or a
 * mixed path; main outputs derived state.
 */
std::shared_ptr<Module>
buildAdversarial()
{
    auto module = std::make_shared<Module>();
    IRBuilder b(*module);
    const auto g = module->addGlobal("g", 2);
    const auto m = module->addGlobal("m", 1);

    Function *worker = b.createFunction("worker", 1);
    {
        Function *f = worker;
        BasicBlock *cold = b.createBlock(f, "cold");
        BasicBlock *hot = b.createBlock(f, "hot");
        BasicBlock *done = b.createBlock(f, "done");
        const Reg mode = b.input(0);
        b.condBr(b.eq(mode, b.constInt(2)), cold, hot);

        b.setInsertPoint(hot);
        const Reg p = b.globalAddr(m);
        b.lock(p);
        const Reg cell = b.gep(b.globalAddr(g), 0);
        b.store(cell, b.add(b.load(cell), 0));
        b.unlock(p);
        b.br(done);

        b.setInsertPoint(cold); // unlocked: races when reached
        const Reg cell2 = b.gep(b.globalAddr(g), 1);
        b.store(cell2, b.add(b.load(cell2), b.constInt(1)));
        b.br(done);

        b.setInsertPoint(done);
        b.ret(b.constInt(0));
    }

    b.createFunction("main", 0);
    const Reg h1 = b.spawn(worker, {b.constInt(1)});
    const Reg h2 = b.spawn(worker, {b.constInt(2)});
    b.join(h1);
    b.join(h2);
    b.output(b.load(b.gep(b.globalAddr(g), 0)));
    b.output(b.load(b.gep(b.globalAddr(g), 1)));
    b.ret();
    return module;
}

exec::ExecConfig
configFor(std::int64_t mode, std::uint64_t seed)
{
    exec::ExecConfig config;
    config.input = {mode};
    config.scheduleSeed = seed;
    return config;
}

class SpeculationSeedTest
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    void
    SetUp() override
    {
        module_ = buildAdversarial();
        module_->finalize();
        prof::ProfileOptions options;
        options.callContexts = true;
        prof::ProfilingCampaign campaign(*module_, options);
        // Profile only the benign mode.
        for (std::uint64_t s = 0; s < 6; ++s)
            campaign.addRun(configFor(1, s));
        invariants_ = campaign.invariants();
    }

    std::shared_ptr<Module> module_;
    inv::InvariantSet invariants_;
};

TEST_P(SpeculationSeedTest, OptimisticRaceReportsEqualSoundReports)
{
    const auto sound = analysis::runStaticRaceDetector(*module_, nullptr);
    const auto predicated =
        analysis::runStaticRaceDetector(*module_, &invariants_);
    const auto fullPlan = dyn::fullFastTrackPlan(*module_);
    const auto optPlan = dyn::optimisticFastTrackPlan(
        *module_, predicated.racyAccesses, invariants_);

    for (std::int64_t mode : {1, 2}) {
        const auto config = configFor(mode, GetParam());

        dyn::FastTrack reference;
        {
            exec::Interpreter interp(*module_, config);
            interp.attach(&reference, &fullPlan);
            interp.run();
        }

        dyn::FastTrack optimistic;
        dyn::CheckerConfig checkerConfig;
        dyn::InvariantChecker checker(*module_, invariants_,
                                      checkerConfig);
        exec::Interpreter interp(*module_, config);
        checker.setControl(&interp);
        interp.attach(&optimistic, &optPlan);
        interp.attach(&checker, &checker.plan());
        interp.run();

        auto races = optimistic.racePairs();
        if (checker.violated()) {
            // Roll back: deterministic sound re-analysis.
            dyn::FastTrack redo;
            exec::Interpreter redoInterp(*module_, config);
            redoInterp.attach(&redo, &fullPlan);
            redoInterp.run();
            races = redo.racePairs();
        } else {
            EXPECT_NE(mode, 2)
                << "the cold mode must always mis-speculate";
        }
        EXPECT_EQ(races, reference.racePairs())
            << "mode " << mode << " seed " << GetParam();
    }
}

TEST_P(SpeculationSeedTest, OptimisticSlicesEqualSoundSlices)
{
    InstrId endpoint = kNoInstr;
    for (InstrId id = 0; id < module_->numInstrs(); ++id)
        if (module_->instr(id).op == ir::Opcode::Output)
            endpoint = id; // the g[1] observer (cold-fed)

    analysis::AndersenOptions soundOpts;
    const auto soundPts = analysis::runAndersen(*module_, soundOpts);
    const analysis::StaticSlicer soundSlicer(*module_, soundPts, {});
    const auto soundSlice = soundSlicer.slice(endpoint);

    analysis::AndersenOptions optOpts;
    optOpts.invariants = &invariants_;
    const auto optPts = analysis::runAndersen(*module_, optOpts);
    analysis::SlicerOptions sliceOpts;
    sliceOpts.invariants = &invariants_;
    const analysis::StaticSlicer optSlicer(*module_, optPts, sliceOpts);
    const auto optSlice = optSlicer.slice(endpoint);

    const auto soundPlan =
        dyn::sliceGiriPlan(*module_, soundSlice.instructions);
    const auto optPlan =
        dyn::sliceGiriPlan(*module_, optSlice.instructions);

    for (std::int64_t mode : {1, 2}) {
        const auto config = configFor(mode, GetParam());

        dyn::GiriSlicer reference(*module_);
        {
            exec::Interpreter interp(*module_, config);
            interp.attach(&reference, &soundPlan);
            interp.run();
        }

        dyn::GiriSlicer optimistic(*module_);
        dyn::CheckerConfig checkerConfig;
        checkerConfig.callContexts = true;
        checkerConfig.guardingLocks = false;
        checkerConfig.singletonThreads = false;
        dyn::InvariantChecker checker(*module_, invariants_,
                                      checkerConfig);
        exec::Interpreter interp(*module_, config);
        checker.setControl(&interp);
        interp.attach(&optimistic, &optPlan);
        interp.attach(&checker, &checker.plan());
        interp.run();

        std::set<InstrId> slice = optimistic.slice(endpoint);
        if (checker.violated()) {
            dyn::GiriSlicer redo(*module_);
            exec::Interpreter redoInterp(*module_, config);
            redoInterp.attach(&redo, &soundPlan);
            redoInterp.run();
            slice = redo.slice(endpoint);
        }
        EXPECT_EQ(slice, reference.slice(endpoint))
            << "mode " << mode << " seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, SpeculationSeedTest,
                         ::testing::Values(1u, 7u, 42u, 99u, 123u, 777u,
                                           4242u, 31337u));

} // namespace
} // namespace oha
