/**
 * @file
 * Tests for the likely-invariant profilers and the multi-run merging
 * campaign (Sections 4.2 / 5.2): union semantics for reachable-style
 * invariants, never-violated semantics for constraint-style ones,
 * and convergence behaviour.
 */

#include <gtest/gtest.h>

#include "profile/profiler.h"
#include "profile/profilers.h"
#include "ir/builder.h"

namespace oha::prof {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Reg;

/** Program with an input-selected branch, an icall, a lock whose
 *  object depends on input, and an input-controlled spawn loop. */
struct ProfiledProgram
{
    Module module;
    BlockId coldBlock = kNoBlock;
    InstrId icall = kNoInstr;
    InstrId lockSite1 = kNoInstr;
    InstrId lockSite2 = kNoInstr;
    InstrId spawnSite = kNoInstr;
    FuncId calleeA = kNoFunc, calleeB = kNoFunc;
};

void
build(ProfiledProgram &prog)
{
    Module &module = prog.module;
    IRBuilder b(module);
    const auto m1 = module.addGlobal("m1", 1);
    const auto m2 = module.addGlobal("m2", 1);

    Function *fa = b.createFunction("callee_a", 0);
    b.ret(b.constInt(1));
    Function *fb = b.createFunction("callee_b", 0);
    b.ret(b.constInt(2));
    prog.calleeA = fa->id();
    prog.calleeB = fb->id();

    Function *worker = b.createFunction("worker", 0);
    b.ret(b.constInt(0));

    Function *main = b.createFunction("main", 0);
    BasicBlock *cold = b.createBlock(main, "cold");
    BasicBlock *merge = b.createBlock(main, "merge");
    BasicBlock *loopHead = b.createBlock(main, "spawnHead");
    BasicBlock *loopBody = b.createBlock(main, "spawnBody");
    BasicBlock *done = b.createBlock(main, "done");
    prog.coldBlock = cold->id();

    // Input 0 selects the cold branch.
    b.condBr(b.input(0), cold, merge);
    b.setInsertPoint(cold);
    b.output(b.constInt(-1));
    b.br(merge);

    b.setInsertPoint(merge);
    // Input 1 selects the icall target.
    const Reg fp = b.assign(b.funcAddr(fa));
    {
        // fp := input1 ? &b : &a, via memory to keep it simple.
        const Reg box = b.alloc(1);
        b.store(box, fp);
        ir::Function *f = main;
        BasicBlock *useB = b.createBlock(f, "useB");
        BasicBlock *afterSel = b.createBlock(f, "afterSel");
        b.condBr(b.input(1), useB, afterSel);
        b.setInsertPoint(useB);
        b.store(box, b.funcAddr(fb));
        b.br(afterSel);
        b.setInsertPoint(afterSel);
        b.icall(b.load(box), {});
    }
    // Two lock sites; input 2 selects which mutex site 2 locks.
    {
        const Reg p1 = b.globalAddr(m1);
        b.lock(p1);
        b.unlock(p1);
        const Reg box = b.alloc(1);
        b.store(box, b.globalAddr(m1));
        ir::Function *f = main;
        BasicBlock *other = b.createBlock(f, "otherLock");
        BasicBlock *afterLock = b.createBlock(f, "afterLock");
        b.condBr(b.input(2), other, afterLock);
        b.setInsertPoint(other);
        b.store(box, b.globalAddr(m2));
        b.br(afterLock);
        b.setInsertPoint(afterLock);
        const Reg p2 = b.load(box);
        b.lock(p2);
        b.unlock(p2);
    }
    // Spawn loop: input 3 = thread count.
    const Reg count = b.input(3);
    const Reg i = b.constInt(0);
    const Reg one = b.constInt(1);
    const Reg handleBox = b.alloc(1);
    b.br(loopHead);
    b.setInsertPoint(loopHead);
    b.condBr(b.lt(i, count), loopBody, done);
    b.setInsertPoint(loopBody);
    b.store(handleBox, b.spawn(worker, {}));
    b.join(b.load(handleBox));
    b.binopTo(i, ir::BinOpKind::Add, i, one);
    b.br(loopHead);
    b.setInsertPoint(done);
    b.ret();

    module.finalize();
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const auto &ins = module.instr(id);
        if (ins.op == ir::Opcode::ICall)
            prog.icall = id;
        if (ins.op == ir::Opcode::Spawn)
            prog.spawnSite = id;
        if (ins.op == ir::Opcode::Lock) {
            if (prog.lockSite1 == kNoInstr)
                prog.lockSite1 = id;
            else
                prog.lockSite2 = id;
        }
    }
}

exec::ExecConfig
input(std::int64_t cold, std::int64_t calleeSel, std::int64_t lockSel,
      std::int64_t threads)
{
    exec::ExecConfig config;
    config.input = {cold, calleeSel, lockSel, threads};
    return config;
}

TEST(Profiler, ColdBlockStaysUnvisited)
{
    ProfiledProgram prog;
    build(prog);
    ProfilingCampaign campaign(prog.module, {});
    campaign.addRun(input(0, 0, 0, 1));
    campaign.addRun(input(0, 0, 0, 1));
    EXPECT_FALSE(campaign.invariants().blockVisited(prog.coldBlock));
    campaign.addRun(input(1, 0, 0, 1));
    EXPECT_TRUE(campaign.invariants().blockVisited(prog.coldBlock));
}

TEST(Profiler, CalleeSetsAreUnioned)
{
    ProfiledProgram prog;
    build(prog);
    ProfilingCampaign campaign(prog.module, {});
    campaign.addRun(input(0, 0, 0, 1));
    EXPECT_EQ(campaign.invariants().calleeSets.at(prog.icall),
              (std::set<FuncId>{prog.calleeA}));
    campaign.addRun(input(0, 1, 0, 1));
    EXPECT_EQ(campaign.invariants().calleeSets.at(prog.icall),
              (std::set<FuncId>{prog.calleeA, prog.calleeB}));
}

TEST(Profiler, MustAliasLockPairSurvivesConsistentRuns)
{
    ProfiledProgram prog;
    build(prog);
    ProfilingCampaign campaign(prog.module, {});
    campaign.addRun(input(0, 0, 0, 1));
    campaign.addRun(input(0, 1, 0, 1));
    const auto &inv = campaign.invariants();
    EXPECT_TRUE(inv.locksMustAlias(prog.lockSite1, prog.lockSite2));
    EXPECT_TRUE(inv.locksMustAlias(prog.lockSite1, prog.lockSite1));
}

TEST(Profiler, MustAliasLockPairDiesOnDivergence)
{
    ProfiledProgram prog;
    build(prog);
    ProfilingCampaign campaign(prog.module, {});
    campaign.addRun(input(0, 0, 0, 1));
    EXPECT_TRUE(campaign.invariants().locksMustAlias(prog.lockSite1,
                                                     prog.lockSite2));
    campaign.addRun(input(0, 0, 1, 1)); // site 2 locks m2 this run
    const auto &inv = campaign.invariants();
    EXPECT_FALSE(inv.locksMustAlias(prog.lockSite1, prog.lockSite2));
    // Site 1 alone still always locks one object.
    EXPECT_TRUE(inv.locksMustAlias(prog.lockSite1, prog.lockSite1));
    // Site 2 locked two distinct objects across runs... within each
    // run it locked exactly one, so its reflexive invariant holds
    // per-run; the cross-run merge must kill it (different objects
    // are indistinguishable across runs only via the pair check).
    EXPECT_TRUE(inv.locksMustAlias(prog.lockSite2, prog.lockSite2));
}

TEST(Profiler, SingletonSpawnRequiresExactlyOneEverywhere)
{
    ProfiledProgram prog;
    build(prog);
    ProfilingCampaign campaign(prog.module, {});
    campaign.addRun(input(0, 0, 0, 1));
    EXPECT_TRUE(campaign.invariants().singletonSpawnSites.count(
        prog.spawnSite));
    campaign.addRun(input(0, 0, 0, 3));
    EXPECT_FALSE(campaign.invariants().singletonSpawnSites.count(
        prog.spawnSite));
}

TEST(Profiler, AddRunReportsConvergence)
{
    ProfiledProgram prog;
    build(prog);
    ProfilingCampaign campaign(prog.module, {});
    EXPECT_TRUE(campaign.addRun(input(0, 0, 0, 1)));
    // An identical run adds nothing.
    EXPECT_FALSE(campaign.addRun(input(0, 0, 0, 1)));
    // A new behaviour changes the set again.
    EXPECT_TRUE(campaign.addRun(input(1, 1, 0, 2)));
}

TEST(Profiler, ProfiledStepsAccumulate)
{
    ProfiledProgram prog;
    build(prog);
    ProfilingCampaign campaign(prog.module, {});
    campaign.addRun(input(0, 0, 0, 1));
    const auto once = campaign.profiledSteps();
    EXPECT_GT(once, 0u);
    campaign.addRun(input(0, 0, 0, 1));
    EXPECT_EQ(campaign.profiledSteps(), 2 * once);
}

TEST(Profiler, CallContextsRecordedWithPrefixes)
{
    // a -> b -> c: the context set must contain [a], [a,b] chains.
    Module module;
    IRBuilder b(module);
    Function *c = b.createFunction("c", 0);
    b.ret(b.constInt(0));
    Function *bf = b.createFunction("b", 0);
    b.call(c, {});
    b.ret(b.constInt(0));
    Function *a = b.createFunction("a", 0);
    b.call(bf, {});
    b.ret(b.constInt(0));
    b.createFunction("main", 0);
    b.call(a, {});
    b.ret();
    module.finalize();

    ProfileOptions options;
    options.callContexts = true;
    ProfilingCampaign campaign(module, options);
    campaign.addRun({});
    const auto &contexts = campaign.invariants().callContexts;
    ASSERT_EQ(contexts.size(), 3u); // [m], [m,a], [m,a,b]
    std::set<std::size_t> depths;
    for (const auto &context : contexts)
        depths.insert(context.size());
    EXPECT_EQ(depths, (std::set<std::size_t>{1, 2, 3}));
    EXPECT_EQ(campaign.invariants().contextHashes.size(), 3u);
}

TEST(Profiler, BlockCountsMatchExecution)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    BasicBlock *loop = b.createBlock(main, "loop");
    BasicBlock *body = b.createBlock(main, "body");
    BasicBlock *exit = b.createBlock(main, "exit");
    const Reg i = b.constInt(0);
    const Reg n = b.constInt(5);
    const Reg one = b.constInt(1);
    b.br(loop);
    b.setInsertPoint(loop);
    b.condBr(b.lt(i, n), body, exit);
    b.setInsertPoint(body);
    b.binopTo(i, ir::BinOpKind::Add, i, one);
    b.br(loop);
    b.setInsertPoint(exit);
    b.ret();
    module.finalize();

    BlockCountProfiler profiler;
    exec::Interpreter interp(module, {});
    const auto plan = exec::InstrumentationPlan::all(module);
    interp.attach(&profiler, &plan);
    ASSERT_TRUE(interp.run().finished());
    EXPECT_EQ(profiler.counts().at(loop->id()), 6u);
    EXPECT_EQ(profiler.counts().at(body->id()), 5u);
    EXPECT_EQ(profiler.counts().at(exit->id()), 1u);
    EXPECT_EQ(profiler.counts().at(main->entry()->id()), 1u);
}

} // namespace
} // namespace oha::prof
