/**
 * @file
 * Determinism tests for the parallel run-batching paths: profiling
 * campaigns and both end-to-end pipelines must produce byte-identical
 * results for any thread count, because observations execute in
 * parallel but merge serially in input-index order.
 */

#include <gtest/gtest.h>

#include "core/optft.h"
#include "core/optslice.h"
#include "profile/profiler.h"

namespace oha::core {
namespace {

TEST(ParallelProfiling, ConvergedCampaignMatchesSerialAddRunLoop)
{
    const auto workload = workloads::makeRaceWorkload("raytracer", 12, 2);
    const std::size_t maxRuns = 12;
    const std::size_t window = 3;

    // Reference: the pre-existing serial addRun() loop.
    prof::ProfileOptions serialOptions;
    prof::ProfilingCampaign serial(*workload.module, serialOptions);
    {
        std::size_t unchanged = 0;
        for (const auto &config : workload.profilingSet) {
            if (serial.numRuns() >= maxRuns || unchanged >= window)
                break;
            unchanged = serial.addRun(config) ? 0 : unchanged + 1;
        }
    }

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        prof::ProfileOptions options;
        options.threads = threads;
        prof::ProfilingCampaign batched(*workload.module, options);
        batched.addRunsUntilConverged(workload.profilingSet, maxRuns,
                                      window);
        EXPECT_EQ(batched.numRuns(), serial.numRuns()) << threads;
        EXPECT_EQ(batched.profiledSteps(), serial.profiledSteps())
            << threads;
        EXPECT_EQ(batched.invariants().saveText(),
                  serial.invariants().saveText())
            << threads;
    }
}

TEST(ParallelProfiling, SurplusSpeculativeRunsAreDiscarded)
{
    // With more workers than the convergence window, a batch can
    // finish runs past the convergence point; they must not leak into
    // the run count or the step total.
    const auto workload = workloads::makeRaceWorkload("lusearch", 16, 2);
    prof::ProfileOptions serialOptions;
    serialOptions.threads = 1;
    prof::ProfilingCampaign serial(*workload.module, serialOptions);
    serial.addRunsUntilConverged(workload.profilingSet, 16, 2);

    prof::ProfileOptions wideOptions;
    wideOptions.threads = 8;
    prof::ProfilingCampaign wide(*workload.module, wideOptions);
    wide.addRunsUntilConverged(workload.profilingSet, 16, 2);

    EXPECT_EQ(wide.numRuns(), serial.numRuns());
    EXPECT_EQ(wide.profiledSteps(), serial.profiledSteps());
    EXPECT_EQ(wide.invariants().saveText(), serial.invariants().saveText());
}

TEST(ParallelOptFt, ThreadCountNeverChangesTheResult)
{
    const auto workload = workloads::makeRaceWorkload("raytracer", 10, 6);

    OptFtConfig serialConfig;
    serialConfig.threads = 1;
    const auto serial = runOptFt(workload, serialConfig);

    OptFtConfig parallelConfig;
    parallelConfig.threads = 4;
    const auto parallel = runOptFt(workload, parallelConfig);

    EXPECT_EQ(parallel.profileRunsUsed, serial.profileRunsUsed);
    EXPECT_EQ(parallel.elidedLockSites, serial.elidedLockSites);
    EXPECT_EQ(parallel.racesObserved, serial.racesObserved);
    EXPECT_EQ(parallel.misSpeculations, serial.misSpeculations);
    EXPECT_EQ(parallel.raceReportsMatch, serial.raceReportsMatch);
    // Costs are sums of doubles folded in input order: exact equality,
    // not approximate, is the contract.
    EXPECT_EQ(parallel.fastTrack.normalized(), serial.fastTrack.normalized());
    EXPECT_EQ(parallel.hybridFt.normalized(), serial.hybridFt.normalized());
    EXPECT_EQ(parallel.optFt.normalized(), serial.optFt.normalized());
    EXPECT_EQ(parallel.speedupVsFastTrack, serial.speedupVsFastTrack);
    EXPECT_EQ(parallel.speedupVsHybrid, serial.speedupVsHybrid);
    EXPECT_EQ(parallel.breakEvenVsHybrid, serial.breakEvenVsHybrid);
}

TEST(ParallelOptFt, MisSpeculatingBenchmarkStaysDeterministic)
{
    // pmd carries a real race, so the elision calibration and the
    // rollback paths are exercised; they too must be thread-agnostic.
    const auto workload = workloads::makeRaceWorkload("pmd", 8, 8);

    OptFtConfig serialConfig;
    serialConfig.threads = 1;
    const auto serial = runOptFt(workload, serialConfig);

    OptFtConfig parallelConfig;
    parallelConfig.threads = 4;
    const auto parallel = runOptFt(workload, parallelConfig);

    EXPECT_GT(serial.racesObserved, 0u);
    EXPECT_EQ(parallel.racesObserved, serial.racesObserved);
    EXPECT_EQ(parallel.misSpeculations, serial.misSpeculations);
    EXPECT_EQ(parallel.raceReportsMatch, serial.raceReportsMatch);
    EXPECT_EQ(parallel.optFt.normalized(), serial.optFt.normalized());
}

TEST(ParallelOptSlice, ThreadCountNeverChangesTheResult)
{
    const auto workload = workloads::makeSliceWorkload("zlib", 8, 5);

    OptSliceConfig serialConfig;
    serialConfig.threads = 1;
    const auto serial = runOptSlice(workload, serialConfig);

    OptSliceConfig parallelConfig;
    parallelConfig.threads = 4;
    const auto parallel = runOptSlice(workload, parallelConfig);

    EXPECT_EQ(parallel.profileRunsUsed, serial.profileRunsUsed);
    EXPECT_EQ(parallel.endpoints, serial.endpoints);
    EXPECT_EQ(parallel.misSpeculations, serial.misSpeculations);
    EXPECT_EQ(parallel.sliceResultsMatch, serial.sliceResultsMatch);
    EXPECT_EQ(parallel.soundSliceSize, serial.soundSliceSize);
    EXPECT_EQ(parallel.optSliceSize, serial.optSliceSize);
    EXPECT_EQ(parallel.hybrid.normalized(), serial.hybrid.normalized());
    EXPECT_EQ(parallel.optimistic.normalized(),
              serial.optimistic.normalized());
    EXPECT_EQ(parallel.dynSpeedup, serial.dynSpeedup);
    EXPECT_EQ(parallel.breakEven, serial.breakEven);
}

TEST(ParallelOptSlice, RollbackHeavyBenchmarkStaysDeterministic)
{
    // Under-profiled go mis-speculates on most test tasks, exercising
    // the rollback accounting in the parallel fold.
    const auto workload = workloads::makeSliceWorkload("go", 4, 8);

    OptSliceConfig serialConfig;
    serialConfig.threads = 1;
    const auto serial = runOptSlice(workload, serialConfig);

    OptSliceConfig parallelConfig;
    parallelConfig.threads = 4;
    const auto parallel = runOptSlice(workload, parallelConfig);

    EXPECT_GT(serial.misSpeculations, 0u);
    EXPECT_EQ(parallel.misSpeculations, serial.misSpeculations);
    EXPECT_EQ(parallel.sliceResultsMatch, serial.sliceResultsMatch);
    EXPECT_EQ(parallel.optimistic.normalized(),
              serial.optimistic.normalized());
}

} // namespace
} // namespace oha::core
