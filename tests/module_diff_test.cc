/**
 * @file
 * Edge cases for ir::computeModuleDiff and the per-function
 * fingerprints behind it: a rename is a remove + add (identity is the
 * name, not the body), a signature-only change fingerprints as
 * changed, and reprinting (or reformatting) a module yields an empty
 * diff — fingerprints hash canonical text, not ids or whitespace.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ir/module_diff.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "workloads/edits.h"
#include "workloads/workloads.h"

namespace oha {
namespace {

const char *const kProgram = R"(global g[1]

func helper(r0) {
  entry:
    r1 = alloc 1
    *r1 = r0
    ret r1
}

func main() {
  entry:
    r0 = &g
    r1 = call helper(r0)
    output r1
    ret
}
)";

std::unique_ptr<ir::Module>
parse(const std::string &text)
{
    return ir::parseModule(text);
}

std::string
replaceAll(std::string text, const std::string &from,
           const std::string &to)
{
    for (std::size_t pos = 0;
         (pos = text.find(from, pos)) != std::string::npos;
         pos += to.size())
        text.replace(pos, from.size(), to);
    return text;
}

TEST(ModuleDiff, RenameIsRemovePlusAdd)
{
    const auto base = parse(kProgram);
    const auto next = parse(replaceAll(kProgram, "helper", "assist"));

    const ir::ModuleDiff diff = ir::computeModuleDiff(*base, *next);
    EXPECT_EQ(diff.removed, std::vector<std::string>{"helper"});
    EXPECT_EQ(diff.added, std::vector<std::string>{"assist"});
    // The call site in main names the callee, so main changed too.
    EXPECT_EQ(diff.changed, std::vector<std::string>{"main"});
    EXPECT_TRUE(diff.unchanged.empty());
    EXPECT_FALSE(diff.globalsChanged);
    EXPECT_FALSE(diff.empty());
}

TEST(ModuleDiff, SignatureOnlyChangeFingerprintsAsChanged)
{
    const auto base = parse(kProgram);
    std::string edited =
        replaceAll(kProgram, "func helper(r0)", "func helper(r0, r2)");
    edited = replaceAll(edited, "call helper(r0)", "call helper(r0, r0)");
    const auto next = parse(edited);

    const ir::ModuleDiff diff = ir::computeModuleDiff(*base, *next);
    EXPECT_TRUE(diff.added.empty());
    EXPECT_TRUE(diff.removed.empty());
    EXPECT_EQ(diff.changed,
              (std::vector<std::string>{"helper", "main"}));
    EXPECT_TRUE(diff.unchanged.empty());
}

TEST(ModuleDiff, GlobalChangesAreFlagged)
{
    const auto base = parse(kProgram);
    const auto resized = parse(replaceAll(kProgram, "g[1]", "g[2]"));
    const auto diff = ir::computeModuleDiff(*base, *resized);
    EXPECT_TRUE(diff.globalsChanged);
    EXPECT_FALSE(diff.empty());
    // Function bodies were untouched.
    EXPECT_TRUE(diff.changed.empty());
}

TEST(ModuleDiff, NoOpReprintYieldsEmptyDiff)
{
    const workloads::Workload workload =
        workloads::makeRaceWorkload("lusearch", 1, 1);
    const auto next = workloads::reprintModule(*workload.module);

    const ir::ModuleDiff diff =
        ir::computeModuleDiff(*workload.module, *next);
    EXPECT_TRUE(diff.empty());
    EXPECT_TRUE(diff.added.empty() && diff.removed.empty() &&
                diff.changed.empty());
    EXPECT_EQ(diff.unchanged.size(), workload.module->numFunctions());
}

TEST(ModuleDiff, FingerprintIgnoresCommentsAndBlankLines)
{
    const auto base = parse(kProgram);
    // Reformat: extra blank lines and comments, same instructions.
    std::string noisy = replaceAll(kProgram, "func main() {",
                                   "\n; a comment\nfunc main() {");
    noisy = replaceAll(noisy, "    r1 = alloc 1",
                       "    r1 = alloc 1  ; boxed arg\n");
    const auto next = parse(noisy);

    const ir::ModuleDiff diff = ir::computeModuleDiff(*base, *next);
    EXPECT_TRUE(diff.empty()) << "formatting must not change "
                                 "fingerprints";
}

TEST(ModuleDiff, EditedFunctionIsolatedToItsOwnFingerprint)
{
    const workloads::Workload workload =
        workloads::makeSliceWorkload("zlib", 1, 1);
    const ir::Module &base = *workload.module;
    const std::vector<std::string> target =
        workloads::firstFunctionNames(base, 1);
    const auto next = workloads::editFunctions(base, target);

    const ir::ModuleDiff diff = ir::computeModuleDiff(base, *next);
    EXPECT_EQ(diff.changed, target);
    EXPECT_TRUE(diff.added.empty() && diff.removed.empty());
    EXPECT_EQ(diff.unchanged.size(), base.numFunctions() - 1);
}

} // namespace
} // namespace oha
