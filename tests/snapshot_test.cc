/**
 * @file
 * Warm-start cache snapshots: write/load round trips, corruption
 * rejection, service boot integration, and crash recovery.
 *
 * Pins the tentpole contract for the snapshot side of the durability
 * layer: a snapshot written from a warmed cache restores entries that
 * serve verified hits and leave every pipeline result field-identical
 * to a cold recomputation; a missing snapshot is a quiet cold start; a
 * corrupt, truncated, version-skewed or semantically bogus snapshot is
 * rejected (wholesale or per entry) and counted — never a crash, never
 * unverified data admitted.  The crash sweep kills a child process at
 * EVERY I/O operation of a snapshot write and asserts the state
 * directory afterwards holds either the previous snapshot or a fully
 * valid new one, and that a daemon recovering from it produces results
 * byte-identical to cold.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "analysis/andersen_cache.h"
#include "core/optft.h"
#include "core/optslice.h"
#include "dyn/fault_injector.h"
#include "service/analysis_service.h"
#include "service/shared_cache.h"
#include "service/snapshot.h"
#include "support/durable_file.h"
#include "support/rng.h"
#include "workloads/workloads.h"

namespace oha {
namespace {

// ---------------------------------------------------------------------
// Result comparators: "byte-identical to cold" means every field of
// the pipeline results matches, not just the headline numbers.
// ---------------------------------------------------------------------

void
expectEqual(const core::RunCost &a, const core::RunCost &b,
            const std::string &label)
{
    EXPECT_EQ(a.base, b.base) << label;
    EXPECT_EQ(a.framework, b.framework) << label;
    EXPECT_EQ(a.analysis, b.analysis) << label;
    EXPECT_EQ(a.invariants, b.invariants) << label;
    EXPECT_EQ(a.rollback, b.rollback) << label;
}

void
expectEqual(const core::OptFtResult &a, const core::OptFtResult &b,
            const std::string &label)
{
    EXPECT_EQ(a.name, b.name) << label;
    EXPECT_EQ(a.staticallyRaceFree, b.staticallyRaceFree) << label;
    EXPECT_EQ(a.soundStaticSeconds, b.soundStaticSeconds) << label;
    EXPECT_EQ(a.predStaticSeconds, b.predStaticSeconds) << label;
    EXPECT_EQ(a.profileSeconds, b.profileSeconds) << label;
    EXPECT_EQ(a.profileRunsUsed, b.profileRunsUsed) << label;
    EXPECT_EQ(a.testRuns, b.testRuns) << label;
    EXPECT_EQ(a.baselineSeconds, b.baselineSeconds) << label;
    expectEqual(a.fastTrack, b.fastTrack, label + " fastTrack");
    expectEqual(a.hybridFt, b.hybridFt, label + " hybridFt");
    expectEqual(a.optFt, b.optFt, label + " optFt");
    EXPECT_EQ(a.misSpeculations, b.misSpeculations) << label;
    EXPECT_EQ(a.raceReportsMatch, b.raceReportsMatch) << label;
    EXPECT_EQ(a.racesObserved, b.racesObserved) << label;
    EXPECT_EQ(a.soundRacyAccesses, b.soundRacyAccesses) << label;
    EXPECT_EQ(a.predRacyAccesses, b.predRacyAccesses) << label;
    EXPECT_EQ(a.elidedLockSites, b.elidedLockSites) << label;
    EXPECT_EQ(a.speedupVsFastTrack, b.speedupVsFastTrack) << label;
    EXPECT_EQ(a.speedupVsHybrid, b.speedupVsHybrid) << label;
    EXPECT_EQ(a.breakEvenVsHybrid, b.breakEvenVsHybrid) << label;
    EXPECT_EQ(a.breakEvenVsFastTrack, b.breakEvenVsFastTrack) << label;
    EXPECT_EQ(a.interpretedSteps, b.interpretedSteps) << label;
    EXPECT_EQ(a.replayedEvents, b.replayedEvents) << label;
    EXPECT_EQ(a.recordSeconds, b.recordSeconds) << label;
    EXPECT_EQ(a.replayRollbackSeconds, b.replayRollbackSeconds) << label;
    EXPECT_EQ(a.repredications, b.repredications) << label;
    EXPECT_EQ(a.repredStaticSeconds, b.repredStaticSeconds) << label;
    EXPECT_EQ(a.circuitBroken, b.circuitBroken) << label;
}

void
expectEqual(const core::OptSliceResult &a, const core::OptSliceResult &b,
            const std::string &label)
{
    EXPECT_EQ(a.name, b.name) << label;
    EXPECT_EQ(a.profileSeconds, b.profileSeconds) << label;
    EXPECT_EQ(a.profileRunsUsed, b.profileRunsUsed) << label;
    EXPECT_EQ(a.endpoints, b.endpoints) << label;
    EXPECT_EQ(a.testRuns, b.testRuns) << label;
    EXPECT_EQ(a.baselineSeconds, b.baselineSeconds) << label;
    expectEqual(a.hybrid, b.hybrid, label + " hybrid");
    expectEqual(a.optimistic, b.optimistic, label + " optimistic");
    EXPECT_EQ(a.misSpeculations, b.misSpeculations) << label;
    EXPECT_EQ(a.sliceResultsMatch, b.sliceResultsMatch) << label;
    EXPECT_EQ(a.soundSliceSize, b.soundSliceSize) << label;
    EXPECT_EQ(a.optSliceSize, b.optSliceSize) << label;
    EXPECT_EQ(a.soundAliasRate, b.soundAliasRate) << label;
    EXPECT_EQ(a.optAliasRate, b.optAliasRate) << label;
    EXPECT_EQ(a.dynSpeedup, b.dynSpeedup) << label;
    EXPECT_EQ(a.breakEven, b.breakEven) << label;
    EXPECT_EQ(a.interpretedSteps, b.interpretedSteps) << label;
    EXPECT_EQ(a.replayedEvents, b.replayedEvents) << label;
    EXPECT_EQ(a.recordSeconds, b.recordSeconds) << label;
    EXPECT_EQ(a.replayRollbackSeconds, b.replayRollbackSeconds) << label;
    EXPECT_EQ(a.repredications, b.repredications) << label;
    EXPECT_EQ(a.circuitBroken, b.circuitBroken) << label;
}

// ---------------------------------------------------------------------
// Fixture
// ---------------------------------------------------------------------

struct PipelineResults
{
    core::OptFtResult ft;
    core::OptSliceResult slice;
};

class SnapshotTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = "snapshot_test_" + std::to_string(::getpid());
        ::mkdir(dir_.c_str(), 0755);
        support::disarmIoFault();
        coldReset();
    }

    void
    TearDown() override
    {
        support::disarmIoFault();
        removeDirEntries();
        ::rmdir(dir_.c_str());
        coldReset();
    }

    /** Forget everything a fresh process would not know. */
    static void
    coldReset()
    {
        service::SharedCache::instance().reset();
        analysis::resetAndersenCache();
    }

    /** Run both pipelines on the fixture workloads (warming the
     *  trace, observation, race and slice cache sections). */
    PipelineResults
    runPipelines() const
    {
        PipelineResults results;
        results.ft = core::runOptFt(
            workloads::makeRaceWorkload("sor", 3, 2), {});
        results.slice = core::runOptSlice(
            workloads::makeSliceWorkload("zlib", 3, 2), {});
        return results;
    }

    std::string
    snapshotPath() const
    {
        return service::defaultSnapshotPath(dir_);
    }

    void
    removeDirEntries() const
    {
        if (DIR *d = ::opendir(dir_.c_str())) {
            while (const dirent *entry = ::readdir(d)) {
                const std::string name = entry->d_name;
                if (name != "." && name != "..")
                    ::unlink((dir_ + "/" + name).c_str());
            }
            ::closedir(d);
        }
    }

    void
    removeTempLitter() const
    {
        if (DIR *d = ::opendir(dir_.c_str())) {
            while (const dirent *entry = ::readdir(d)) {
                const std::string name = entry->d_name;
                if (name.find(".tmp.") != std::string::npos)
                    ::unlink((dir_ + "/" + name).c_str());
            }
            ::closedir(d);
        }
    }

    bool
    fileExists(const std::string &path) const
    {
        struct ::stat st;
        return ::stat(path.c_str(), &st) == 0;
    }

    std::string dir_;
};

std::string
readFile(const std::string &path)
{
    std::string content;
    if (FILE *f = ::fopen(path.c_str(), "rb")) {
        char buf[4096];
        std::size_t n;
        while ((n = ::fread(buf, 1, sizeof buf, f)) > 0)
            content.append(buf, n);
        ::fclose(f);
    }
    return content;
}

void
writeFileRaw(const std::string &path, const std::string &content)
{
    FILE *f = ::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::fwrite(content.data(), 1, content.size(), f),
              content.size());
    ::fclose(f);
}

// ---------------------------------------------------------------------
// Round trip: snapshot-restored entries serve verified hits and leave
// the results field-identical to a cold recomputation.
// ---------------------------------------------------------------------

TEST_F(SnapshotTest, WriteLoadRestoresWarmEquivalentResults)
{
    const PipelineResults cold = runPipelines();

    const auto before = service::snapshotStats();
    std::string error;
    ASSERT_TRUE(service::writeSnapshot(snapshotPath(), &error)) << error;
    const auto afterWrite = service::snapshotStats();
    EXPECT_EQ(afterWrite.writes, before.writes + 1);
    EXPECT_EQ(afterWrite.writeFailures, before.writeFailures);

    coldReset();
    ASSERT_TRUE(service::loadSnapshot(snapshotPath(), &error)) << error;
    const auto afterLoad = service::snapshotStats();
    EXPECT_EQ(afterLoad.loads, afterWrite.loads + 1);
    EXPECT_EQ(afterLoad.loadRejects, afterWrite.loadRejects);
    EXPECT_GT(afterLoad.entriesRestored, afterWrite.entriesRestored);
    EXPECT_EQ(afterLoad.entriesRejected, afterWrite.entriesRejected);

    const auto statsBefore = service::SharedCache::instance().stats();
    const PipelineResults warm = runPipelines();
    const auto statsAfter = service::SharedCache::instance().stats();

    expectEqual(cold.ft, warm.ft, "snapshot-warmed optft");
    expectEqual(cold.slice, warm.slice, "snapshot-warmed optslice");
    // Restored entries actually served (dual-fingerprint-verified)
    // hits — the warm pass is not just recomputing everything.
    EXPECT_GT(statsAfter.hits, statsBefore.hits);
}

TEST_F(SnapshotTest, MissingSnapshotIsQuietColdStart)
{
    const auto before = service::snapshotStats();
    std::string error;
    EXPECT_FALSE(
        service::loadSnapshot(snapshotPath() + ".nonexistent", &error));
    const auto after = service::snapshotStats();
    // A missing file is a normal cold start: no reject counted, no
    // entries touched.
    EXPECT_EQ(after.loads, before.loads);
    EXPECT_EQ(after.loadRejects, before.loadRejects);
    EXPECT_EQ(after.entriesRestored, before.entriesRestored);
}

// ---------------------------------------------------------------------
// Corruption: wholesale rejection for container damage, per-entry
// rejection for semantic damage — and a flipped bit can never change
// the results a recovered daemon produces.
// ---------------------------------------------------------------------

TEST_F(SnapshotTest, TruncationSweepRejectsWholesale)
{
    runPipelines();
    std::string error;
    ASSERT_TRUE(service::writeSnapshot(snapshotPath(), &error)) << error;
    const std::string golden = readFile(snapshotPath());
    ASSERT_GT(golden.size(), 32u);

    const std::string victim = dir_ + "/truncated.snapshot";
    // A real snapshot is megabytes; sample truncation lengths instead
    // of sweeping every one (the byte-exhaustive sweep lives in the
    // capture-file tests — the formats share the container layer).
    // The header and first-block region is covered densely.
    std::vector<std::size_t> lengths;
    for (std::size_t len = 0; len < 64 && len < golden.size(); ++len)
        lengths.push_back(len);
    Rng rng(0x105eedu ^ golden.size());
    for (int i = 0; i < 64; ++i)
        lengths.push_back(static_cast<std::size_t>(
            rng.below(golden.size())));
    lengths.push_back(golden.size() - 1);
    for (const std::size_t len : lengths) {
        writeFileRaw(victim, golden.substr(0, len));
        const auto before = service::snapshotStats();
        coldReset();
        EXPECT_FALSE(service::loadSnapshot(victim))
            << "truncated to " << len << " bytes must be rejected";
        const auto after = service::snapshotStats();
        EXPECT_EQ(after.loadRejects, before.loadRejects + 1);
        EXPECT_EQ(after.entriesRestored, before.entriesRestored);
    }
}

TEST_F(SnapshotTest, BitFlipSweepRejectsOrRestoresVerifiedState)
{
    const PipelineResults cold = runPipelines();
    std::string error;
    ASSERT_TRUE(service::writeSnapshot(snapshotPath(), &error)) << error;
    const std::string golden = readFile(snapshotPath());

    const std::string victim = dir_ + "/flipped.snapshot";
    // Seeded sample of flip positions: the whole header region plus
    // random positions throughout the body.
    std::vector<std::size_t> positions;
    for (std::size_t at = 0; at < 48 && at < golden.size(); ++at)
        positions.push_back(at);
    Rng rng(0xf11bu ^ golden.size());
    for (int i = 0; i < 48; ++i)
        positions.push_back(static_cast<std::size_t>(
            rng.below(golden.size())));
    std::size_t accepted = 0, samples = 0;
    for (const std::size_t at : positions) {
        ++samples;
        std::string bytes = golden;
        bytes[at] = static_cast<char>(bytes[at] ^ 0x01);
        writeFileRaw(victim, bytes);
        coldReset();
        if (!service::loadSnapshot(victim))
            continue;
        // Flip landed in unchecksummed padding: the load is allowed,
        // but whatever it restored must be indistinguishable from a
        // cold recomputation.
        ++accepted;
        const PipelineResults warm = runPipelines();
        expectEqual(cold.ft, warm.ft,
                    "flip@" + std::to_string(at) + " optft");
        expectEqual(cold.slice, warm.slice,
                    "flip@" + std::to_string(at) + " optslice");
    }
    // Only alignment padding escapes the checksums.
    EXPECT_LT(accepted, samples / 4 + 1);
}

TEST_F(SnapshotTest, BogusEntryTagRejectedIndividually)
{
    // Hand-build a structurally valid container whose single entry
    // has an unknown tag: the container verifies (load succeeds) but
    // the entry is individually rejected and counted.
    const std::string path = dir_ + "/bogus.snapshot";
    {
        support::DurableWriter writer(path,
                                      support::kDurableKindSnapshot);
        support::ByteWriter meta;
        meta.u32(1); // snapshot version
        meta.u64(1); // one entry
        writer.addBlock(meta.data());
        support::ByteWriter entry;
        entry.u8(200); // no such tag
        writer.addBlock(entry.data());
        std::string error;
        ASSERT_TRUE(writer.commit(&error)) << error;
    }

    const auto before = service::snapshotStats();
    std::string error;
    EXPECT_TRUE(service::loadSnapshot(path, &error)) << error;
    const auto after = service::snapshotStats();
    EXPECT_EQ(after.loads, before.loads + 1);
    EXPECT_EQ(after.entriesRejected, before.entriesRejected + 1);
    EXPECT_EQ(after.entriesRestored, before.entriesRestored);
}

TEST_F(SnapshotTest, EntryCountMismatchRejectsWholesale)
{
    // Meta promises two entries, container carries one.
    const std::string path = dir_ + "/mismatch.snapshot";
    {
        support::DurableWriter writer(path,
                                      support::kDurableKindSnapshot);
        support::ByteWriter meta;
        meta.u32(1);
        meta.u64(2);
        writer.addBlock(meta.data());
        support::ByteWriter entry;
        entry.u8(1);
        writer.addBlock(entry.data());
        std::string error;
        ASSERT_TRUE(writer.commit(&error)) << error;
    }

    const auto before = service::snapshotStats();
    EXPECT_FALSE(service::loadSnapshot(path));
    const auto after = service::snapshotStats();
    EXPECT_EQ(after.loadRejects, before.loadRejects + 1);
    EXPECT_EQ(after.entriesRestored, before.entriesRestored);
}

// ---------------------------------------------------------------------
// Write failures: injected I/O faults degrade to in-memory operation.
// ---------------------------------------------------------------------

TEST_F(SnapshotTest, WriteFaultSweepKeepsPreviousSnapshotAndCounts)
{
    const PipelineResults cold = runPipelines();
    std::string error;
    ASSERT_TRUE(service::writeSnapshot(snapshotPath(), &error)) << error;
    const std::string previous = readFile(snapshotPath());

    const std::uint64_t ops = dyn::countIoOps(
        [&] { ASSERT_TRUE(service::writeSnapshot(snapshotPath())); });
    ASSERT_GT(ops, 0u);
    const std::string committed = readFile(snapshotPath());

    for (const auto &point :
         dyn::pickIoFaultPoints(ops, 16, /*seed=*/23)) {
        dyn::ScopedIoFault fault({point.failAfter, support::kIoAllOps,
                                  ENOSPC, /*crash=*/false});
        const auto before = service::snapshotStats();
        std::string sweepError;
        EXPECT_FALSE(service::writeSnapshot(snapshotPath(), &sweepError))
            << point.describe();
        EXPECT_TRUE(fault.fired()) << point.describe();
        EXPECT_FALSE(sweepError.empty()) << point.describe();
        const auto after = service::snapshotStats();
        EXPECT_EQ(after.writeFailures, before.writeFailures + 1);
        EXPECT_EQ(after.lastErrno, ENOSPC) << point.describe();
        // The published snapshot is untouched (either generation is a
        // full commit; a fault after rename may publish the new one).
        const std::string now = readFile(snapshotPath());
        EXPECT_TRUE(now == previous || now == committed)
            << point.describe();
    }
    support::disarmIoFault();
    removeTempLitter();

    // The cache itself never depended on the snapshot: results are
    // still byte-identical after all of that.
    const PipelineResults still = runPipelines();
    expectEqual(cold.ft, still.ft, "post-fault-sweep optft");
    expectEqual(cold.slice, still.slice, "post-fault-sweep optslice");
}

// ---------------------------------------------------------------------
// Service integration: boot-time load, shutdown-time write.
// ---------------------------------------------------------------------

TEST_F(SnapshotTest, ServiceRestartBootsWarmWithIdenticalResults)
{
    const auto race = workloads::makeRaceWorkload("sor", 3, 2);
    const auto slice = workloads::makeSliceWorkload("zlib", 3, 2);

    service::ServiceConfig config;
    config.shards = 1;
    config.stateDir = dir_;

    core::OptFtResult firstFt;
    core::OptSliceResult firstSlice;
    const auto beforeFirst = service::snapshotStats();
    {
        service::AnalysisService daemon(config);
        EXPECT_EQ(daemon.stateDir(), dir_);
        service::AnalysisRequest ftRequest;
        ftRequest.workload = race;
        service::AnalysisRequest sliceRequest;
        sliceRequest.workload = slice;
        auto ftFuture = daemon.submit(std::move(ftRequest));
        auto sliceFuture = daemon.submit(std::move(sliceRequest));
        const auto ftResponse = ftFuture.get();
        const auto sliceResponse = sliceFuture.get();
        ASSERT_EQ(ftResponse.outcome, service::RequestOutcome::Done);
        ASSERT_EQ(sliceResponse.outcome, service::RequestOutcome::Done);
        firstFt = *ftResponse.ft;
        firstSlice = *sliceResponse.slice;
        // Destructor shuts down gracefully and writes the snapshot.
    }
    const auto afterFirst = service::snapshotStats();
    EXPECT_GE(afterFirst.writes, beforeFirst.writes + 1);
    ASSERT_TRUE(fileExists(snapshotPath()));

    coldReset();

    {
        service::AnalysisService daemon(config);
        const auto afterBoot = service::snapshotStats();
        EXPECT_EQ(afterBoot.loads, afterFirst.loads + 1);
        EXPECT_GT(afterBoot.entriesRestored, afterFirst.entriesRestored);

        service::AnalysisRequest ftRequest;
        ftRequest.workload = race;
        service::AnalysisRequest sliceRequest;
        sliceRequest.workload = slice;
        auto ftFuture = daemon.submit(std::move(ftRequest));
        auto sliceFuture = daemon.submit(std::move(sliceRequest));
        const auto ftResponse = ftFuture.get();
        const auto sliceResponse = sliceFuture.get();
        ASSERT_EQ(ftResponse.outcome, service::RequestOutcome::Done);
        ASSERT_EQ(sliceResponse.outcome, service::RequestOutcome::Done);
        expectEqual(firstFt, *ftResponse.ft, "restart-warm optft");
        expectEqual(firstSlice, *sliceResponse.slice,
                    "restart-warm optslice");

        // On-demand snapshots work too.
        EXPECT_TRUE(daemon.snapshotNow());
        daemon.shutdown();
    }

    // Without a state dir there is nothing to snapshot to.
    service::ServiceConfig stateless;
    stateless.shards = 1;
    // Shield the config-free path from the ambient environment.
    const char *envDir = ::getenv("OHA_STATE_DIR");
    if (envDir == nullptr) {
        service::AnalysisService daemon(stateless);
        EXPECT_TRUE(daemon.stateDir().empty());
        EXPECT_FALSE(daemon.snapshotNow());
    }
}

// ---------------------------------------------------------------------
// Crash recovery: kill the process at EVERY fault point of a snapshot
// write; recovery must find either the previous snapshot or a fully
// valid new one, and recovered results must be byte-identical to cold.
// ---------------------------------------------------------------------

TEST_F(SnapshotTest, CrashAtEveryWritePointRecoversToColdIdentical)
{
    const PipelineResults cold = runPipelines();

    // Publish a previous generation, then learn the op count of a
    // healthy overwrite.
    std::string error;
    ASSERT_TRUE(service::writeSnapshot(snapshotPath(), &error)) << error;
    const std::string previous = readFile(snapshotPath());
    const std::uint64_t ops = dyn::countIoOps(
        [&] { ASSERT_TRUE(service::writeSnapshot(snapshotPath())); });
    ASSERT_GT(ops, 0u);

    for (const auto &point :
         dyn::pickIoFaultPoints(ops, 12, /*seed=*/31, support::kIoAllOps,
                                /*crash=*/true)) {
        // Reset to the previous generation so every iteration crashes
        // the same overwrite.
        writeFileRaw(snapshotPath(), previous);

        const pid_t child = ::fork();
        ASSERT_GE(child, 0);
        if (child == 0) {
            // In the child: arm the crash fault and attempt the
            // overwrite.  _exit codes: kIoCrashExitCode when the
            // fault killed us mid-write, 0 when the point was past
            // the path's op count and the write committed.
            support::resetIoOpCount();
            support::armIoFault({point.failAfter, point.opMask,
                                 point.error, /*crash=*/true});
            service::writeSnapshot(snapshotPath());
            support::disarmIoFault();
            ::_exit(0);
        }
        int status = 0;
        ASSERT_EQ(::waitpid(child, &status, 0), child);
        ASSERT_TRUE(WIFEXITED(status)) << point.describe();
        const int code = WEXITSTATUS(status);
        EXPECT_TRUE(code == 0 || code == support::kIoCrashExitCode)
            << point.describe() << " exit=" << code;
        if (point.failAfter < ops) {
            EXPECT_EQ(code, support::kIoCrashExitCode)
                << point.describe();
        }

        // A crash leaves temp litter (no destructor ran) — recovery
        // ignores it; clean it up for the next iteration.
        removeTempLitter();

        // The published path holds a complete generation — either the
        // previous snapshot (crash before or at the rename) or the
        // child's fully committed new one (crash at the directory
        // sync) — never a torn file.  loadSnapshot returning true IS
        // the full-container-verification assertion; recovery then
        // produces results byte-identical to a cold run.
        coldReset();
        std::string loadError;
        EXPECT_TRUE(service::loadSnapshot(snapshotPath(), &loadError))
            << point.describe() << ": " << loadError;
        const PipelineResults recovered = runPipelines();
        expectEqual(cold.ft, recovered.ft,
                    point.describe() + " recovered optft");
        expectEqual(cold.slice, recovered.slice,
                    point.describe() + " recovered optslice");
    }
}

} // namespace
} // namespace oha
