/**
 * @file
 * Extra end-to-end properties: hybrid slicing equals *pure Giri* on
 * small runs (the comparison the paper cannot afford on real
 * benchmarks), pipeline-level determinism, aggressive-LUC soundness,
 * and break-even arithmetic sanity.
 */

#include <gtest/gtest.h>

#include "analysis/slicer.h"
#include "core/optft.h"
#include "core/optslice.h"
#include "dyn/giri.h"
#include "dyn/plans.h"

namespace oha::core {
namespace {

TEST(PipelineExtra, HybridSlicesEqualPureGiri)
{
    // The paper omits pure Giri because it exhausts resources; on our
    // scaled corpus we CAN run it, closing the soundness chain:
    // pure Giri == hybrid == optimistic(+rollback).
    const auto workload = workloads::makeSliceWorkload("redis", 8, 3);
    const ir::Module &module = *workload.module;

    const auto pts = analysis::runAndersen(module, {});
    const analysis::StaticSlicer slicer(module, pts, {});

    std::vector<InstrId> endpoints;
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == ir::Opcode::Output)
            endpoints.push_back(id);

    const auto fullPlan = dyn::fullGiriPlan(module);
    for (const auto &config : workload.testingSet) {
        dyn::GiriSlicer pure(module);
        {
            exec::Interpreter interp(module, config);
            interp.attach(&pure, &fullPlan);
            ASSERT_TRUE(interp.run().finished());
        }
        for (InstrId endpoint : endpoints) {
            const auto staticSlice = slicer.slice(endpoint);
            ASSERT_TRUE(staticSlice.completed);
            const auto plan =
                dyn::sliceGiriPlan(module, staticSlice.instructions);
            dyn::GiriSlicer hybrid(module);
            exec::Interpreter interp(module, config);
            interp.attach(&hybrid, &plan);
            ASSERT_TRUE(interp.run().finished());
            EXPECT_EQ(hybrid.slice(endpoint), pure.slice(endpoint))
                << "endpoint " << endpoint;
            EXPECT_EQ(hybrid.missingDependencies(), 0u);
        }
    }
}

TEST(PipelineExtra, OptFtPipelineIsDeterministic)
{
    const auto w1 = workloads::makeRaceWorkload("raytracer", 8, 4);
    const auto w2 = workloads::makeRaceWorkload("raytracer", 8, 4);
    const auto a = runOptFt(w1);
    const auto b = runOptFt(w2);
    EXPECT_DOUBLE_EQ(a.optFt.total(), b.optFt.total());
    EXPECT_DOUBLE_EQ(a.fastTrack.total(), b.fastTrack.total());
    EXPECT_EQ(a.misSpeculations, b.misSpeculations);
    EXPECT_EQ(a.profileRunsUsed, b.profileRunsUsed);
    EXPECT_EQ(a.racesObserved, b.racesObserved);
}

TEST(PipelineExtra, OptSlicePipelineIsDeterministic)
{
    const auto a = runOptSlice(workloads::makeSliceWorkload("go", 6, 4));
    const auto b = runOptSlice(workloads::makeSliceWorkload("go", 6, 4));
    EXPECT_DOUBLE_EQ(a.optimistic.total(), b.optimistic.total());
    EXPECT_EQ(a.misSpeculations, b.misSpeculations);
    EXPECT_DOUBLE_EQ(a.optSliceSize, b.optSliceSize);
}

TEST(PipelineExtra, AggressiveLucStaysSoundUnderHeavyMisSpeculation)
{
    // Threshold high enough to mis-speculate often: rollbacks must
    // keep slice results equal to the hybrid slicer's everywhere.
    const auto workload = workloads::makeSliceWorkload("vim", 12, 8);
    OptSliceConfig config;
    config.maxProfileRuns = 12;
    config.aggressiveLucMinVisits = 4;
    const auto result = runOptSlice(workload, config);
    EXPECT_TRUE(result.sliceResultsMatch);
    EXPECT_GT(result.misSpeculations, 0u)
        << "the aggressive threshold is meant to bite";
}

TEST(PipelineExtra, AggressiveLucStaysSoundForRaces)
{
    const auto workload = workloads::makeRaceWorkload("pmd", 12, 8);
    OptFtConfig config;
    config.maxProfileRuns = 12;
    config.aggressiveLucMinVisits = 8;
    const auto result = runOptFt(workload, config);
    EXPECT_TRUE(result.raceReportsMatch);
}

TEST(PipelineExtra, BreakEvenIsConsistentWithItsInputs)
{
    const auto workload = workloads::makeRaceWorkload("raytracer", 12, 8);
    const auto r = runOptFt(workload);
    ASSERT_GT(r.speedupVsHybrid, 1.0);
    ASSERT_GE(r.breakEvenVsHybrid, 0.0);
    // At T = breakEven, total costs are equal by definition.
    const double upfrontOpt = r.profileSeconds + r.predStaticSeconds;
    const double lhs =
        upfrontOpt + r.optFt.normalized() * r.breakEvenVsHybrid;
    const double rhs = r.soundStaticSeconds +
                       r.hybridFt.normalized() * r.breakEvenVsHybrid;
    EXPECT_NEAR(lhs, rhs, 1e-6 * std::max(lhs, rhs));
}

TEST(PipelineExtra, MoreTestTimeAmortizesUpfrontCosts)
{
    // Doubling the testing corpus must not change normalized runtimes
    // (they are per-baseline ratios) but leaves break-even fixed.
    const auto small = runOptFt(workloads::makeRaceWorkload("moldyn", 12, 4));
    const auto large = runOptFt(workloads::makeRaceWorkload("moldyn", 12, 12));
    EXPECT_NEAR(small.optFt.normalized(), large.optFt.normalized(),
                0.35 * small.optFt.normalized());
}

} // namespace
} // namespace oha::core
