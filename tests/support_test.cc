/**
 * @file
 * Unit tests for the support layer: sparse bit sets, BDDs, Bloom
 * filters, vector clocks, union-find and the RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <set>
#include <vector>

#include "support/bdd.h"
#include "support/bloom_filter.h"
#include "support/env.h"
#include "support/rng.h"
#include "support/sparse_bit_set.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "support/union_find.h"
#include "support/vector_clock.h"

namespace oha {
namespace {

TEST(SparseBitSet, InsertContainsErase)
{
    SparseBitSet set;
    EXPECT_TRUE(set.empty());
    EXPECT_TRUE(set.insert(5));
    EXPECT_FALSE(set.insert(5));
    EXPECT_TRUE(set.insert(64));
    EXPECT_TRUE(set.insert(1000000));
    EXPECT_TRUE(set.contains(5));
    EXPECT_TRUE(set.contains(64));
    EXPECT_TRUE(set.contains(1000000));
    EXPECT_FALSE(set.contains(6));
    EXPECT_EQ(set.size(), 3u);
    EXPECT_TRUE(set.erase(64));
    EXPECT_FALSE(set.erase(64));
    EXPECT_FALSE(set.contains(64));
    EXPECT_EQ(set.size(), 2u);
}

TEST(SparseBitSet, UnionReportsChange)
{
    SparseBitSet a, b;
    a.insert(1);
    a.insert(100);
    b.insert(100);
    EXPECT_FALSE(a.unionWith(b));
    b.insert(200);
    EXPECT_TRUE(a.unionWith(b));
    EXPECT_TRUE(a.contains(200));
    EXPECT_EQ(a.size(), 3u);
}

TEST(SparseBitSet, IntersectAndIntersects)
{
    SparseBitSet a, b;
    for (std::uint32_t i = 0; i < 100; i += 3)
        a.insert(i);
    for (std::uint32_t i = 0; i < 100; i += 5)
        b.insert(i);
    EXPECT_TRUE(a.intersects(b));
    a.intersectWith(b);
    a.forEach([](std::uint32_t v) { EXPECT_EQ(v % 15, 0u); });
    EXPECT_EQ(a.size(), 7u); // 0,15,30,45,60,75,90

    SparseBitSet c;
    c.insert(1);
    c.insert(2);
    EXPECT_FALSE(a.intersects(c));
}

TEST(SparseBitSet, OrderedIteration)
{
    SparseBitSet set;
    const std::vector<std::uint32_t> values = {900, 3, 70, 64, 63, 128};
    for (std::uint32_t v : values)
        set.insert(v);
    std::vector<std::uint32_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(set.toVector(), sorted);
}

TEST(SparseBitSet, HashDiffersForDifferentSets)
{
    SparseBitSet a, b;
    a.insert(1);
    b.insert(2);
    EXPECT_NE(a.hash(), b.hash());
    b.clear();
    b.insert(1);
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(Bdd, TerminalsAndVariables)
{
    BddManager mgr(4);
    EXPECT_NE(BddManager::trueBdd(), BddManager::falseBdd());
    const BddRef x0 = mgr.var(0);
    EXPECT_EQ(mgr.bddAnd(x0, mgr.bddNot(x0)), BddManager::falseBdd());
    EXPECT_EQ(mgr.bddOr(x0, mgr.bddNot(x0)), BddManager::trueBdd());
}

TEST(Bdd, SatCount)
{
    BddManager mgr(4);
    EXPECT_DOUBLE_EQ(mgr.satCount(BddManager::trueBdd()), 16.0);
    EXPECT_DOUBLE_EQ(mgr.satCount(BddManager::falseBdd()), 0.0);
    EXPECT_DOUBLE_EQ(mgr.satCount(mgr.var(0)), 8.0);
    const BddRef conj = mgr.bddAnd(mgr.var(0), mgr.var(3));
    EXPECT_DOUBLE_EQ(mgr.satCount(conj), 4.0);
}

TEST(Bdd, HashConsingSharesStructure)
{
    BddManager mgr(8);
    const BddRef a = mgr.bddAnd(mgr.var(1), mgr.var(2));
    const BddRef b = mgr.bddAnd(mgr.var(2), mgr.var(1));
    EXPECT_EQ(a, b);
}

TEST(BddSet, InsertContainsCount)
{
    BddSetUniverse universe(12);
    BddRef set = universe.empty();
    const std::set<std::uint32_t> reference = {0, 1, 7, 100, 4095};
    for (std::uint32_t id : reference)
        set = universe.insert(set, id);
    for (std::uint32_t id : reference)
        EXPECT_TRUE(universe.contains(set, id));
    EXPECT_FALSE(universe.contains(set, 2));
    EXPECT_FALSE(universe.contains(set, 4094));
    EXPECT_EQ(universe.size(set), reference.size());
}

TEST(BddSet, UnionIntersect)
{
    BddSetUniverse universe(10);
    BddRef a = universe.empty();
    BddRef b = universe.empty();
    for (std::uint32_t i = 0; i < 50; i += 2)
        a = universe.insert(a, i);
    for (std::uint32_t i = 0; i < 50; i += 3)
        b = universe.insert(b, i);
    const BddRef u = universe.unite(a, b);
    const BddRef n = universe.intersect(a, b);
    EXPECT_EQ(universe.size(u), 25u + 17u - 9u);
    EXPECT_EQ(universe.size(n), 9u); // multiples of 6 below 50
    EXPECT_TRUE(universe.contains(n, 6));
    EXPECT_FALSE(universe.contains(n, 2));
}

TEST(BloomFilter, NoFalseNegatives)
{
    BloomFilter filter(12);
    Rng rng(7);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 200; ++i)
        keys.push_back(rng.next());
    for (std::uint64_t k : keys)
        filter.insert(k);
    for (std::uint64_t k : keys)
        EXPECT_TRUE(filter.mayContain(k));
}

TEST(BloomFilter, MostlyRejectsAbsentKeys)
{
    BloomFilter filter(16);
    Rng rng(11);
    for (int i = 0; i < 500; ++i)
        filter.insert(rng.next());
    int falsePositives = 0;
    for (int i = 0; i < 2000; ++i)
        falsePositives += filter.mayContain(rng.next() | (1ULL << 63));
    EXPECT_LT(falsePositives, 100);
}

TEST(VectorClock, JoinAndCovers)
{
    VectorClock a, b;
    a.set(0, 5);
    a.set(1, 2);
    b.set(1, 7);
    a.join(b);
    EXPECT_EQ(a.get(0), 5u);
    EXPECT_EQ(a.get(1), 7u);
    EXPECT_TRUE(a.covers(Epoch(1, 7)));
    EXPECT_FALSE(a.covers(Epoch(1, 8)));
    EXPECT_TRUE(a.covers(Epoch(3, 0)));
    EXPECT_TRUE(a.coversAll(b));
    EXPECT_FALSE(b.coversAll(a));
}

TEST(Epoch, PackUnpack)
{
    const Epoch e(12, 123456789);
    EXPECT_EQ(e.tid(), 12u);
    EXPECT_EQ(e.clock(), 123456789u);
    EXPECT_EQ(Epoch::none().clock(), 0u);
}

TEST(Epoch, ClockBoundaryRoundTrips)
{
    // The clock occupies the low 48 bits; the largest representable
    // value must round-trip without bleeding into the tid field.
    const Epoch e(0xabcd, Epoch::kMaxClock);
    EXPECT_EQ(e.tid(), 0xabcdu);
    EXPECT_EQ(e.clock(), Epoch::kMaxClock);

    const Epoch low(0xffff, 1);
    EXPECT_EQ(low.tid(), 0xffffu);
    EXPECT_EQ(low.clock(), 1u);
}

TEST(EpochDeathTest, ClockOverflowAsserts)
{
    EXPECT_DEATH(Epoch(1, Epoch::kMaxClock + 1), "assertion failed");
}

TEST(UnionFind, MergeFind)
{
    UnionFind uf(10);
    EXPECT_FALSE(uf.same(1, 2));
    uf.merge(1, 2);
    uf.merge(2, 3);
    EXPECT_TRUE(uf.same(1, 3));
    EXPECT_FALSE(uf.same(1, 4));
    uf.grow(20);
    EXPECT_FALSE(uf.same(1, 15));
    uf.merge(3, 15);
    EXPECT_TRUE(uf.same(1, 15));
}

TEST(Rng, DeterministicStreams)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool anyDiff = false;
    for (int i = 0; i < 100; ++i)
        anyDiff |= a.next() != c.next();
    EXPECT_TRUE(anyDiff);
}

TEST(Rng, BelowAndRangeInBounds)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
        const std::int64_t v = rng.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(TextTable, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "12345"});
    const std::string out = table.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("12345"), std::string::npos);
}

TEST(Format, TimeAndSpeedup)
{
    EXPECT_EQ(fmtTime(75), "1m 15s");
    EXPECT_EQ(fmtTime(3675), "1h 1m 15s");
    EXPECT_EQ(fmtTime(9), "9s");
    EXPECT_EQ(fmtSpeedup(3.54), "3.5x");
    EXPECT_EQ(fmtDouble(1.266, 2), "1.27");
}

TEST(EnvSizeBytes, ValidationContract)
{
    const char *name = "OHA_TEST_ENV_SIZE_BYTES";
    unsetenv(name);
    // Unset: default, no clamping of the default itself.
    EXPECT_EQ(support::envSizeBytes(name, 42, 1, 100), 42u);

    // Well-formed values are honored exactly.
    ASSERT_EQ(setenv(name, "7", 1), 0);
    EXPECT_EQ(support::envSizeBytes(name, 42, 1, 100), 7u);

    // Malformed: trailing junk, pure garbage, empty -> default + warn.
    for (const char *bad : {"12abc", "abc", "", "-3", " 5"}) {
        ASSERT_EQ(setenv(name, bad, 1), 0);
        EXPECT_EQ(support::envSizeBytes(name, 42, 1, 100), 42u) << bad;
    }

    // Out-of-range values clamp to the nearest bound.
    ASSERT_EQ(setenv(name, "0", 1), 0);
    EXPECT_EQ(support::envSizeBytes(name, 42, 5, 100), 5u);
    ASSERT_EQ(setenv(name, "1000", 1), 0);
    EXPECT_EQ(support::envSizeBytes(name, 42, 5, 100), 100u);

    // Unit scaling (e.g. OHA_CACHE_BUDGET_MB): clamp is post-scale.
    ASSERT_EQ(setenv(name, "3", 1), 0);
    EXPECT_EQ(support::envSizeBytes(name, 1u << 20, 1u << 20, 1u << 30,
                                    1u << 20),
              3u << 20);

    // Products that would overflow saturate at the maximum.
    ASSERT_EQ(setenv(name, "18446744073709551615", 1), 0);
    EXPECT_EQ(support::envSizeBytes(name, 42, 1, 100), 100u);
    // Beyond even unsigned long long (strtoull reports ERANGE): still
    // the maximum, not a wrapped or "malformed" fallback.
    ASSERT_EQ(setenv(name, "99999999999999999999999999", 1), 0);
    EXPECT_EQ(support::envSizeBytes(name, 42, 1, 100), 100u);
    ASSERT_EQ(setenv(name, "1099511627776", 1), 0); // 1 TiB in MiB units
    EXPECT_EQ(support::envSizeBytes(name, 1u << 20, 1u << 20, 1u << 30,
                                    1u << 20),
              1u << 30);

    unsetenv(name);
}

TEST(RunBatch, ChunkedOverloadCoversAllItemsInOrder)
{
    // One queue task per `grain` consecutive indices.  Every grain —
    // dividing the count, straddling it, and exceeding it — must call
    // fn exactly once per index and return results in index order.
    constexpr std::size_t kCount = 101;
    for (const std::size_t grain :
         {std::size_t{1}, std::size_t{3}, std::size_t{17},
          std::size_t{64}, std::size_t{1000}}) {
        std::atomic<std::size_t> calls{0};
        const auto results = support::runBatch(
            kCount,
            [&](std::size_t i) {
                calls.fetch_add(1, std::memory_order_relaxed);
                return 2 * i + 1;
            },
            4, grain);
        ASSERT_EQ(results.size(), kCount) << "grain " << grain;
        EXPECT_EQ(calls.load(), kCount) << "grain " << grain;
        for (std::size_t i = 0; i < kCount; ++i)
            ASSERT_EQ(results[i], 2 * i + 1)
                << "grain " << grain << " index " << i;
    }
}

TEST(RunBatch, RunBatchOnReusesACallerOwnedPool)
{
    // The pool-reusing form must behave like the transient-pool form
    // round after round (the wavefront solver leans on this).
    support::ThreadPool pool(4);
    for (int round = 0; round < 3; ++round) {
        std::atomic<std::size_t> calls{0};
        const auto results = support::runBatchOn(
            pool, 50,
            [&](std::size_t i) {
                calls.fetch_add(1, std::memory_order_relaxed);
                return static_cast<int>(i) + round;
            },
            8);
        ASSERT_EQ(results.size(), 50u);
        EXPECT_EQ(calls.load(), 50u);
        for (std::size_t i = 0; i < 50; ++i)
            ASSERT_EQ(results[i], static_cast<int>(i) + round);
    }
}

TEST(ConfiguredThreads, SharesTheEnvValidationContract)
{
    // OHA_THREADS routes through envSizeBytes: malformed values fall
    // back to the serial default with a warning, absurd counts clamp
    // to the sane maximum, and well-formed values are honored.  The
    // cached value only changes at explicit refresh points.
    const auto with = [](const char *value) {
        if (value)
            ASSERT_EQ(setenv("OHA_THREADS", value, 1), 0);
        else
            unsetenv("OHA_THREADS");
        support::refreshConfiguredThreads();
    };

    with(nullptr);
    EXPECT_EQ(support::configuredThreads(), 1u);

    with("3");
    EXPECT_EQ(support::configuredThreads(), 3u);

    for (const char *bad : {"four", "4x", "", "-2", " 4"}) {
        with(bad);
        EXPECT_EQ(support::configuredThreads(), 1u) << bad;
    }

    with("0");
    EXPECT_EQ(support::configuredThreads(), 1u); // clamped to minimum

    with("4000000000");
    EXPECT_EQ(support::configuredThreads(), support::maxSaneThreads());

    // An explicit request bypasses the environment but still clamps.
    EXPECT_EQ(support::configuredThreads(2), 2u);
    EXPECT_EQ(support::configuredThreads(4000000000u),
              support::maxSaneThreads());

    with(nullptr);
    EXPECT_EQ(support::configuredThreads(), 1u);
}

} // namespace
} // namespace oha
