/**
 * @file
 * Analysis-daemon tests: bounded-queue admission semantics, deadline
 * expiry, graceful drain/shutdown, and the determinism contract —
 * service results are field-identical to batch-mode pipeline calls at
 * any shard count, on any cache state.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "analysis/andersen_cache.h"
#include "core/optft.h"
#include "core/optslice.h"
#include "service/analysis_service.h"
#include "service/request_queue.h"
#include "workloads/workloads.h"

namespace oha {
namespace {

// ---------------------------------------------------------------------
// RequestQueue admission semantics
// ---------------------------------------------------------------------

TEST(RequestQueue, TryPushShedsWhenFull)
{
    service::RequestQueue<int> queue(2);
    EXPECT_EQ(queue.tryPush(1), service::PushResult::Ok);
    EXPECT_EQ(queue.tryPush(2), service::PushResult::Ok);
    EXPECT_EQ(queue.tryPush(3), service::PushResult::Shed);
    EXPECT_EQ(queue.depth(), 2u);
    EXPECT_EQ(queue.pop().value(), 1);
    EXPECT_EQ(queue.tryPush(3), service::PushResult::Ok);
}

TEST(RequestQueue, BlockingPushWaitsForSpace)
{
    service::RequestQueue<int> queue(1);
    ASSERT_EQ(queue.push(1), service::PushResult::Ok);
    std::thread producer([&queue] {
        // Blocks until the consumer below pops.
        EXPECT_EQ(queue.push(2), service::PushResult::Ok);
    });
    EXPECT_EQ(queue.pop().value(), 1);
    producer.join();
    EXPECT_EQ(queue.pop().value(), 2);
}

TEST(RequestQueue, CloseDrainsAcceptedItemsThenEndsPop)
{
    service::RequestQueue<int> queue(4);
    queue.push(1);
    queue.push(2);
    queue.close();
    EXPECT_EQ(queue.push(3), service::PushResult::Closed);
    EXPECT_EQ(queue.tryPush(3), service::PushResult::Closed);
    // Accepted items are still served, in order...
    EXPECT_EQ(queue.pop().value(), 1);
    EXPECT_EQ(queue.pop().value(), 2);
    // ...and only then does pop() report exhaustion.
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(RequestQueue, CloseWakesBlockedProducers)
{
    service::RequestQueue<int> queue(1);
    ASSERT_EQ(queue.push(1), service::PushResult::Ok);
    std::thread producer([&queue] {
        EXPECT_EQ(queue.push(2), service::PushResult::Closed);
    });
    // Give the producer time to block on the full queue, then close.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    producer.join();
}

// ---------------------------------------------------------------------
// AnalysisService
// ---------------------------------------------------------------------

service::AnalysisRequest
raceRequest(const workloads::Workload &workload,
            std::chrono::milliseconds deadline = {})
{
    service::AnalysisRequest request;
    request.workload = workload;
    request.deadline = deadline;
    return request;
}

TEST(AnalysisService, RunsRequestsAndDrains)
{
    const auto race = workloads::makeRaceWorkload("raytracer", 4, 3);
    const auto slice = workloads::makeSliceWorkload("zlib", 3, 2);

    service::ServiceConfig config;
    config.shards = 2;
    service::AnalysisService daemon(config);
    EXPECT_EQ(daemon.shards(), 2u);

    auto ftFuture = daemon.submit(raceRequest(race));
    service::AnalysisRequest sliceRequest;
    sliceRequest.workload = slice;
    auto sliceFuture = daemon.submit(std::move(sliceRequest));

    daemon.drain();
    EXPECT_EQ(daemon.queueDepth(), 0u);
    const auto counters = daemon.counters();
    EXPECT_EQ(counters.accepted, 2u);
    EXPECT_EQ(counters.completed, 2u);
    EXPECT_EQ(counters.shed, 0u);
    EXPECT_EQ(counters.expired, 0u);
    EXPECT_EQ(counters.failed, 0u);

    const auto ft = ftFuture.get();
    ASSERT_EQ(ft.outcome, service::RequestOutcome::Done);
    ASSERT_TRUE(ft.ft.has_value());
    EXPECT_FALSE(ft.slice.has_value());
    EXPECT_EQ(ft.ft->name, "raytracer");
    EXPECT_GT(ft.ft->testRuns, 0u);
    EXPECT_GE(ft.runMs, 0.0);

    const auto sliced = sliceFuture.get();
    ASSERT_EQ(sliced.outcome, service::RequestOutcome::Done);
    ASSERT_TRUE(sliced.slice.has_value());
    EXPECT_EQ(sliced.slice->name, "zlib");
}

TEST(AnalysisService, SubmitAfterShutdownIsShed)
{
    service::AnalysisService daemon;
    daemon.shutdown();
    const auto race = workloads::makeRaceWorkload("raytracer", 2, 1);
    auto future = daemon.submit(raceRequest(race));
    const auto result = future.get();
    EXPECT_EQ(result.outcome, service::RequestOutcome::Shed);
    EXPECT_EQ(result.error, "service is shut down");
    const auto counters = daemon.counters();
    EXPECT_EQ(counters.accepted, 0u);
    EXPECT_EQ(counters.shed, 1u);
}

TEST(AnalysisService, FullQueueShedsUnderShedPolicy)
{
    const auto race = workloads::makeRaceWorkload("raytracer", 6, 4);
    service::ServiceConfig config;
    config.shards = 1;
    config.maxQueueDepth = 1;
    config.admission = service::AdmissionPolicy::Shed;
    service::AnalysisService daemon(config);

    // The first request occupies the single shard for many
    // milliseconds; the second fills the one queue slot; the burst
    // behind them must shed (submission takes microseconds).
    std::vector<std::future<service::ServiceRunResult>> futures;
    for (int i = 0; i < 6; ++i)
        futures.push_back(daemon.submit(raceRequest(race)));
    std::size_t done = 0, shed = 0;
    for (auto &future : futures) {
        const auto result = future.get();
        if (result.outcome == service::RequestOutcome::Done)
            ++done;
        else if (result.outcome == service::RequestOutcome::Shed) {
            ++shed;
            EXPECT_EQ(result.error, "queue full");
        }
    }
    EXPECT_EQ(done + shed, 6u);
    EXPECT_GE(done, 1u);
    EXPECT_GE(shed, 1u) << "burst should exceed the depth-1 queue";
    const auto counters = daemon.counters();
    EXPECT_EQ(counters.shed, shed);
    EXPECT_EQ(counters.completed, done);
}

TEST(AnalysisService, QueuedDeadlineExpiresWithoutRunning)
{
    const auto race = workloads::makeRaceWorkload("raytracer", 6, 4);
    service::ServiceConfig config;
    config.shards = 1;
    service::AnalysisService daemon(config);

    // Request A occupies the only shard for >> 1ms; B's deadline
    // passes while it sits queued behind A.
    auto slow = daemon.submit(raceRequest(race));
    auto doomed = daemon.submit(
        raceRequest(race, std::chrono::milliseconds(1)));
    daemon.drain();

    EXPECT_EQ(slow.get().outcome, service::RequestOutcome::Done);
    const auto expired = doomed.get();
    EXPECT_EQ(expired.outcome, service::RequestOutcome::Expired);
    EXPECT_FALSE(expired.ft.has_value());
    EXPECT_EQ(daemon.counters().expired, 1u);
}

// ---------------------------------------------------------------------
// Determinism contract: service == batch, field for field
// ---------------------------------------------------------------------

void
expectEqual(const core::RunCost &a, const core::RunCost &b,
            const std::string &label)
{
    EXPECT_EQ(a.base, b.base) << label;
    EXPECT_EQ(a.framework, b.framework) << label;
    EXPECT_EQ(a.analysis, b.analysis) << label;
    EXPECT_EQ(a.invariants, b.invariants) << label;
    EXPECT_EQ(a.rollback, b.rollback) << label;
}

void
expectEqual(const core::OptFtResult &a, const core::OptFtResult &b,
            const std::string &label)
{
    EXPECT_EQ(a.name, b.name) << label;
    EXPECT_EQ(a.staticallyRaceFree, b.staticallyRaceFree) << label;
    EXPECT_EQ(a.soundStaticSeconds, b.soundStaticSeconds) << label;
    EXPECT_EQ(a.predStaticSeconds, b.predStaticSeconds) << label;
    EXPECT_EQ(a.profileSeconds, b.profileSeconds) << label;
    EXPECT_EQ(a.profileRunsUsed, b.profileRunsUsed) << label;
    EXPECT_EQ(a.testRuns, b.testRuns) << label;
    EXPECT_EQ(a.baselineSeconds, b.baselineSeconds) << label;
    expectEqual(a.fastTrack, b.fastTrack, label + " fastTrack");
    expectEqual(a.hybridFt, b.hybridFt, label + " hybridFt");
    expectEqual(a.optFt, b.optFt, label + " optFt");
    EXPECT_EQ(a.misSpeculations, b.misSpeculations) << label;
    EXPECT_EQ(a.raceReportsMatch, b.raceReportsMatch) << label;
    EXPECT_EQ(a.racesObserved, b.racesObserved) << label;
    EXPECT_EQ(a.soundRacyAccesses, b.soundRacyAccesses) << label;
    EXPECT_EQ(a.predRacyAccesses, b.predRacyAccesses) << label;
    EXPECT_EQ(a.elidedLockSites, b.elidedLockSites) << label;
    EXPECT_EQ(a.speedupVsFastTrack, b.speedupVsFastTrack) << label;
    EXPECT_EQ(a.speedupVsHybrid, b.speedupVsHybrid) << label;
    EXPECT_EQ(a.breakEvenVsHybrid, b.breakEvenVsHybrid) << label;
    EXPECT_EQ(a.breakEvenVsFastTrack, b.breakEvenVsFastTrack) << label;
    EXPECT_EQ(a.interpretedSteps, b.interpretedSteps) << label;
    EXPECT_EQ(a.replayedEvents, b.replayedEvents) << label;
    EXPECT_EQ(a.recordSeconds, b.recordSeconds) << label;
    EXPECT_EQ(a.replayRollbackSeconds, b.replayRollbackSeconds) << label;
    EXPECT_EQ(a.repredications, b.repredications) << label;
    EXPECT_EQ(a.repredStaticSeconds, b.repredStaticSeconds) << label;
    EXPECT_EQ(a.circuitBroken, b.circuitBroken) << label;
}

void
expectEqual(const core::OptSliceResult &a, const core::OptSliceResult &b,
            const std::string &label)
{
    EXPECT_EQ(a.name, b.name) << label;
    EXPECT_EQ(a.profileSeconds, b.profileSeconds) << label;
    EXPECT_EQ(a.profileRunsUsed, b.profileRunsUsed) << label;
    EXPECT_EQ(a.endpoints, b.endpoints) << label;
    EXPECT_EQ(a.testRuns, b.testRuns) << label;
    EXPECT_EQ(a.baselineSeconds, b.baselineSeconds) << label;
    expectEqual(a.hybrid, b.hybrid, label + " hybrid");
    expectEqual(a.optimistic, b.optimistic, label + " optimistic");
    EXPECT_EQ(a.misSpeculations, b.misSpeculations) << label;
    EXPECT_EQ(a.sliceResultsMatch, b.sliceResultsMatch) << label;
    EXPECT_EQ(a.soundSliceSize, b.soundSliceSize) << label;
    EXPECT_EQ(a.optSliceSize, b.optSliceSize) << label;
    EXPECT_EQ(a.soundAliasRate, b.soundAliasRate) << label;
    EXPECT_EQ(a.optAliasRate, b.optAliasRate) << label;
    EXPECT_EQ(a.dynSpeedup, b.dynSpeedup) << label;
    EXPECT_EQ(a.breakEven, b.breakEven) << label;
    EXPECT_EQ(a.interpretedSteps, b.interpretedSteps) << label;
    EXPECT_EQ(a.replayedEvents, b.replayedEvents) << label;
    EXPECT_EQ(a.recordSeconds, b.recordSeconds) << label;
    EXPECT_EQ(a.replayRollbackSeconds, b.replayRollbackSeconds) << label;
    EXPECT_EQ(a.repredications, b.repredications) << label;
    EXPECT_EQ(a.circuitBroken, b.circuitBroken) << label;
}

// Every cached intermediate (static results, trace captures,
// profiling observations) must be indistinguishable from a fresh
// computation: the fully-cached pipeline and the fully-live pipeline
// agree field for field.
TEST(AnalysisService, CachedPipelineMatchesLivePipeline)
{
    const auto race = workloads::makeRaceWorkload("sor", 5, 2);
    const auto slice = workloads::makeSliceWorkload("zlib", 4, 2);

    core::OptFtConfig liveFt;
    liveFt.cacheTraceCaptures = false;
    liveFt.cacheProfileObservations = false;
    core::OptSliceConfig liveSlice;
    liveSlice.cacheTraceCaptures = false;
    liveSlice.cacheProfileObservations = false;

    analysis::resetAndersenCache();
    const auto cachedFt = core::runOptFt(race, {});
    const auto cachedSlice = core::runOptSlice(slice, {});
    expectEqual(cachedFt, core::runOptFt(race, liveFt), "optft");
    expectEqual(cachedSlice, core::runOptSlice(slice, liveSlice),
                "optslice");
}

TEST(AnalysisService, ResultsMatchBatchModeAtOneAndFourShards)
{
    const auto race = workloads::makeRaceWorkload("pmd", 6, 4);
    const auto slice = workloads::makeSliceWorkload("go", 4, 3);

    // Batch-mode reference, computed on a cold cache.
    analysis::resetAndersenCache();
    const auto batchFt = core::runOptFt(race, {});
    const auto batchSlice = core::runOptSlice(slice, {});

    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        service::ServiceConfig config;
        config.shards = shards;
        service::AnalysisService daemon(config);
        // Two rounds of each request: the first may be served cold or
        // warm (depending on what earlier iterations cached), the
        // second is certainly warm — results must be identical either
        // way, concurrently, at every shard count.
        std::vector<std::future<service::ServiceRunResult>> ftFutures;
        std::vector<std::future<service::ServiceRunResult>> sliceFutures;
        for (int rep = 0; rep < 2; ++rep) {
            ftFutures.push_back(daemon.submit(raceRequest(race)));
            service::AnalysisRequest request;
            request.workload = slice;
            sliceFutures.push_back(daemon.submit(std::move(request)));
        }
        const std::string label = "@" + std::to_string(shards) + " shards";
        for (auto &future : ftFutures) {
            const auto result = future.get();
            ASSERT_EQ(result.outcome, service::RequestOutcome::Done)
                << label;
            ASSERT_TRUE(result.ft.has_value()) << label;
            expectEqual(batchFt, *result.ft, label);
        }
        for (auto &future : sliceFutures) {
            const auto result = future.get();
            ASSERT_EQ(result.outcome, service::RequestOutcome::Done)
                << label;
            ASSERT_TRUE(result.slice.has_value()) << label;
            expectEqual(batchSlice, *result.slice, label);
        }
    }
}

} // namespace
} // namespace oha
