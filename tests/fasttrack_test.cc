/**
 * @file
 * Tests for the FastTrack dynamic race detector: happens-before via
 * locks, fork/join, spin-style custom synchronization, detection of
 * genuine races, and the effects of instrumentation elision
 * (Figures 2 and 4 of the paper).
 */

#include <gtest/gtest.h>

#include "dyn/fasttrack.h"
#include "dyn/plans.h"
#include "exec/interpreter.h"
#include "ir/builder.h"

namespace oha::dyn {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Reg;

std::set<std::pair<InstrId, InstrId>>
detect(const ir::Module &module, std::uint64_t seed,
       const exec::InstrumentationPlan &plan)
{
    FastTrack tool;
    exec::ExecConfig config;
    config.scheduleSeed = seed;
    exec::Interpreter interp(module, config);
    interp.attach(&tool, &plan);
    const auto result = interp.run();
    EXPECT_TRUE(result.finished());
    return tool.racePairs();
}

/** Two threads write a global; optionally lock-guarded. */
void
buildPair(Module &module, bool locked)
{
    IRBuilder b(module);
    const auto g = module.addGlobal("g", 1);
    const auto m = module.addGlobal("m", 1);
    Function *worker = b.createFunction("worker", 0);
    const Reg lockPtr = b.globalAddr(m);
    if (locked)
        b.lock(lockPtr);
    const Reg addr = b.globalAddr(g);
    b.store(addr, b.add(b.load(addr), b.constInt(1)));
    if (locked)
        b.unlock(lockPtr);
    b.ret();
    b.createFunction("main", 0);
    const Reg h1 = b.spawn(worker, {});
    const Reg h2 = b.spawn(worker, {});
    b.join(h1);
    b.join(h2);
    b.output(b.load(b.globalAddr(g)));
    b.ret();
    module.finalize();
}

TEST(FastTrack, DetectsUnlockedConflict)
{
    Module module;
    buildPair(module, false);
    const auto plan = fullFastTrackPlan(module);
    bool anyRace = false;
    for (std::uint64_t seed = 0; seed < 8; ++seed)
        anyRace = anyRace || !detect(module, seed, plan).empty();
    EXPECT_TRUE(anyRace) << "unlocked concurrent increments must race";
}

TEST(FastTrack, LocksEstablishHappensBefore)
{
    Module module;
    buildPair(module, true);
    const auto plan = fullFastTrackPlan(module);
    for (std::uint64_t seed = 0; seed < 8; ++seed)
        EXPECT_TRUE(detect(module, seed, plan).empty());
}

TEST(FastTrack, ForkJoinOrdersMainAccesses)
{
    Module module;
    IRBuilder b(module);
    const auto g = module.addGlobal("g", 1);
    Function *worker = b.createFunction("worker", 0);
    b.store(b.globalAddr(g), b.constInt(42));
    b.ret();
    b.createFunction("main", 0);
    b.store(b.globalAddr(g), b.constInt(1)); // before spawn: ordered
    const Reg h = b.spawn(worker, {});
    b.join(h);
    b.output(b.load(b.globalAddr(g))); // after join: ordered
    b.ret();
    module.finalize();

    const auto plan = fullFastTrackPlan(module);
    for (std::uint64_t seed = 0; seed < 8; ++seed)
        EXPECT_TRUE(detect(module, seed, plan).empty());
}

/** The Figure 4 program: payload ordered only via lock + spin flag. */
void
buildCustomSync(Module &module)
{
    IRBuilder b(module);
    const auto data = module.addGlobal("data", 1);
    const auto flag = module.addGlobal("flag", 1);
    const auto m = module.addGlobal("m", 1);

    Function *producer = b.createFunction("producer", 0);
    b.store(b.globalAddr(data), b.constInt(5));
    b.lock(b.globalAddr(m));
    b.store(b.globalAddr(flag), b.constInt(1));
    b.unlock(b.globalAddr(m));
    b.ret();

    Function *consumer = b.createFunction("consumer", 0);
    {
        Function *f = b.currentFunction();
        BasicBlock *spin = b.createBlock(f, "spin");
        BasicBlock *ready = b.createBlock(f, "ready");
        b.br(spin);
        b.setInsertPoint(spin);
        b.lock(b.globalAddr(m));
        const Reg fv = b.load(b.globalAddr(flag));
        b.unlock(b.globalAddr(m));
        b.condBr(fv, ready, spin);
        b.setInsertPoint(ready);
        b.ret(b.load(b.globalAddr(data)));
    }

    b.createFunction("main", 0);
    const Reg h1 = b.spawn(producer, {});
    const Reg h2 = b.spawn(consumer, {});
    b.join(h1);
    b.output(b.join(h2));
    b.ret();
    module.finalize();
}

TEST(FastTrack, CustomSyncIsRaceFreeWithFullInstrumentation)
{
    Module module;
    buildCustomSync(module);
    const auto plan = fullFastTrackPlan(module);
    for (std::uint64_t seed = 0; seed < 10; ++seed)
        EXPECT_TRUE(detect(module, seed, plan).empty());
}

TEST(FastTrack, LockElisionCausesFalseRaceUnderCustomSync)
{
    // Eliding the lock/unlock instrumentation (but keeping the data
    // accesses) loses the happens-before chain: Figure 4's false
    // race.  This is exactly what the no-custom-sync calibration
    // must detect and undo.
    Module module;
    buildCustomSync(module);
    auto plan = fullFastTrackPlan(module);
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const auto op = module.instr(id).op;
        if (op == ir::Opcode::Lock || op == ir::Opcode::Unlock)
            plan.setInstr(id, false);
        // The flag accesses were "proven" guarded, so elide them too.
        if (op == ir::Opcode::Load || op == ir::Opcode::Store) {
            // Keep only the data accesses: flag cells are global 1.
        }
    }
    bool falseRace = false;
    for (std::uint64_t seed = 0; seed < 10; ++seed)
        falseRace = falseRace || !detect(module, seed, plan).empty();
    EXPECT_TRUE(falseRace);
}

TEST(FastTrack, ElidingNonRacyChecksPreservesReports)
{
    // Elide everything a (sound) static detector would prune: the
    // remaining reports must be unchanged.
    Module module;
    buildPair(module, false);
    const auto fullPlan = fullFastTrackPlan(module);

    // Hand-prune: main's post-join load is provably ordered.
    auto prunedPlan = fullPlan;
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (ins.isMemAccess() &&
            ins.func == module.functionByName("main")->id()) {
            prunedPlan.setInstr(id, false);
        }
    }
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        EXPECT_EQ(detect(module, seed, fullPlan),
                  detect(module, seed, prunedPlan));
    }
}

TEST(FastTrack, SharedReadVectorClockInflation)
{
    // Many concurrent readers then a write: the write must race with
    // reads it is not ordered after (read-shared VC path).
    Module module;
    IRBuilder b(module);
    const auto g = module.addGlobal("g", 1);
    Function *reader = b.createFunction("reader", 0);
    b.ret(b.load(b.globalAddr(g)));
    Function *writer = b.createFunction("writer", 0);
    b.store(b.globalAddr(g), b.constInt(9));
    b.ret();
    b.createFunction("main", 0);
    const Reg r1 = b.spawn(reader, {});
    const Reg r2 = b.spawn(reader, {});
    const Reg w = b.spawn(writer, {});
    b.join(r1);
    b.join(r2);
    b.join(w);
    b.ret();
    module.finalize();

    const auto plan = fullFastTrackPlan(module);
    bool sawReadWriteRace = false;
    for (std::uint64_t seed = 0; seed < 16; ++seed)
        sawReadWriteRace =
            sawReadWriteRace || !detect(module, seed, plan).empty();
    EXPECT_TRUE(sawReadWriteRace);
}

TEST(FastTrack, ReportsAreDeterministicPerSeed)
{
    Module module;
    buildPair(module, false);
    const auto plan = fullFastTrackPlan(module);
    for (std::uint64_t seed = 0; seed < 4; ++seed)
        EXPECT_EQ(detect(module, seed, plan), detect(module, seed, plan));
}

} // namespace
} // namespace oha::dyn
