/**
 * @file
 * Tests for the Chord-style static race detector and its supporting
 * MHP / lockset / escape analyses, in sound and predicated modes.
 */

#include <gtest/gtest.h>

#include "analysis/race_detector.h"
#include "ir/builder.h"

namespace oha::analysis {
namespace {

using ir::BasicBlock;
using ir::BinOpKind;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Opcode;
using ir::Reg;

/** Mark every block visited (baseline for predicated variants). */
inv::InvariantSet
allVisited(const Module &module)
{
    inv::InvariantSet inv;
    inv.numBlocks = static_cast<std::uint32_t>(module.numBlocks());
    for (BlockId b = 0; b < module.numBlocks(); ++b)
        inv.visitedBlocks.insert(b);
    return inv;
}

/** Two workers touch global g; optionally guarded by global lock m. */
void
buildSharedCounter(Module &module, bool locked)
{
    IRBuilder b(module);
    const auto g = module.addGlobal("g", 1);
    const auto m = module.addGlobal("m", 1);

    Function *worker = b.createFunction("worker", 0);
    {
        const Reg lockPtr = b.globalAddr(m);
        if (locked)
            b.lock(lockPtr);
        const Reg addr = b.globalAddr(g);
        b.store(addr, b.add(b.load(addr), b.constInt(1)));
        if (locked)
            b.unlock(lockPtr);
        b.ret();
    }
    b.createFunction("main", 0);
    const Reg h1 = b.spawn(worker, {});
    const Reg h2 = b.spawn(worker, {});
    b.join(h1);
    b.join(h2);
    b.output(b.load(b.globalAddr(g)));
    b.ret();
    module.finalize();
}

TEST(StaticRace, UnguardedSharedWritesRace)
{
    Module module;
    buildSharedCounter(module, /*locked=*/false);
    const StaticRaceResult result = runStaticRaceDetector(module, nullptr);
    EXPECT_FALSE(result.racyPairs.empty());
    // The worker's load and store of g are both racy.
    int racyInWorker = 0;
    for (InstrId id : result.racyAccesses)
        if (module.instr(id).func ==
            module.functionByName("worker")->id())
            ++racyInWorker;
    EXPECT_EQ(racyInWorker, 2);
}

TEST(StaticRace, SoundDetectorCannotUseLocksets)
{
    // Even with correct locking, the sound analysis must keep the
    // accesses (may-alias locksets are not enough — Section 4.2.2).
    Module module;
    buildSharedCounter(module, /*locked=*/true);
    const StaticRaceResult result = runStaticRaceDetector(module, nullptr);
    EXPECT_FALSE(result.racyPairs.empty());
}

TEST(StaticRace, LikelyGuardingLocksPruneGuardedPairs)
{
    Module module;
    buildSharedCounter(module, /*locked=*/true);

    inv::InvariantSet inv = allVisited(module);
    // The single lock site always locks the single global mutex.
    InstrId lockSite = kNoInstr;
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == Opcode::Lock)
            lockSite = id;
    ASSERT_NE(lockSite, kNoInstr);
    inv.mustAliasLocks.insert({lockSite, lockSite});

    const StaticRaceResult result = runStaticRaceDetector(module, &inv);
    EXPECT_TRUE(result.racyPairs.empty());
    EXPECT_EQ(result.usedLockAliases.size(), 1u);
    EXPECT_TRUE(result.usedLockAliases.count({lockSite, lockSite}));
}

TEST(StaticRace, ThreadLocalHeapDoesNotRace)
{
    // Each worker allocates and uses private memory; returns a value.
    Module module;
    IRBuilder b(module);
    Function *worker = b.createFunction("worker", 1);
    {
        const Reg buf = b.alloc(2);
        b.store(b.gep(buf, 0), 0);
        const Reg v = b.load(b.gep(buf, 0));
        b.ret(v);
    }
    b.createFunction("main", 0);
    const Reg h1 = b.spawn(worker, {b.constInt(1)});
    const Reg h2 = b.spawn(worker, {b.constInt(2)});
    b.output(b.join(h1));
    b.output(b.join(h2));
    b.ret();
    module.finalize();

    const StaticRaceResult result = runStaticRaceDetector(module, nullptr);
    EXPECT_TRUE(result.racyPairs.empty());
    EXPECT_TRUE(result.racyAccesses.empty());
}

TEST(StaticRace, ForkJoinKernelIsStaticallyRaceFree)
{
    // The JavaGrande-kernel pattern (Figure 5's right-hand group):
    // main initializes shared arrays before straight-line spawns,
    // threads only read them, results return via join.
    Module module;
    IRBuilder b(module);
    const auto data = module.addGlobal("data", 4);

    Function *worker = b.createFunction("worker", 1);
    {
        const Reg v = b.load(b.gepDyn(b.globalAddr(data), 0));
        b.ret(b.mul(v, v));
    }
    b.createFunction("main", 0);
    {
        // Initialization writes happen before any spawn.
        for (int i = 0; i < 4; ++i) {
            b.store(b.gep(b.globalAddr(data), i), b.input(i));
        }
        const Reg h1 = b.spawn(worker, {b.constInt(0)});
        const Reg h2 = b.spawn(worker, {b.constInt(2)});
        const Reg r1 = b.join(h1);
        const Reg r2 = b.join(h2);
        b.output(b.add(r1, r2));
        b.ret();
    }
    module.finalize();

    const StaticRaceResult result = runStaticRaceDetector(module, nullptr);
    EXPECT_TRUE(result.racyPairs.empty())
        << "init-before-spawn reads must be provably race-free";
}

TEST(StaticRace, MainReadAfterDominatingJoinIsOrdered)
{
    // main writes g only after joining both singleton threads.
    Module module;
    buildSharedCounter(module, false);
    // buildSharedCounter's main does load g after joins: the final
    // Output load should NOT race with worker accesses... but worker
    // writes race with each other, so just check main's load is not
    // racy.
    const StaticRaceResult result = runStaticRaceDetector(module, nullptr);
    const FuncId mainId = module.functionByName("main")->id();
    for (InstrId id : result.racyAccesses)
        EXPECT_NE(module.instr(id).func, mainId)
            << "main's post-join load must be ordered";
}

/** Spawns inside a loop: statically unknown thread count. */
void
buildLoopSpawner(Module &module, int iterations)
{
    IRBuilder b(module);
    const auto g = module.addGlobal("g", 1);
    Function *worker = b.createFunction("worker", 0);
    {
        const Reg addr = b.globalAddr(g);
        b.store(addr, b.add(b.load(addr), b.constInt(1)));
        b.ret();
    }
    Function *main = b.createFunction("main", 0);
    BasicBlock *loop = b.createBlock(main, "loop");
    BasicBlock *body = b.createBlock(main, "body");
    BasicBlock *done = b.createBlock(main, "done");
    const Reg i = b.constInt(0);
    const Reg n = b.constInt(iterations);
    const Reg one = b.constInt(1);
    const Reg handleBox = b.alloc(1);
    b.br(loop);
    b.setInsertPoint(loop);
    b.condBr(b.lt(i, n), body, done);
    b.setInsertPoint(body);
    const Reg h = b.spawn(worker, {});
    b.store(handleBox, h);
    b.join(b.load(handleBox)); // join immediately: serial in practice
    b.binopTo(i, BinOpKind::Add, i, one);
    b.br(loop);
    b.setInsertPoint(done);
    b.ret();
    module.finalize();
}

TEST(StaticRace, LoopSpawnRacesWithItselfSoundly)
{
    Module module;
    buildLoopSpawner(module, 3);
    const StaticRaceResult sound = runStaticRaceDetector(module, nullptr);
    // Statically the site may create many threads: self-race assumed.
    EXPECT_FALSE(sound.racyPairs.empty());
}

TEST(StaticRace, SingletonInvariantPrunesLoopSpawn)
{
    Module module;
    buildLoopSpawner(module, 1); // profiling observed one iteration

    inv::InvariantSet inv = allVisited(module);
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == Opcode::Spawn)
            inv.singletonSpawnSites.insert(id);

    const StaticRaceResult result = runStaticRaceDetector(module, &inv);
    EXPECT_TRUE(result.racyPairs.empty());
    EXPECT_EQ(result.usedSingletonSites.size(), 1u);
}

TEST(StaticRace, LucPrunesColdRacyAccess)
{
    // The racy write sits on a cold path never profiled.
    Module module;
    IRBuilder b(module);
    const auto g = module.addGlobal("g", 1);
    Function *worker = b.createFunction("worker", 1);
    BasicBlock *cold = b.createBlock(worker, "cold");
    BasicBlock *done = b.createBlock(worker, "done");
    b.condBr(0, cold, done);
    b.setInsertPoint(cold);
    b.store(b.globalAddr(g), b.constInt(1));
    b.br(done);
    b.setInsertPoint(done);
    b.ret();
    b.createFunction("main", 0);
    const Reg h1 = b.spawn(worker, {b.input(0)});
    const Reg h2 = b.spawn(worker, {b.input(0)});
    b.join(h1);
    b.join(h2);
    b.ret();
    module.finalize();

    const StaticRaceResult sound = runStaticRaceDetector(module, nullptr);
    EXPECT_FALSE(sound.racyPairs.empty());

    inv::InvariantSet inv = allVisited(module);
    inv.visitedBlocks.erase(cold->id());
    const StaticRaceResult optimistic = runStaticRaceDetector(module, &inv);
    EXPECT_TRUE(optimistic.racyPairs.empty());
}

TEST(StaticRace, DistinctLockObjectsDoNotPrune)
{
    // Two lock sites guarding the same data with *different* mutex
    // objects: the must-alias invariant is absent, so the pair stays.
    Module module;
    IRBuilder b(module);
    const auto g = module.addGlobal("g", 1);
    const auto m1 = module.addGlobal("m1", 1);
    const auto m2 = module.addGlobal("m2", 1);

    Function *w1 = b.createFunction("w1", 0);
    b.lock(b.globalAddr(m1));
    b.store(b.globalAddr(g), b.constInt(1));
    b.unlock(b.globalAddr(m1));
    b.ret();
    Function *w2 = b.createFunction("w2", 0);
    b.lock(b.globalAddr(m2));
    b.store(b.globalAddr(g), b.constInt(2));
    b.unlock(b.globalAddr(m2));
    b.ret();
    b.createFunction("main", 0);
    const Reg h1 = b.spawn(w1, {});
    const Reg h2 = b.spawn(w2, {});
    b.join(h1);
    b.join(h2);
    b.ret();
    module.finalize();

    // Profiling would observe each site locking one distinct object;
    // the pair (site1, site2) must-alias does NOT hold.
    inv::InvariantSet inv = allVisited(module);
    std::vector<InstrId> locks;
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == Opcode::Lock)
            locks.push_back(id);
    ASSERT_EQ(locks.size(), 2u);
    inv.mustAliasLocks.insert({locks[0], locks[0]});
    inv.mustAliasLocks.insert({locks[1], locks[1]});
    // (locks[0], locks[1]) deliberately absent.

    const StaticRaceResult result = runStaticRaceDetector(module, &inv);
    EXPECT_FALSE(result.racyPairs.empty())
        << "differently-locked writes still race";
}

} // namespace
} // namespace oha::analysis
