/**
 * @file
 * Regression tests for two FastTrack hot-path bugs, driving the tool
 * directly through its Tool interface:
 *
 *  - the READ SHARED SAME EPOCH fast path: a repeated read by one
 *    thread at one epoch of a shared-read variable must not mutate
 *    the read metadata again (it used to rewrite the read vector and
 *    the per-thread reader-attribution map on every read);
 *
 *  - the fork edge in onThreadStart when the parent's id lies beyond
 *    the clock table: growing the table for the parent used to
 *    invalidate the child's clock reference, silently dropping the
 *    child's clock updates and losing parent/child races.
 */

#include <gtest/gtest.h>

#include "dyn/fasttrack.h"
#include "ir/instruction.h"

namespace oha {
namespace {

/** A synthetic Load/Store event for @p tid on cell (obj, off). */
exec::EventCtx
memEvent(ThreadId tid, const ir::Instruction &instr, exec::ObjectId obj,
         std::uint32_t off = 0)
{
    exec::EventCtx ctx;
    ctx.tid = tid;
    ctx.instr = &instr;
    ctx.obj = obj;
    ctx.off = off;
    return ctx;
}

ir::Instruction
makeInstr(ir::Opcode op, InstrId id)
{
    ir::Instruction instr;
    instr.op = op;
    instr.id = id;
    return instr;
}

TEST(FastTrackFastPath, SharedSameEpochReadDoesNotTouchMetadata)
{
    dyn::FastTrack ft;
    // Two unrelated threads (no fork edge), so their reads of x are
    // concurrent and inflate the read epoch to a vector clock.
    ft.onThreadStart(0, 0, kNoInstr);
    ft.onThreadStart(1, 0, kNoInstr);

    const auto load0 = makeInstr(ir::Opcode::Load, 1);
    const auto load1 = makeInstr(ir::Opcode::Load, 2);
    ft.onEvent(memEvent(0, load0, /*obj=*/1));
    ft.onEvent(memEvent(1, load1, /*obj=*/1));

    // The variable is now in shared-read state; the inflation above is
    // the only slow-path update so far.
    const std::uint64_t afterInflate = ft.readSlowPathUpdates();
    EXPECT_GT(afterInflate, 0u);

    // Re-reads by both threads at their current epochs must take the
    // O(1) fast path: no further metadata writes.
    for (int i = 0; i < 100; ++i) {
        ft.onEvent(memEvent(1, load1, /*obj=*/1));
        ft.onEvent(memEvent(0, load0, /*obj=*/1));
    }
    EXPECT_EQ(ft.readSlowPathUpdates(), afterInflate);

    // The fast path is only a shortcut, not a soundness hole: a write
    // by thread 0 still races with thread 1's read.
    const auto store0 = makeInstr(ir::Opcode::Store, 12);
    ft.onEvent(memEvent(0, store0, /*obj=*/1));
    const auto pairs = ft.racePairs();
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_EQ(*pairs.begin(), std::make_pair(InstrId(2), InstrId(12)));
}

TEST(FastTrackFastPath, ReadAtNewEpochStillUpdatesSharedVector)
{
    dyn::FastTrack ft;
    ft.onThreadStart(0, 0, kNoInstr);
    ft.onThreadStart(1, 0, kNoInstr);

    const auto load0 = makeInstr(ir::Opcode::Load, 1);
    const auto load1 = makeInstr(ir::Opcode::Load, 2);
    const auto lock0 = makeInstr(ir::Opcode::Lock, 3);
    const auto unlock0 = makeInstr(ir::Opcode::Unlock, 4);
    ft.onEvent(memEvent(0, load0, /*obj=*/1));
    ft.onEvent(memEvent(1, load1, /*obj=*/1));
    const std::uint64_t afterInflate = ft.readSlowPathUpdates();

    // Advance thread 0's epoch (unlock bumps its own clock); the next
    // read is at a fresh epoch and must go down the slow path again.
    ft.onEvent(memEvent(0, lock0, /*obj=*/99));
    ft.onEvent(memEvent(0, unlock0, /*obj=*/99));
    ft.onEvent(memEvent(0, load0, /*obj=*/1));
    EXPECT_EQ(ft.readSlowPathUpdates(), afterInflate + 1);
}

TEST(FastTrackFastPath, ForkEdgeSurvivesParentBeyondClockTable)
{
    dyn::FastTrack ft;
    // First event ever: a fork whose parent id (5) is larger than the
    // child's (1), so registering the child must grow the clock table
    // past both ids at once.  With the old code the resize for the
    // parent dangled the child's clock reference and the child's
    // updates were lost, hiding the parent/child race below.
    ft.onThreadStart(1, 5, /*spawnSite=*/7);

    const auto childStore = makeInstr(ir::Opcode::Store, 10);
    const auto parentStore = makeInstr(ir::Opcode::Store, 11);
    ft.onEvent(memEvent(1, childStore, /*obj=*/2));
    ft.onEvent(memEvent(5, parentStore, /*obj=*/2));

    const auto pairs = ft.racePairs();
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_EQ(*pairs.begin(), std::make_pair(InstrId(10), InstrId(11)));
}

TEST(FastTrackFastPath, ForkEdgeStillOrdersParentBeforeChild)
{
    dyn::FastTrack ft;
    // Normal direction: parent writes before the fork, child writes
    // after inheriting the parent's clock — no race.
    ft.onThreadStart(5, 0, kNoInstr);
    const auto parentStore = makeInstr(ir::Opcode::Store, 11);
    ft.onEvent(memEvent(5, parentStore, /*obj=*/2));

    ft.onThreadStart(1, 5, /*spawnSite=*/7);
    const auto childStore = makeInstr(ir::Opcode::Store, 10);
    ft.onEvent(memEvent(1, childStore, /*obj=*/2));

    EXPECT_TRUE(ft.races().empty());
}

} // namespace
} // namespace oha
