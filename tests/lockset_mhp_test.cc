/**
 * @file
 * Direct unit tests for the lockset and may-happen-in-parallel
 * analyses that feed the static race detector.
 */

#include <gtest/gtest.h>

#include "analysis/lockset.h"
#include "analysis/mhp.h"
#include "ir/builder.h"

namespace oha::analysis {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Opcode;
using ir::Reg;

InstrId
nth(const Module &module, Opcode op, int index = 0)
{
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == op && index-- == 0)
            return id;
    OHA_PANIC("not found");
}

TEST(Lockset, StraightLineHeldSet)
{
    Module module;
    IRBuilder b(module);
    const auto m = module.addGlobal("m", 1);
    b.createFunction("main", 0);
    const Reg g = b.alloc(1);
    b.load(g); // before: held = {}
    const Reg p = b.globalAddr(m);
    b.lock(p);
    b.load(g); // inside: held = {lock}
    b.unlock(p);
    b.load(g); // after: held = {}
    b.ret();
    module.finalize();

    const auto pts = runAndersen(module, {});
    LocksetAnalysis locks(module, pts, nullptr);
    const InstrId lockSite = nth(module, Opcode::Lock);
    EXPECT_TRUE(locks.locksHeldAt(nth(module, Opcode::Load, 0)).empty());
    EXPECT_EQ(locks.locksHeldAt(nth(module, Opcode::Load, 1)),
              (std::set<InstrId>{lockSite}));
    EXPECT_TRUE(locks.locksHeldAt(nth(module, Opcode::Load, 2)).empty());
}

TEST(Lockset, BranchMeetIsIntersection)
{
    // One arm holds the lock, the other does not: after the merge
    // nothing is guaranteed held.
    Module module;
    IRBuilder b(module);
    const auto m = module.addGlobal("m", 1);
    Function *main = b.createFunction("main", 0);
    BasicBlock *locked = b.createBlock(main, "locked");
    BasicBlock *merge = b.createBlock(main, "merge");
    const Reg g = b.alloc(1);
    const Reg p = b.globalAddr(m);
    b.condBr(b.input(0), locked, merge);
    b.setInsertPoint(locked);
    b.lock(p);
    b.br(merge);
    b.setInsertPoint(merge);
    b.load(g);
    b.ret();
    module.finalize();

    const auto pts = runAndersen(module, {});
    LocksetAnalysis locks(module, pts, nullptr);
    EXPECT_TRUE(locks.locksHeldAt(nth(module, Opcode::Load)).empty());
}

TEST(Lockset, CalleeInheritsIntersectionOfCallSites)
{
    Module module;
    IRBuilder b(module);
    const auto m = module.addGlobal("m", 1);
    const auto g = module.addGlobal("g", 1);

    Function *helper = b.createFunction("helper", 0);
    b.load(b.globalAddr(g));
    b.ret(b.constInt(0));

    b.createFunction("main", 0);
    const Reg p = b.globalAddr(m);
    b.lock(p);
    b.call(helper, {}); // held here
    b.unlock(p);
    b.call(helper, {}); // not held here
    b.ret();
    module.finalize();

    const auto pts = runAndersen(module, {});
    LocksetAnalysis locks(module, pts, nullptr);
    // Called both with and without the lock: nothing guaranteed.
    EXPECT_TRUE(locks.locksHeldAt(nth(module, Opcode::Load)).empty());
}

TEST(Lockset, CalleeKeepsLockHeldAtEveryCallSite)
{
    Module module;
    IRBuilder b(module);
    const auto m = module.addGlobal("m", 1);
    const auto g = module.addGlobal("g", 1);

    Function *helper = b.createFunction("helper", 0);
    b.load(b.globalAddr(g));
    b.ret(b.constInt(0));

    b.createFunction("main", 0);
    const Reg p = b.globalAddr(m);
    b.lock(p);
    b.call(helper, {});
    b.call(helper, {});
    b.unlock(p);
    b.ret();
    module.finalize();

    const auto pts = runAndersen(module, {});
    LocksetAnalysis locks(module, pts, nullptr);
    EXPECT_EQ(locks.locksHeldAt(nth(module, Opcode::Load)).size(), 1u);
}

TEST(Lockset, UnlockReleasesMayAliasedSites)
{
    // Two locks; the unlock may release either -> both drop.
    Module module;
    IRBuilder b(module);
    const auto m1 = module.addGlobal("m1", 1);
    const auto m2 = module.addGlobal("m2", 1);
    Function *main = b.createFunction("main", 0);
    BasicBlock *sel2 = b.createBlock(main, "sel2");
    BasicBlock *after = b.createBlock(main, "after");
    const Reg g = b.alloc(1);
    const Reg box = b.alloc(1);
    b.store(box, b.globalAddr(m1));
    b.condBr(b.input(0), sel2, after);
    b.setInsertPoint(sel2);
    b.store(box, b.globalAddr(m2));
    b.br(after);
    b.setInsertPoint(after);
    const Reg which = b.load(box);
    b.lock(which);
    b.load(g);
    b.unlock(which); // may release m1 or m2
    b.load(g);
    b.ret();
    module.finalize();

    const auto pts = runAndersen(module, {});
    LocksetAnalysis locks(module, pts, nullptr);
    EXPECT_EQ(locks.locksHeldAt(nth(module, Opcode::Load, 1)).size(),
              1u);
    EXPECT_TRUE(locks.locksHeldAt(nth(module, Opcode::Load, 2)).empty());
}

/** main: pre-store, spawn, mid-load, join, post-store. */
struct MhpProgram
{
    Module module;
    InstrId preStore = kNoInstr;
    InstrId midLoad = kNoInstr;
    InstrId postStore = kNoInstr;
    InstrId workerStore = kNoInstr;
};

void
buildMhp(MhpProgram &prog)
{
    IRBuilder b(prog.module);
    const auto g = prog.module.addGlobal("g", 1);
    Function *worker = b.createFunction("worker", 0);
    b.store(b.globalAddr(g), b.constInt(2));
    b.ret();
    b.createFunction("main", 0);
    b.store(b.globalAddr(g), b.constInt(1)); // pre
    const Reg h = b.spawn(worker, {});
    b.load(b.globalAddr(g)); // mid: concurrent with the worker
    b.join(h);
    b.store(b.globalAddr(g), b.constInt(3)); // post
    b.ret();
    prog.module.finalize();

    int stores = 0;
    for (InstrId id = 0; id < prog.module.numInstrs(); ++id) {
        const auto &ins = prog.module.instr(id);
        if (ins.op == Opcode::Store) {
            if (prog.module.function(ins.func)->name() == "worker")
                prog.workerStore = id;
            else if (stores++ == 0)
                prog.preStore = id;
            else
                prog.postStore = id;
        }
        if (ins.op == Opcode::Load)
            prog.midLoad = id;
    }
}

TEST(Mhp, ForkJoinWindow)
{
    MhpProgram prog;
    buildMhp(prog);
    const auto pts = runAndersen(prog.module, {});
    const CallGraph graph(prog.module, pts, nullptr);
    const MhpAnalysis mhp(prog.module, pts, graph, nullptr);

    EXPECT_FALSE(
        mhp.mayHappenInParallel(prog.preStore, prog.workerStore))
        << "before the spawn";
    EXPECT_TRUE(mhp.mayHappenInParallel(prog.midLoad, prog.workerStore))
        << "inside the fork-join window";
    EXPECT_FALSE(
        mhp.mayHappenInParallel(prog.postStore, prog.workerStore))
        << "after the dominating join";
    EXPECT_FALSE(mhp.mayHappenInParallel(prog.preStore, prog.postStore))
        << "same thread is always ordered";
}

TEST(Mhp, MatchedJoinTracksAssignChains)
{
    MhpProgram prog;
    buildMhp(prog);
    const auto pts = runAndersen(prog.module, {});
    const CallGraph graph(prog.module, pts, nullptr);
    const MhpAnalysis mhp(prog.module, pts, graph, nullptr);
    const InstrId spawn = nth(prog.module, Opcode::Spawn);
    EXPECT_NE(mhp.matchedJoin(spawn), kNoInstr);
    EXPECT_EQ(mhp.singletonSites().count(spawn), 1u);
}

TEST(Mhp, TwoSpawnSitesOverlapUnlessJoinDominates)
{
    Module module;
    IRBuilder b(module);
    const auto g = module.addGlobal("g", 1);
    Function *worker = b.createFunction("worker", 0);
    b.store(b.globalAddr(g), b.constInt(1));
    b.ret();
    b.createFunction("main", 0);
    const Reg h1 = b.spawn(worker, {});
    b.join(h1); // thread 1 fully retired ...
    const Reg h2 = b.spawn(worker, {}); // ... before thread 2 starts
    b.join(h2);
    b.ret();
    module.finalize();

    const auto pts = runAndersen(module, {});
    const CallGraph graph(module, pts, nullptr);
    const MhpAnalysis mhp(module, pts, graph, nullptr);
    const InstrId store = nth(module, Opcode::Store);
    EXPECT_FALSE(mhp.mayHappenInParallel(store, store))
        << "sequential spawn-join-spawn-join cannot overlap";
}

TEST(Mhp, LoopSpawnIsNotSingleton)
{
    Module module;
    IRBuilder b(module);
    Function *worker = b.createFunction("worker", 0);
    const auto g = module.addGlobal("g", 1);
    b.store(b.globalAddr(g), b.constInt(1));
    b.ret();
    Function *main = b.createFunction("main", 0);
    BasicBlock *loop = b.createBlock(main, "loop");
    BasicBlock *body = b.createBlock(main, "body");
    BasicBlock *done = b.createBlock(main, "done");
    const Reg i = b.constInt(0);
    const Reg one = b.constInt(1);
    b.br(loop);
    b.setInsertPoint(loop);
    b.condBr(b.lt(i, b.constInt(3)), body, done);
    b.setInsertPoint(body);
    b.spawn(worker, {});
    b.binopTo(i, ir::BinOpKind::Add, i, one);
    b.br(loop);
    b.setInsertPoint(done);
    b.ret();
    module.finalize();

    const auto pts = runAndersen(module, {});
    const CallGraph graph(module, pts, nullptr);

    const MhpAnalysis sound(module, pts, graph, nullptr);
    const InstrId spawn = nth(module, Opcode::Spawn);
    const InstrId store = nth(module, Opcode::Store);
    EXPECT_EQ(sound.singletonSites().count(spawn), 0u);
    EXPECT_TRUE(sound.mayHappenInParallel(store, store));

    // The singleton invariant flips the verdict.
    inv::InvariantSet inv;
    inv.numBlocks = static_cast<std::uint32_t>(module.numBlocks());
    for (BlockId blk = 0; blk < module.numBlocks(); ++blk)
        inv.visitedBlocks.insert(blk);
    inv.singletonSpawnSites.insert(spawn);
    const MhpAnalysis predicated(module, pts, graph, &inv);
    EXPECT_FALSE(predicated.mayHappenInParallel(store, store));
}

TEST(Mhp, AccessesInDeadFunctionsNeverHappen)
{
    Module module;
    IRBuilder b(module);
    const auto g = module.addGlobal("g", 1);
    b.createFunction("orphan", 0); // never called or spawned
    b.store(b.globalAddr(g), b.constInt(9));
    b.ret();
    b.createFunction("main", 0);
    b.load(b.globalAddr(g));
    b.ret();
    module.finalize();

    const auto pts = runAndersen(module, {});
    const CallGraph graph(module, pts, nullptr);
    const MhpAnalysis mhp(module, pts, graph, nullptr);
    EXPECT_FALSE(mhp.mayHappenInParallel(nth(module, Opcode::Store),
                                         nth(module, Opcode::Load)));
}

} // namespace
} // namespace oha::analysis
