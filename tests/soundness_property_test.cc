/**
 * @file
 * Whole-system soundness properties, parameterized over benchmark
 * workloads.  These are the contracts the paper's correctness
 * argument rests on:
 *
 *  1. points-to soundness: every address dynamically touched by a
 *     load/store/lock is inside the access's static points-to set;
 *  2. static race soundness: every race FastTrack observes is a
 *     statically-reported may-race pair;
 *  3. static slice soundness: every dynamic slice is contained in the
 *     sound static slice of its endpoint.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/race_detector.h"
#include "analysis/slicer.h"
#include "dyn/fasttrack.h"
#include "dyn/giri.h"
#include "dyn/plans.h"
#include "workloads/workloads.h"

namespace oha {
namespace {

/** Records (instr -> set of dynamic (allocSite|global, offset)). */
class AccessRecorder : public exec::Tool
{
  public:
    explicit AccessRecorder(exec::Interpreter &interp) : interp_(interp) {}

    void
    onEvent(const exec::EventCtx &ctx) override
    {
        switch (ctx.instr->op) {
          case ir::Opcode::Load:
          case ir::Opcode::Store:
          case ir::Opcode::Lock:
          case ir::Opcode::Unlock: {
            const InstrId site = interp_.objectAllocSite(ctx.obj);
            // Globals have object id == global id and no alloc site.
            observed_[ctx.instr->id].insert(
                {site, site == kNoInstr ? ctx.obj : 0, ctx.off});
            break;
          }
          default:
            break;
        }
    }

    struct DynTarget
    {
        InstrId allocSite;      ///< kNoInstr for globals
        std::uint32_t globalId; ///< valid when allocSite == kNoInstr
        std::uint32_t offset;

        bool
        operator<(const DynTarget &other) const
        {
            return std::tie(allocSite, globalId, offset) <
                   std::tie(other.allocSite, other.globalId,
                            other.offset);
        }
    };

    const std::map<InstrId, std::set<DynTarget>> &
    observed() const
    {
        return observed_;
    }

  private:
    exec::Interpreter &interp_;
    std::map<InstrId, std::set<DynTarget>> observed_;
};

/** True if the static target set covers the dynamic target. */
bool
covers(const analysis::AndersenResult &pts, const SparseBitSet &targets,
       const AccessRecorder::DynTarget &dyn)
{
    bool found = false;
    targets.forEach([&](analysis::CellId cell) {
        if (found)
            return;
        const auto obj = pts.memory.objectOfCell(cell);
        const auto &object = pts.memory.object(obj);
        const std::uint32_t field = pts.memory.fieldOfCell(cell);
        if (field != dyn.offset)
            return;
        if (dyn.allocSite == kNoInstr) {
            found = object.kind == analysis::AbsObjectKind::Global &&
                    object.srcId == dyn.globalId;
        } else {
            found = object.kind == analysis::AbsObjectKind::AllocSite &&
                    object.srcId == dyn.allocSite;
        }
    });
    return found;
}

class WorkloadSoundness : public ::testing::TestWithParam<std::string>
{
  protected:
    static workloads::Workload
    load(const std::string &name)
    {
        for (const auto &n : workloads::raceWorkloadNames())
            if (n == name)
                return workloads::makeRaceWorkload(name, 2, 3);
        return workloads::makeSliceWorkload(name, 2, 3);
    }
};

TEST_P(WorkloadSoundness, DynamicAccessesWithinStaticPointsTo)
{
    const auto workload = load(GetParam());
    const ir::Module &module = *workload.module;

    for (bool contextSensitive : {false, true}) {
        analysis::AndersenOptions options;
        options.contextSensitive = contextSensitive;
        const auto pts = analysis::runAndersen(module, options);
        if (!pts.completed)
            continue;

        const auto plan = exec::InstrumentationPlan::all(module);
        exec::Interpreter interp(module, workload.testingSet.front());
        AccessRecorder recorder(interp);
        interp.attach(&recorder, &plan);
        ASSERT_TRUE(interp.run().finished());

        for (const auto &[instr, targets] : recorder.observed()) {
            const SparseBitSet staticTargets =
                pts.pointerTargets(instr);
            for (const auto &dyn : targets) {
                EXPECT_TRUE(covers(pts, staticTargets, dyn))
                    << GetParam() << (contextSensitive ? " CS" : " CI")
                    << ": access i" << instr
                    << " touched an address outside its points-to set";
            }
        }
    }
}

TEST_P(WorkloadSoundness, ObservedRacesAreStaticallyReported)
{
    const auto workload = load(GetParam());
    if (!workload.race)
        GTEST_SKIP() << "race property applies to the race suite";
    const ir::Module &module = *workload.module;

    const auto staticResult =
        analysis::runStaticRaceDetector(module, nullptr);
    const auto plan = dyn::fullFastTrackPlan(module);

    for (const auto &config : workload.testingSet) {
        dyn::FastTrack tool;
        exec::Interpreter interp(module, config);
        interp.attach(&tool, &plan);
        ASSERT_TRUE(interp.run().finished());
        for (const auto &pair : tool.racePairs()) {
            EXPECT_TRUE(staticResult.racyPairs.count(pair))
                << GetParam() << ": dynamic race (" << pair.first << ","
                << pair.second << ") missed by the sound detector";
        }
    }
}

TEST_P(WorkloadSoundness, DynamicSlicesWithinSoundStaticSlices)
{
    const auto workload = load(GetParam());
    if (workload.race)
        GTEST_SKIP() << "slice property applies to the slicing suite";
    const ir::Module &module = *workload.module;

    const auto pts = analysis::runAndersen(module, {});
    const analysis::StaticSlicer slicer(module, pts, {});
    const auto plan = dyn::fullGiriPlan(module);

    dyn::GiriSlicer tool(module);
    exec::Interpreter interp(module, workload.testingSet.front());
    interp.attach(&tool, &plan);
    ASSERT_TRUE(interp.run().finished());

    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        if (module.instr(id).op != ir::Opcode::Output)
            continue;
        const auto staticSlice = slicer.slice(id);
        ASSERT_TRUE(staticSlice.completed);
        for (InstrId dynamicInstr : tool.slice(id)) {
            EXPECT_TRUE(staticSlice.instructions.count(dynamicInstr))
                << GetParam() << ": dynamic slice of endpoint " << id
                << " contains i" << dynamicInstr
                << " missing from the sound static slice";
        }
    }
}

std::vector<std::string>
allNames()
{
    std::vector<std::string> names = workloads::raceWorkloadNames();
    for (const auto &n : workloads::sliceWorkloadNames())
        names.push_back(n);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSoundness, ::testing::ValuesIn(allNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace oha
