/**
 * @file
 * Parity and effort checks for the incremental Andersen re-solve
 * (runAndersenIncremental): patching a cached base result with a
 * constraint diff must produce results byte-identical to a
 * from-scratch solve of the edited module — points-to sets, indirect
 * call targets and static slices — across CI/CS, sound/predicated,
 * and at 1 and 4 batch threads.  Only workUnits may differ (it
 * reflects the actual, smaller, incremental effort).
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/andersen_cache.h"
#include "analysis/constraint_diff.h"
#include "analysis/race_detector.h"
#include "analysis/slicer.h"
#include "ir/module_diff.h"
#include "profile/profiler.h"
#include "support/thread_pool.h"
#include "workloads/edits.h"
#include "workloads/workloads.h"

namespace oha {
namespace {

using analysis::AndersenOptions;
using analysis::AndersenResult;
using analysis::CellId;

std::vector<CellId>
toVector(const SparseBitSet &set)
{
    std::vector<CellId> cells;
    set.forEach([&](CellId cell) { cells.push_back(cell); });
    return cells;
}

/** Observable fixpoint of one run, in comparable form (workUnits
 *  deliberately absent — see andersen_parity_test.cc). */
struct PtsView
{
    bool completed = false;
    std::size_t numContexts = 0;
    std::vector<std::vector<CellId>> regPts;
    std::vector<std::vector<CellId>> flatPts;
    std::vector<std::vector<CellId>> cellPts;
    std::vector<std::vector<FuncId>> icalls;
    std::vector<std::pair<bool, std::set<InstrId>>> slices;

    bool
    operator==(const PtsView &other) const
    {
        return completed == other.completed &&
               numContexts == other.numContexts &&
               regPts == other.regPts && flatPts == other.flatPts &&
               cellPts == other.cellPts && icalls == other.icalls &&
               slices == other.slices;
    }
};

PtsView
viewOf(const ir::Module &module, const AndersenResult &result,
       const inv::InvariantSet *invariants)
{
    PtsView view;
    view.completed = result.completed;
    view.numContexts = result.contexts.size();
    if (!result.completed)
        return view;
    for (const analysis::ContextInstance &inst : result.contexts) {
        const unsigned numRegs = module.function(inst.func)->numRegs();
        for (ir::Reg reg = 0; reg < numRegs; ++reg)
            view.regPts.push_back(toVector(result.pts(inst.id, reg)));
    }
    for (const auto &func : module.functions())
        for (ir::Reg reg = 0; reg < func->numRegs(); ++reg)
            view.flatPts.push_back(
                toVector(result.ptsAllContexts(func->id(), reg)));
    for (CellId cell = 0; cell < result.memory.numCells(); ++cell)
        view.cellPts.push_back(toVector(result.cellPts(cell)));
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == ir::Opcode::ICall)
            view.icalls.push_back(result.icallTargets(id));

    analysis::SlicerOptions sliceOptions;
    sliceOptions.invariants = invariants;
    const analysis::StaticSlicer slicer(module, result, sliceOptions);
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        if (module.instr(id).op != ir::Opcode::Output)
            continue;
        const analysis::StaticSliceResult slice = slicer.slice(id);
        view.slices.push_back({slice.completed, slice.instructions});
    }
    return view;
}

inv::InvariantSet
profiledInvariants(const ir::Module &module,
                   const std::vector<exec::ExecConfig> &inputs)
{
    prof::ProfilingCampaign campaign(module, {});
    campaign.addRunsUntilConverged(inputs, 4, 2);
    return campaign.invariants();
}

/** One mode's comparison: incremental vs from-scratch vs reference. */
struct ModeOutcome
{
    PtsView incremental, scratch, reference;
    bool usedIncremental = false;
    std::uint64_t incrementalWork = 0, scratchWork = 0;
};

ModeOutcome
runMode(const ir::Module &base, const ir::Module &next,
        const inv::InvariantSet *baseInv,
        const inv::InvariantSet *nextInv, bool contextSensitive)
{
    const ir::ModuleDiff structural = ir::computeModuleDiff(base, next);
    const analysis::ConstraintDiff diff = analysis::lowerToConstraints(
        base, next, structural, baseInv, nextInv);

    AndersenOptions baseOptions;
    baseOptions.contextSensitive = contextSensitive;
    baseOptions.invariants = baseInv;
    const AndersenResult baseResult =
        analysis::runAndersen(base, baseOptions);

    AndersenOptions options;
    options.contextSensitive = contextSensitive;
    options.invariants = nextInv;

    analysis::IncrementalInput input;
    input.baseModule = &base;
    input.base = &baseResult;
    input.diff = &diff;
    input.baseInvariants = baseInv;

    ModeOutcome out;
    const AndersenResult inc = analysis::runAndersenIncremental(
        next, options, input, nullptr, &out.usedIncremental);
    const AndersenResult scratch = analysis::runAndersen(next, options);
    AndersenOptions refOptions = options;
    refOptions.referenceSolver = true;
    const AndersenResult ref = analysis::runAndersen(next, refOptions);

    out.incremental = viewOf(next, inc, nextInv);
    out.scratch = viewOf(next, scratch, nextInv);
    out.reference = viewOf(next, ref, nextInv);
    out.incrementalWork = inc.workUnits;
    out.scratchWork = scratch.workUnits;
    return out;
}

struct WorkloadOutcome
{
    std::vector<ModeOutcome> modes;
};

WorkloadOutcome
runWorkload(const std::string &name, bool race)
{
    const workloads::Workload workload =
        race ? workloads::makeRaceWorkload(name, 1, 3)
             : workloads::makeSliceWorkload(name, 1, 3);
    const ir::Module &base = *workload.module;
    const std::unique_ptr<ir::Module> next = workloads::editFunctions(
        base, workloads::firstFunctionNames(base, 2));
    const inv::InvariantSet baseInv =
        profiledInvariants(base, workload.profilingSet);
    const inv::InvariantSet nextInv =
        profiledInvariants(*next, workload.profilingSet);

    WorkloadOutcome out;
    for (const bool cs : {false, true}) {
        out.modes.push_back(runMode(base, *next, nullptr, nullptr, cs));
        out.modes.push_back(
            runMode(base, *next, &baseInv, &nextInv, cs));
    }
    return out;
}

const std::vector<std::pair<std::string, bool>> kCases = {
    {"zlib", false},
    {"perl", false},
    {"lusearch", true},
    {"moldyn", true},
};

TEST(IncrementalAndersen, PatchedSolveMatchesFromScratch)
{
    const auto outcomes = support::runBatch(
        kCases.size(),
        [&](std::size_t i) {
            return runWorkload(kCases[i].first, kCases[i].second);
        },
        1);

    std::size_t incrementalRuns = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        for (std::size_t m = 0; m < outcomes[i].modes.size(); ++m) {
            const ModeOutcome &mode = outcomes[i].modes[m];
            EXPECT_EQ(mode.incremental, mode.scratch)
                << kCases[i].first << " mode " << m;
            EXPECT_EQ(mode.incremental, mode.reference)
                << kCases[i].first << " mode " << m
                << " (vs reference solver)";
            incrementalRuns += mode.usedIncremental;
            // CI modes have a stable cross-version node identity and
            // must always take the incremental path.
            if (m < 2)
                EXPECT_TRUE(mode.usedIncremental)
                    << kCases[i].first << " mode " << m;
        }
    }
    EXPECT_GT(incrementalRuns, 0u);

    // Thread-count invariance of the batch wrapper.
    const auto parallel = support::runBatch(
        kCases.size(),
        [&](std::size_t i) {
            return runWorkload(kCases[i].first, kCases[i].second);
        },
        4);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        ASSERT_EQ(outcomes[i].modes.size(), parallel[i].modes.size());
        for (std::size_t m = 0; m < outcomes[i].modes.size(); ++m) {
            EXPECT_TRUE(outcomes[i].modes[m].incremental ==
                        parallel[i].modes[m].incremental)
                << kCases[i].first << " mode " << m
                << " differs between 1 and 4 threads";
        }
    }
}

/** The first @p count function names safe to edit for the detector
 *  test: not the entry function and free of Spawn/Join, so the
 *  incremental detector's global structure guards hold and the
 *  patched path actually engages. */
std::vector<std::string>
editableFunctionNames(const ir::Module &module, std::size_t count)
{
    std::vector<char> hasThreadOp(module.numFunctions(), 0);
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const ir::Instruction &ins = module.instr(id);
        if (ins.op == ir::Opcode::Spawn || ins.op == ir::Opcode::Join)
            hasThreadOp[ins.func] = 1;
    }
    std::vector<std::string> names;
    for (const auto &func : module.functions()) {
        if (func->name() == "main" || hasThreadOp[func->id()])
            continue;
        names.push_back(func->name());
        if (names.size() == count)
            break;
    }
    return names;
}

TEST(IncrementalAndersen, PatchedRaceDetectorMatchesFromScratch)
{
    analysis::resetAndersenCache();
    std::size_t engaged = 0;
    for (const char *name : {"lusearch", "moldyn", "sunflow", "xalan"}) {
        const workloads::Workload workload =
            workloads::makeRaceWorkload(name, 1, 3);
        const std::shared_ptr<const ir::Module> base = workload.module;
        const std::shared_ptr<const ir::Module> next =
            workloads::editFunctions(*base,
                                     editableFunctionNames(*base, 2));
        const inv::InvariantSet baseInv =
            profiledInvariants(*base, workload.profilingSet);
        const inv::InvariantSet nextInv =
            profiledInvariants(*next, workload.profilingSet);
        const ir::ModuleDiff structural =
            ir::computeModuleDiff(*base, *next);

        for (const bool predicated : {false, true}) {
            const inv::InvariantSet *bi = predicated ? &baseInv : nullptr;
            const inv::InvariantSet *ni = predicated ? &nextInv : nullptr;
            const std::string label =
                std::string(name) + (predicated ? "/predicated" : "/sound");
            const analysis::ConstraintDiff diff =
                analysis::lowerToConstraints(*base, *next, structural,
                                             bi, ni);

            analysis::RaceIncrementalInput input;
            input.baseModule = base;
            input.baseRace =
                std::make_shared<analysis::StaticRaceResult>(
                    analysis::runStaticRaceDetector(*base, bi, base));
            if (predicated)
                input.baseInvariants =
                    std::make_shared<inv::InvariantSet>(baseInv);
            input.diff = &diff;

            bool used = false;
            const analysis::StaticRaceResult inc =
                analysis::runStaticRaceDetectorIncremental(next, ni,
                                                           input, &used);
            const analysis::StaticRaceResult fresh =
                analysis::runStaticRaceDetector(*next, ni, next);
            // Sound mode has no invariant slices to drift, so the
            // structure guards must hold and the patched path engage.
            // Predicated mode may legitimately fall back on
            // interleaving-sensitive workloads (lusearch's lock
            // contention, moldyn's flag-based synchronization): the
            // edit shifts the deterministic profiling interleaving,
            // unedited functions' invariant slices drift, and they
            // become diff seeds.  sunflow/xalan re-profile to stable
            // slices and must engage in both modes.  Either way the
            // reported races must equal a from-scratch run's.
            const bool interleavingSensitive =
                std::string(name) == "lusearch" ||
                std::string(name) == "moldyn";
            if (!predicated || !interleavingSensitive)
                EXPECT_TRUE(used) << label;
            engaged += used;
            EXPECT_EQ(inc.racyPairs, fresh.racyPairs) << label;
            EXPECT_EQ(inc.racyAccesses, fresh.racyAccesses) << label;
            EXPECT_EQ(inc.candidatePairs, fresh.candidatePairs) << label;
            EXPECT_EQ(inc.usedLockAliases, fresh.usedLockAliases)
                << label;
            EXPECT_EQ(inc.usedSingletonSites, fresh.usedSingletonSites)
                << label;
            EXPECT_EQ(inc.accessesConsidered, fresh.accessesConsidered)
                << label;
        }
    }
    EXPECT_GE(engaged, 6u);
    analysis::resetAndersenCache();
}

TEST(IncrementalAndersen, NoOpReprintIsNearlyFree)
{
    const workloads::Workload workload =
        workloads::makeSliceWorkload("perl", 1, 1);
    const ir::Module &base = *workload.module;
    const std::unique_ptr<ir::Module> next =
        workloads::reprintModule(base);

    const ir::ModuleDiff structural = ir::computeModuleDiff(base, *next);
    EXPECT_TRUE(structural.empty());

    const analysis::ConstraintDiff diff = analysis::lowerToConstraints(
        base, *next, structural, nullptr, nullptr);
    EXPECT_TRUE(diff.usable);
    EXPECT_TRUE(diff.seedNames().empty());

    AndersenOptions options;
    const AndersenResult baseResult =
        analysis::runAndersen(base, options);

    analysis::IncrementalInput input;
    input.baseModule = &base;
    input.base = &baseResult;
    input.diff = &diff;

    bool usedIncremental = false;
    const AndersenResult inc = analysis::runAndersenIncremental(
        *next, options, input, nullptr, &usedIncremental);
    EXPECT_TRUE(usedIncremental);

    const AndersenResult scratch = analysis::runAndersen(*next, options);
    EXPECT_TRUE(viewOf(*next, inc, nullptr) ==
                viewOf(*next, scratch, nullptr));
    // Nothing is dirty, so the patched solve does (almost) no
    // propagation at all.
    EXPECT_LT(inc.workUnits, scratch.workUnits / 4);
}

} // namespace
} // namespace oha
