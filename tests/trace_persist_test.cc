/**
 * @file
 * Durable trace captures: persist-to-path, open-from-path, and every
 * way the disk can betray us.
 *
 * Pins the tentpole contract for capture files: a persisted capture
 * reloaded in the same or a fresh TraceStore replays field-exact
 * against the live run (multi-segment spilled captures and
 * value-carrying captures included); fault-injected interruption at
 * EVERY persist-path operation index fails gracefully, leaves any
 * previously published capture intact and no temp litter, and
 * surfaces the injected errno; a corrupted or truncated capture file
 * is rejected at load (or, for flips confined to unchecksummed
 * padding, replays identically) — never a crash, never silently
 * corrupt events.  Also covers satellite 1: mid-capture ENOSPC on the
 * spill file degrades to RAM segments with the fallback counted and
 * the errno recorded, and the capture still replays exactly.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "dyn/fasttrack.h"
#include "dyn/fault_injector.h"
#include "dyn/plans.h"
#include "exec/trace.h"
#include "support/durable_file.h"
#include "workloads/workloads.h"

namespace oha {
namespace {

constexpr std::size_t kTinySegment = 2048;

/** Everything observable from one FastTrack replay of a capture. */
struct ReplaySnapshot
{
    int status = 0;
    std::string abortReason;
    std::vector<std::pair<InstrId, std::int64_t>> outputs;
    std::uint64_t steps = 0;
    std::uint32_t numThreads = 0;
    std::set<std::pair<InstrId, InstrId>> races;
};

ReplaySnapshot
replaySnapshot(const ir::Module &module, const exec::RecordedTrace &trace)
{
    dyn::FastTrack tool;
    const auto plan = dyn::fullFastTrackPlan(module);
    exec::TraceReplayer replayer(module, trace);
    replayer.attach(&tool, &plan);
    const exec::RunResult result = replayer.run();

    ReplaySnapshot snap;
    snap.status = static_cast<int>(result.status);
    snap.abortReason = result.abortReason;
    snap.outputs = result.outputs;
    snap.steps = result.steps;
    snap.numThreads = result.numThreads;
    snap.races = tool.racePairs();
    return snap;
}

void
expectEqual(const ReplaySnapshot &a, const ReplaySnapshot &b,
            const std::string &label)
{
    EXPECT_EQ(a.status, b.status) << label;
    EXPECT_EQ(a.abortReason, b.abortReason) << label;
    EXPECT_EQ(a.outputs, b.outputs) << label;
    EXPECT_EQ(a.steps, b.steps) << label;
    EXPECT_EQ(a.numThreads, b.numThreads) << label;
    EXPECT_EQ(a.races, b.races) << label;
}

class TracePersistTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = "trace_persist_" + std::to_string(::getpid());
        ::mkdir(dir_.c_str(), 0755);
        support::disarmIoFault();
    }

    void
    TearDown() override
    {
        support::disarmIoFault();
        if (DIR *d = ::opendir(dir_.c_str())) {
            while (const dirent *entry = ::readdir(d)) {
                const std::string name = entry->d_name;
                if (name != "." && name != "..")
                    ::unlink((dir_ + "/" + name).c_str());
            }
            ::closedir(d);
        }
        ::rmdir(dir_.c_str());
    }

    std::string
    path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

    bool
    hasTempLitter() const
    {
        bool litter = false;
        if (DIR *d = ::opendir(dir_.c_str())) {
            while (const dirent *entry = ::readdir(d)) {
                if (std::string(entry->d_name).find(".tmp.") !=
                    std::string::npos)
                    litter = true;
            }
            ::closedir(d);
        }
        return litter;
    }

    std::string dir_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFileRaw(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
}

/** A multi-segment spilled capture of a real workload run. */
exec::RecordedTrace
recordSpilled(const workloads::Workload &workload, bool captureValues)
{
    exec::TraceStoreOptions options;
    options.segmentBytes = kTinySegment;
    options.captureValues = captureValues;
    return exec::recordRun(*workload.module, workload.testingSet.front(),
                          options);
}

TEST_F(TracePersistTest, PersistReloadReplaysExactly)
{
    for (const bool captureValues : {false, true}) {
        const auto workload =
            workloads::makeRaceWorkload("raytracer", 1, 1);
        const exec::RecordedTrace trace =
            recordSpilled(workload, captureValues);
        ASSERT_GT(trace.events.numSegments(), 1u)
            << "capture too small to exercise the segment table";
        const ReplaySnapshot live =
            replaySnapshot(*workload.module, trace);

        const std::string file =
            path(captureValues ? "values.capture" : "plain.capture");
        std::string error;
        ASSERT_TRUE(exec::persistTrace(trace, file, &error)) << error;
        EXPECT_FALSE(hasTempLitter());

        const auto loaded = exec::loadTrace(file, &error);
        ASSERT_TRUE(loaded) << error;
        EXPECT_EQ(loaded->events.numSegments(),
                  trace.events.numSegments());
        EXPECT_EQ(loaded->events.sizeBytes(), trace.events.sizeBytes());
        EXPECT_EQ(loaded->result.steps, trace.result.steps);
        // Loaded segments replay through mmap windows of the capture
        // file itself; resident bytes stay near zero.
        EXPECT_TRUE(loaded->events.spilled());

        const ReplaySnapshot replayed =
            replaySnapshot(*workload.module, *loaded);
        expectEqual(live, replayed,
                    captureValues ? "values" : "plain");
    }
}

TEST_F(TracePersistTest, RamOnlyCaptureRoundTrips)
{
    // No segment threshold: single in-RAM segment, no sidecars on
    // disk — the other shape of the block layout.
    const auto workload = workloads::makeRaceWorkload("raytracer", 1, 1);
    const exec::RecordedTrace trace =
        exec::recordRun(*workload.module, workload.testingSet.front());
    ASSERT_FALSE(trace.events.spilled());
    const ReplaySnapshot live = replaySnapshot(*workload.module, trace);

    const std::string file = path("ram.capture");
    ASSERT_TRUE(exec::persistTrace(trace, file));
    const auto loaded = exec::loadTrace(file);
    ASSERT_TRUE(loaded);
    expectEqual(live, replaySnapshot(*workload.module, *loaded),
                "ram-only");
}

TEST_F(TracePersistTest, SerializedBlobRoundTripsWithRespill)
{
    const auto workload = workloads::makeRaceWorkload("raytracer", 1, 1);
    const exec::RecordedTrace trace = recordSpilled(workload, false);
    ASSERT_TRUE(trace.events.spilled());
    const ReplaySnapshot live = replaySnapshot(*workload.module, trace);

    support::ByteWriter out;
    ASSERT_TRUE(exec::serializeRecordedTrace(trace, out));
    const std::string blob = out.take();
    support::ByteReader in(blob);
    const auto restored = exec::deserializeRecordedTrace(in);
    ASSERT_TRUE(restored);
    EXPECT_TRUE(in.ok());
    EXPECT_EQ(in.remaining(), 0u);

    // Originally-spilled segments go back to an (unlinked) spill file.
    EXPECT_TRUE(restored->events.spilled());
    EXPECT_GT(restored->events.spillStats().spilledSegments, 0u);
    expectEqual(live, replaySnapshot(*workload.module, *restored),
                "blob round trip");
}

TEST_F(TracePersistTest, PersistFaultSweepFailsGracefully)
{
    const auto workload = workloads::makeRaceWorkload("raytracer", 1, 1);
    const exec::RecordedTrace trace = recordSpilled(workload, false);
    const ReplaySnapshot live = replaySnapshot(*workload.module, trace);
    const std::string file = path("swept.capture");

    // Publish generation one, then count a healthy overwrite.
    ASSERT_TRUE(exec::persistTrace(trace, file));
    const std::string previous = readFile(file);
    const std::uint64_t ops = dyn::countIoOps(
        [&] { ASSERT_TRUE(exec::persistTrace(trace, file)); });
    ASSERT_GT(ops, 0u);
    const std::string committed = readFile(file);
    writeFileRaw(file, previous);

    for (const auto &point :
         dyn::pickIoFaultPoints(ops, 24, /*seed=*/11, support::kIoAllOps)) {
        bool ok = true;
        std::string error;
        {
            dyn::ScopedIoFault fault(point);
            ok = exec::persistTrace(trace, file, &error);
        }
        EXPECT_FALSE(ok) << point.describe();
        EXPECT_FALSE(error.empty()) << point.describe();
        EXPECT_FALSE(hasTempLitter()) << point.describe();

        // The published path still holds a complete, loadable capture
        // (old or — after a post-rename dirsync fault — new).
        const std::string now = readFile(file);
        EXPECT_TRUE(now == previous || now == committed)
            << "torn capture, " << point.describe();
        const auto loaded = exec::loadTrace(file);
        ASSERT_TRUE(loaded) << point.describe();
        expectEqual(live, replaySnapshot(*workload.module, *loaded),
                    point.describe());
        writeFileRaw(file, previous);
    }
}

TEST_F(TracePersistTest, CorruptionSweepRejectsOrReplaysIdentically)
{
    // A small single-segment capture keeps the byte-exhaustive sweep
    // cheap while still covering header, meta, payload and sidecar
    // offsets.
    const auto workload = workloads::makeRaceWorkload("raytracer", 1, 1);
    const exec::RecordedTrace trace =
        exec::recordRun(*workload.module, workload.testingSet.front());
    const ReplaySnapshot live = replaySnapshot(*workload.module, trace);
    const std::string file = path("fuzzed.capture");
    ASSERT_TRUE(exec::persistTrace(trace, file));
    const std::string bytes = readFile(file);

    // Every truncation length rejects.
    for (std::size_t len = 0; len < bytes.size();
         len += std::max<std::size_t>(1, bytes.size() / 256)) {
        writeFileRaw(file, bytes.substr(0, len));
        EXPECT_FALSE(exec::loadTrace(file)) << "truncated to " << len;
    }

    // Every flipped byte either rejects or replays identically (the
    // accepted flips can only hit unchecksummed alignment padding).
    std::size_t accepted = 0;
    const std::size_t stride =
        std::max<std::size_t>(1, bytes.size() / 2048);
    for (std::size_t at = 0; at < bytes.size(); at += stride) {
        std::string mutated = bytes;
        mutated[at] = static_cast<char>(mutated[at] ^ 0x01);
        writeFileRaw(file, mutated);
        const auto loaded = exec::loadTrace(file);
        if (!loaded)
            continue;
        ++accepted;
        expectEqual(live, replaySnapshot(*workload.module, *loaded),
                    "flip at " + std::to_string(at));
    }
    EXPECT_LT(accepted, (bytes.size() / stride) / 4);
}

TEST_F(TracePersistTest, MidCaptureSpillFailurePreservesAndCounts)
{
    const auto workload = workloads::makeRaceWorkload("raytracer", 1, 1);
    const exec::RecordedTrace healthy = recordSpilled(workload, false);
    ASSERT_GT(healthy.events.spillStats().spilledSegments, 1u)
        << "workload too small: need several spilled segments";
    const ReplaySnapshot live = replaySnapshot(*workload.module, healthy);

    // Let a couple of segment spills succeed, then hit ENOSPC on
    // every later write.  kIoWrite keeps the fault away from the
    // capture-unrelated open of the spill file itself.
    const std::uint64_t writesPerSegment =
        dyn::countIoOps([&] { recordSpilled(workload, false); }) /
        healthy.events.spillStats().spilledSegments;
    dyn::IoFaultPoint point;
    point.failAfter = writesPerSegment + 1;
    point.opMask = support::kIoWrite;
    point.error = ENOSPC;

    exec::RecordedTrace faulted = [&] {
        dyn::ScopedIoFault fault(point);
        return recordSpilled(workload, false);
    }();

    const exec::TraceStore::SpillStats &stats =
        faulted.events.spillStats();
    EXPECT_GT(stats.spilledSegments, 0u)
        << "fault fired before any segment spilled";
    EXPECT_GT(stats.ramFallbackSegments, 0u)
        << "fault never fired mid-capture";
    EXPECT_EQ(stats.lastErrno, ENOSPC);
    EXPECT_EQ(stats.spilledSegments + stats.ramFallbackSegments +
                  1 /* trailing open segment stays in RAM */,
              healthy.events.numSegments());

    // Degraded storage, identical events.
    expectEqual(live, replaySnapshot(*workload.module, faulted),
                "ENOSPC mid-capture");
}

TEST_F(TracePersistTest, LoadFromFreshProcessStateMatches)
{
    // Simulate the cross-process use: persist, then load with no
    // shared in-memory state (the loaded store owns only the capture
    // file fd) and replay twice concurrently-shaped (two sequential
    // replays over one load share the mmap windows).
    const auto workload = workloads::makeRaceWorkload("raytracer", 1, 1);
    const exec::RecordedTrace trace = recordSpilled(workload, false);
    const ReplaySnapshot live = replaySnapshot(*workload.module, trace);
    const std::string file = path("fresh.capture");
    ASSERT_TRUE(exec::persistTrace(trace, file));

    const auto loaded = exec::loadTrace(file);
    ASSERT_TRUE(loaded);
    expectEqual(live, replaySnapshot(*workload.module, *loaded),
                "first replay");
    expectEqual(live, replaySnapshot(*workload.module, *loaded),
                "second replay over the same load");
}

} // namespace
} // namespace oha
