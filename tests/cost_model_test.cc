/**
 * @file
 * Tests for the deterministic cost model: pricing arithmetic,
 * normalized-runtime semantics, and the additive breakdown used by
 * the Figure 5/6 harnesses.
 */

#include <gtest/gtest.h>

#include "core/cost_model.h"

namespace oha::core {
namespace {

using exec::EventClass;

exec::RunResult
runWith(std::uint64_t steps, std::uint64_t loads, std::uint64_t stores,
        std::uint64_t locks)
{
    exec::RunResult run;
    run.steps = steps;
    run.totalEvents[EventClass::Load] = loads;
    run.totalEvents[EventClass::Store] = stores;
    run.totalEvents[EventClass::Lock] = locks;
    run.totalEvents[EventClass::Unlock] = locks;
    return run;
}

TEST(CostModel, BaselineIsStepsTimesBaseCost)
{
    CostModel model;
    const auto run = runWith(1000, 0, 0, 0);
    exec::EventCounts none;
    const RunCost cost = priceFastTrackRun(model, run, none);
    EXPECT_DOUBLE_EQ(cost.base, 1000.0 * model.baseInstr);
    EXPECT_DOUBLE_EQ(cost.analysis, 0.0);
}

TEST(CostModel, FrameworkChargesAllMemSyncEventsRegardlessOfElision)
{
    CostModel model;
    const auto run = runWith(1000, 100, 50, 10);
    exec::EventCounts none;
    const RunCost cost = priceFastTrackRun(model, run, none);
    EXPECT_DOUBLE_EQ(cost.framework,
                     (100 + 50 + 10 + 10) * model.framework);
}

TEST(CostModel, FastTrackChecksPricedPerDeliveredEvent)
{
    CostModel model;
    const auto run = runWith(1000, 100, 50, 10);
    exec::EventCounts delivered;
    delivered[EventClass::Load] = 60;
    delivered[EventClass::Store] = 20;
    delivered[EventClass::Lock] = 10;
    delivered[EventClass::Unlock] = 10;
    delivered[EventClass::Join] = 2;
    const RunCost cost = priceFastTrackRun(model, run, delivered);
    EXPECT_DOUBLE_EQ(cost.analysis,
                     (60 + 20) * model.ftMemCheck +
                         (10 + 10 + 2) * model.ftSync);
}

TEST(CostModel, GiriPricesEveryDeliveredEvent)
{
    CostModel model;
    const auto run = runWith(2000, 0, 0, 0);
    exec::EventCounts delivered;
    delivered[EventClass::Load] = 100;
    delivered[EventClass::Other] = 300;
    delivered[EventClass::Call] = 40;
    const RunCost cost = priceGiriRun(model, run, delivered);
    EXPECT_DOUBLE_EQ(cost.analysis, 440 * model.giriEvent);
    EXPECT_DOUBLE_EQ(cost.framework, 0.0)
        << "Giri is compile-time instrumented: no framework band";
}

TEST(CostModel, InvariantChecksPricedByClass)
{
    CostModel model;
    const auto run = runWith(1000, 0, 0, 0);
    exec::EventCounts giri;
    exec::EventCounts checker;
    checker[EventClass::BlockEnter] = 4;
    checker[EventClass::Call] = 10;
    checker[EventClass::Ret] = 10;
    checker[EventClass::Lock] = 6;
    checker[EventClass::Spawn] = 1;
    const RunCost cost =
        priceGiriRun(model, run, giri, &checker, /*slow=*/3);
    const double expected =
        4 * model.lucCheck +
        10 * std::max(model.calleeCheck, model.contextCheckFast) +
        10 * model.contextCheckFast + 6 * model.lockCheck +
        1 * model.spawnCheck + 3 * model.contextCheckSlow;
    EXPECT_DOUBLE_EQ(cost.invariants, expected);
}

TEST(CostModel, NormalizedIsTotalOverBase)
{
    RunCost cost;
    cost.base = 100;
    cost.framework = 50;
    cost.analysis = 150;
    cost.invariants = 10;
    cost.rollback = 90;
    EXPECT_DOUBLE_EQ(cost.total(), 400.0);
    EXPECT_DOUBLE_EQ(cost.normalized(), 4.0);
}

TEST(CostModel, AddAccumulatesComponentwise)
{
    RunCost a, b;
    a.base = 1;
    a.analysis = 2;
    b.base = 10;
    b.rollback = 5;
    a.add(b);
    EXPECT_DOUBLE_EQ(a.base, 11.0);
    EXPECT_DOUBLE_EQ(a.analysis, 2.0);
    EXPECT_DOUBLE_EQ(a.rollback, 5.0);
}

TEST(CostModel, EventCountsTotalAndAdd)
{
    exec::EventCounts counts;
    counts[EventClass::Load] = 3;
    counts[EventClass::Output] = 2;
    EXPECT_EQ(counts.total(), 5u);
    exec::EventCounts more;
    more[EventClass::Load] = 1;
    counts.add(more);
    EXPECT_EQ(counts[EventClass::Load], 4u);
}

} // namespace
} // namespace oha::core
