/**
 * @file
 * Unit tests for the flat shadow-state containers: the open-addressed
 * FlatMap (including its backward-shift, tombstone-free deletion) and
 * the bump Arena behind the slicer's frame register tables.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <random>
#include <vector>

#include "support/arena.h"
#include "support/flat_map.h"

namespace oha::support {
namespace {

TEST(FlatMap, InsertFindAndDefaultConstruct)
{
    FlatMap<int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), nullptr);

    map[42] = 7;
    EXPECT_EQ(map.size(), 1u);
    ASSERT_NE(map.find(42), nullptr);
    EXPECT_EQ(*map.find(42), 7);

    // operator[] on a fresh key default-constructs the value.
    EXPECT_EQ(map[1000], 0);
    EXPECT_EQ(map.size(), 2u);

    // Key 0 is a valid key (only ~0 is reserved).
    map[0] = -1;
    ASSERT_NE(map.find(0), nullptr);
    EXPECT_EQ(*map.find(0), -1);
}

TEST(FlatMap, GrowthPreservesAllEntries)
{
    FlatMap<std::uint64_t> map;
    constexpr std::uint64_t kN = 10000;
    // Packed sequential keys, like (obj << 32) | off — the worst case
    // for a weak hash feeding a power-of-two mask.
    for (std::uint64_t i = 0; i < kN; ++i)
        map[i << 32 | (i & 7)] = i * 3;
    EXPECT_EQ(map.size(), kN);
    for (std::uint64_t i = 0; i < kN; ++i) {
        auto *val = map.find(i << 32 | (i & 7));
        ASSERT_NE(val, nullptr) << "lost key " << i;
        EXPECT_EQ(*val, i * 3);
    }
    EXPECT_EQ(map.find(kN << 32), nullptr);
}

TEST(FlatMap, EraseBackwardShiftKeepsProbeChainsIntact)
{
    // Deterministic churn against std::map as the oracle.  Backward-
    // shift deletion must relocate displaced successors, so lookups
    // stay correct through arbitrary insert/erase interleavings.
    FlatMap<int> map;
    std::map<std::uint64_t, int> oracle;
    std::mt19937_64 rng(7);

    for (int round = 0; round < 20000; ++round) {
        const std::uint64_t key = rng() % 512; // force collisions
        if (rng() % 3 == 0) {
            EXPECT_EQ(map.erase(key), oracle.erase(key) > 0);
        } else {
            const int value = static_cast<int>(rng() % 1000);
            map[key] = value;
            oracle[key] = value;
        }
    }

    EXPECT_EQ(map.size(), oracle.size());
    for (const auto &[key, value] : oracle) {
        auto *got = map.find(key);
        ASSERT_NE(got, nullptr) << "lost key " << key;
        EXPECT_EQ(*got, value);
    }
    for (std::uint64_t key = 0; key < 512; ++key) {
        if (!oracle.count(key))
            EXPECT_EQ(map.find(key), nullptr) << "ghost key " << key;
    }
}

TEST(FlatMap, EraseOnEmptyAndMissing)
{
    FlatMap<int> map;
    EXPECT_FALSE(map.erase(5));
    map[5] = 1;
    EXPECT_FALSE(map.erase(6));
    EXPECT_TRUE(map.erase(5));
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(5), nullptr);
}

TEST(FlatMap, ForEachVisitsEverything)
{
    FlatMap<int> map;
    for (int i = 0; i < 100; ++i)
        map[static_cast<std::uint64_t>(i) * 977] = i;
    std::map<std::uint64_t, int> seen;
    map.forEach([&](std::uint64_t key, int value) { seen[key] = value; });
    EXPECT_EQ(seen.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(seen[static_cast<std::uint64_t>(i) * 977], i);
}

TEST(FlatMap, ClearAndReserve)
{
    FlatMap<int> map;
    map.reserve(1000);
    for (int i = 0; i < 1000; ++i)
        map[static_cast<std::uint64_t>(i)] = i;
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(1), nullptr);
    map[1] = 2;
    EXPECT_EQ(map.size(), 1u);
}

TEST(Arena, AllocationsAreDisjointAndAligned)
{
    Arena arena;
    std::vector<std::uint32_t *> arrays;
    for (int i = 0; i < 100; ++i) {
        auto *arr = arena.allocateArray<std::uint32_t>(64);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arr) %
                      alignof(std::uint32_t),
                  0u);
        std::memset(arr, i, 64 * sizeof(std::uint32_t));
        arrays.push_back(arr);
    }
    // Writing each array must not have clobbered any other.
    for (int i = 0; i < 100; ++i) {
        const auto byte = static_cast<unsigned char>(i);
        const auto *raw =
            reinterpret_cast<const unsigned char *>(arrays[i]);
        for (std::size_t b = 0; b < 64 * sizeof(std::uint32_t); ++b)
            ASSERT_EQ(raw[b], byte);
    }
    EXPECT_GE(arena.bytesUsed(), 100 * 64 * sizeof(std::uint32_t));
    EXPECT_GE(arena.bytesReserved(), arena.bytesUsed());
}

TEST(Arena, LargeAllocationGetsOwnChunk)
{
    Arena arena;
    // Far bigger than the default chunk: must still succeed.
    auto *big = arena.allocateArray<std::uint64_t>(1 << 18);
    big[0] = 1;
    big[(1 << 18) - 1] = 2;
    EXPECT_EQ(big[0], 1u);
    EXPECT_EQ(big[(1 << 18) - 1], 2u);
}

TEST(Arena, ResetRecyclesMemory)
{
    Arena arena;
    (void)arena.allocateArray<std::uint8_t>(1000);
    const std::size_t reserved = arena.bytesReserved();
    arena.reset();
    EXPECT_EQ(arena.bytesUsed(), 0u);
    // Reset keeps the first chunk, so a small allocation after reset
    // must not grow the reservation.
    (void)arena.allocateArray<std::uint8_t>(1000);
    EXPECT_EQ(arena.bytesReserved(), reserved);
}

} // namespace
} // namespace oha::support
