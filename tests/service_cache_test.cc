/**
 * @file
 * Shared cross-request cache: LRU eviction order, byte-budget
 * accounting, collision verification (the memo-cache correctness
 * fix), generation-stamped inserts across resets, and a concurrent
 * torture test (run under TSan in CI).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/andersen_cache.h"
#include "exec/trace_cache.h"
#include "ir/builder.h"
#include "service/lru.h"
#include "service/shared_cache.h"

namespace oha {
namespace {

/** A tiny finalized module; @p variant changes the printed form (and
 *  so the fingerprint) without changing the shape. */
std::shared_ptr<const ir::Module>
tinyModule(int variant)
{
    auto module = std::make_shared<ir::Module>();
    ir::IRBuilder b(*module);
    b.createFunction("main", 0);
    for (int i = 0; i <= variant; ++i) {
        const auto ptr = b.alloc(1);
        b.store(ptr, b.constInt(100 + i));
        b.output(b.load(ptr));
    }
    b.ret();
    module->finalize();
    return module;
}

/** Restores a clean cache on scope exit (tests share the process-wide
 *  cache with every other test in the binary). */
struct CacheGuard
{
    std::size_t savedBudget = analysis::staticCacheByteBudget();
    CacheGuard() { analysis::resetAndersenCache(); }
    ~CacheGuard()
    {
        service::testing::forcePrimaryFingerprintCollisions(false);
        analysis::setStaticCacheByteBudget(savedBudget);
        analysis::resetAndersenCache();
    }
};

// ---------------------------------------------------------------------
// LruList unit tests
// ---------------------------------------------------------------------

TEST(LruList, EvictsLeastRecentlyUsedFirst)
{
    service::LruList lru;
    std::vector<int> evicted;
    std::vector<service::LruList::Handle> handles;
    for (int i = 0; i < 4; ++i)
        handles.push_back(lru.insert(100, [&evicted, i] {
            evicted.push_back(i);
        }));
    EXPECT_EQ(lru.size(), 4u);
    EXPECT_EQ(lru.bytes(), 400u);

    // Capacity for two entries: the two oldest (0 then 1) go first.
    EXPECT_EQ(lru.evictToFit(200), 2u);
    EXPECT_EQ(evicted, (std::vector<int>{0, 1}));
    EXPECT_EQ(lru.bytes(), 200u);
    EXPECT_EQ(lru.size(), 2u);
}

TEST(LruList, TouchMovesAnEntryToTheFront)
{
    service::LruList lru;
    std::vector<int> evicted;
    std::vector<service::LruList::Handle> handles;
    for (int i = 0; i < 3; ++i)
        handles.push_back(lru.insert(100, [&evicted, i] {
            evicted.push_back(i);
        }));
    // 0 becomes most-recent; the eviction order is then 1, 2.
    lru.touch(handles[0]);
    EXPECT_EQ(lru.evictToFit(100), 2u);
    EXPECT_EQ(evicted, (std::vector<int>{1, 2}));
}

TEST(LruList, RemoveDetachesWithoutRunningTheEraseCallback)
{
    service::LruList lru;
    std::vector<int> evicted;
    const auto h0 = lru.insert(64, [&evicted] { evicted.push_back(0); });
    lru.insert(64, [&evicted] { evicted.push_back(1); });
    lru.remove(h0);
    EXPECT_EQ(lru.bytes(), 64u);
    EXPECT_EQ(lru.evictToFit(0), 1u);
    EXPECT_EQ(evicted, (std::vector<int>{1}));
}

TEST(LruList, OversizedEntriesAreEvictedToo)
{
    service::LruList lru;
    bool evicted = false;
    lru.insert(1000, [&evicted] { evicted = true; });
    EXPECT_EQ(lru.evictToFit(500), 1u);
    EXPECT_TRUE(evicted);
    EXPECT_EQ(lru.bytes(), 0u);
    EXPECT_EQ(lru.size(), 0u);
}

// ---------------------------------------------------------------------
// Shared-cache behavior through the memo layers
// ---------------------------------------------------------------------

/** Fabricate a slice-set result whose byte estimate is predictable;
 *  @p tag makes results distinguishable per key. */
analysis::SliceSetResult
fabricatedSlices(std::uint64_t tag)
{
    analysis::SliceSetResult out;
    std::set<InstrId> slice;
    for (InstrId i = 0; i < 32; ++i)
        slice.insert(i);
    out.slices.assign(4, slice);
    out.complete = true;
    out.workUnits = tag;
    return out;
}

TEST(SharedCache, MemoHitsServeTheStoredResult)
{
    CacheGuard guard;
    const auto module = tinyModule(0);
    int calls = 0;
    auto compute = [&calls] {
        ++calls;
        return fabricatedSlices(7);
    };
    const std::vector<InstrId> endpoints = {1, 2};
    const auto first =
        analysis::sliceSetMemo(module, nullptr, 1, endpoints, compute);
    const auto second =
        analysis::sliceSetMemo(module, nullptr, 1, endpoints, compute);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(first.get(), second.get());
    const auto stats = analysis::andersenCacheStats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_GT(stats.bytesCached, 0u);
}

TEST(SharedCache, ByteBudgetEvictsLeastRecentlyUsedEntries)
{
    CacheGuard guard;
    const auto module = tinyModule(0);
    const std::vector<InstrId> endpoints = {1};
    int calls = 0;
    auto memo = [&](std::uint64_t key) {
        return analysis::sliceSetMemo(module, nullptr, key, endpoints,
                                      [&calls, key] {
                                          ++calls;
                                          return fabricatedSlices(key);
                                      });
    };

    // Calibrate: one entry's charge, as the cache accounts it.
    memo(0);
    const std::size_t perEntry =
        analysis::andersenCacheStats().bytesCached;
    ASSERT_GT(perEntry, 0u);
    analysis::resetAndersenCache();

    // Room for three entries.
    analysis::setStaticCacheByteBudget(3 * perEntry + perEntry / 2);
    calls = 0;
    memo(1);
    memo(2);
    memo(3);
    EXPECT_EQ(analysis::andersenCacheStats().entries, 3u);
    EXPECT_EQ(analysis::andersenCacheStats().evictions, 0u);

    // Touch 1 so 2 is now the coldest, then overflow with 4.
    memo(1);
    memo(4);
    const auto stats = analysis::andersenCacheStats();
    EXPECT_EQ(stats.entries, 3u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_LE(stats.bytesCached, analysis::staticCacheByteBudget());
    EXPECT_EQ(calls, 4);

    // 2 was evicted (recomputes); 1 survived its touch (hit).
    EXPECT_EQ(memo(2)->workUnits, 2u);
    EXPECT_EQ(calls, 5);
    const std::uint64_t hitsBefore = analysis::andersenCacheStats().hits;
    memo(1);
    EXPECT_EQ(analysis::andersenCacheStats().hits, hitsBefore + 1);
    EXPECT_EQ(calls, 5);
}

TEST(SharedCache, ShrinkingTheBudgetEvictsImmediately)
{
    CacheGuard guard;
    const auto module = tinyModule(0);
    const std::vector<InstrId> endpoints = {1};
    for (std::uint64_t key = 0; key < 4; ++key)
        analysis::sliceSetMemo(module, nullptr, key, endpoints, [key] {
            return fabricatedSlices(key);
        });
    ASSERT_EQ(analysis::andersenCacheStats().entries, 4u);
    analysis::setStaticCacheByteBudget(1);
    const auto stats = analysis::andersenCacheStats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.bytesCached, 0u);
    EXPECT_EQ(stats.evictions, 4u);
}

// ---------------------------------------------------------------------
// Satellite bugfix: collision verification
// ---------------------------------------------------------------------

TEST(SharedCache, PrimaryFingerprintCollisionIsVerifiedNotServed)
{
    CacheGuard guard;
    // Every primary fingerprint now collides; only the independent
    // secondary fingerprints can tell entries apart.
    service::testing::forcePrimaryFingerprintCollisions(true);

    const auto moduleA = tinyModule(1); // 2 outputs
    const auto moduleB = tinyModule(5); // 6 outputs

    const auto a = analysis::runAndersenMemo(moduleA, {});
    // Same primary key as A's entry: without verification this would
    // silently return A's result for B.
    const auto b = analysis::runAndersenMemo(moduleB, {});
    EXPECT_EQ(analysis::andersenCacheStats().verifiedMisses, 1u);
    EXPECT_NE(a.get(), b.get());
    // The results genuinely belong to their modules (different
    // module sizes => different solve footprints).
    EXPECT_NE(a->workUnits, b->workUnits);

    // B's insert replaced the colliding entry, so A collides again —
    // verified again, never silently wrong.
    const auto a2 = analysis::runAndersenMemo(moduleA, {});
    EXPECT_EQ(analysis::andersenCacheStats().verifiedMisses, 2u);
    EXPECT_EQ(a2->workUnits, a->workUnits);

    // Trace captures verify through the same machinery.
    exec::ExecConfig input;
    const auto traceA = exec::recordRunMemo(moduleA, input);
    const auto traceB = exec::recordRunMemo(moduleB, input);
    EXPECT_NE(traceA->result.steps, traceB->result.steps);
    EXPECT_GE(analysis::andersenCacheStats().verifiedMisses, 3u);
}

// ---------------------------------------------------------------------
// Satellite bugfix: generation-stamped inserts across resets
// ---------------------------------------------------------------------

TEST(SharedCache, InsertFromBeforeAResetIsDropped)
{
    CacheGuard guard;
    const auto module = tinyModule(0);
    const std::vector<InstrId> endpoints = {1};
    int calls = 0;

    // The solve starts, then a reset lands before it finishes (here:
    // from inside compute, which runs outside the cache lock — the
    // same window a concurrent resetter would hit).
    const auto first = analysis::sliceSetMemo(
        module, nullptr, 9, endpoints, [&calls] {
            ++calls;
            analysis::resetAndersenCache();
            return fabricatedSlices(9);
        });
    EXPECT_EQ(first->workUnits, 9u); // caller still gets the result
    const auto afterDrop = analysis::andersenCacheStats();
    EXPECT_EQ(afterDrop.staleDrops, 1u);
    EXPECT_EQ(afterDrop.entries, 0u) << "stale insert must not cache";

    // The next probe misses (nothing was cached) and inserts cleanly.
    const auto second = analysis::sliceSetMemo(
        module, nullptr, 9, endpoints, [&calls] {
            ++calls;
            return fabricatedSlices(9);
        });
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(analysis::andersenCacheStats().entries, 1u);

    // And from here on it hits.
    analysis::sliceSetMemo(module, nullptr, 9, endpoints, [&calls] {
        ++calls;
        return fabricatedSlices(9);
    });
    EXPECT_EQ(calls, 2);
    (void)second;
}

// ---------------------------------------------------------------------
// Concurrent torture (meaningful under TSan)
// ---------------------------------------------------------------------

TEST(SharedCacheTorture, ConcurrentMemoResetAndBudgetChanges)
{
    CacheGuard guard;
    constexpr int kThreads = 8;
    constexpr int kIters = 60;

    std::vector<std::shared_ptr<const ir::Module>> modules;
    for (int v = 0; v < 3; ++v)
        modules.push_back(tinyModule(v));
    // Reference solves, for checking that concurrent cache traffic
    // never serves a wrong result.
    std::vector<std::uint64_t> expectedWork;
    for (const auto &module : modules)
        expectedWork.push_back(analysis::runAndersen(*module, {}).workUnits);
    std::vector<std::uint64_t> expectedSteps;
    for (const auto &module : modules)
        expectedSteps.push_back(
            exec::recordRun(*module, exec::ExecConfig{}).result.steps);

    std::atomic<int> wrongResults{0};
    auto worker = [&](int tid) {
        for (int it = 0; it < kIters; ++it) {
            const int m = (tid + it) % int(modules.size());
            switch ((tid * 7 + it) % 5) {
              case 0: {
                const auto result =
                    analysis::runAndersenMemo(modules[m], {});
                if (result->workUnits != expectedWork[m])
                    ++wrongResults;
                break;
              }
              case 1: {
                const std::uint64_t key = std::uint64_t((tid + it) % 4);
                const auto result = analysis::sliceSetMemo(
                    modules[m], nullptr, key, {InstrId(1)},
                    [key] { return fabricatedSlices(key); });
                if (result->workUnits != key)
                    ++wrongResults;
                break;
              }
              case 2: {
                const auto trace =
                    exec::recordRunMemo(modules[m], exec::ExecConfig{});
                if (trace->result.steps != expectedSteps[m])
                    ++wrongResults;
                break;
              }
              case 3:
                if (it % 16 == 3)
                    analysis::resetAndersenCache();
                break;
              default:
                analysis::setStaticCacheByteBudget(
                    it % 2 ? std::size_t{1} << 30 : std::size_t{64} << 10);
                break;
            }
        }
    };

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(worker, t);
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(wrongResults.load(), 0);
    const auto stats = analysis::andersenCacheStats();
    EXPECT_LE(stats.bytesCached,
              std::max(analysis::staticCacheByteBudget(),
                       std::size_t{1} << 30));
}

} // namespace
} // namespace oha
