/**
 * @file
 * Shared cross-request cache: LRU eviction order, byte-budget
 * accounting, collision verification (the memo-cache correctness
 * fix), generation-stamped inserts across resets, and a concurrent
 * torture test (run under TSan in CI).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/andersen_cache.h"
#include "analysis/constraint_diff.h"
#include "exec/trace_cache.h"
#include "ir/builder.h"
#include "service/lru.h"
#include "service/shared_cache.h"
#include "workloads/edits.h"
#include "workloads/workloads.h"

namespace oha {
namespace {

/** A tiny finalized module; @p variant changes the printed form (and
 *  so the fingerprint) without changing the shape. */
std::shared_ptr<const ir::Module>
tinyModule(int variant)
{
    auto module = std::make_shared<ir::Module>();
    ir::IRBuilder b(*module);
    b.createFunction("main", 0);
    for (int i = 0; i <= variant; ++i) {
        const auto ptr = b.alloc(1);
        b.store(ptr, b.constInt(100 + i));
        b.output(b.load(ptr));
    }
    b.ret();
    module->finalize();
    return module;
}

/** Flattened per-register points-to sets — the observable identity of
 *  an Andersen result (workUnits deliberately excluded: the lineage
 *  path legitimately reaches the same fixpoint with less effort). */
std::vector<analysis::CellId>
ptsSignature(const ir::Module &module,
             const analysis::AndersenResult &result)
{
    std::vector<analysis::CellId> sig;
    for (const auto &func : module.functions())
        for (ir::Reg reg = 0; reg < func->numRegs(); ++reg) {
            result.ptsAllContexts(func->id(), reg)
                .forEach([&](analysis::CellId cell) {
                    sig.push_back(cell);
                });
            sig.push_back(analysis::kNoCell);
        }
    return sig;
}

/** Restores a clean cache on scope exit (tests share the process-wide
 *  cache with every other test in the binary). */
struct CacheGuard
{
    std::size_t savedBudget = analysis::staticCacheByteBudget();
    CacheGuard() { analysis::resetAndersenCache(); }
    ~CacheGuard()
    {
        service::testing::forcePrimaryFingerprintCollisions(false);
        analysis::setStaticCacheByteBudget(savedBudget);
        analysis::resetAndersenCache();
    }
};

// ---------------------------------------------------------------------
// LruList unit tests
// ---------------------------------------------------------------------

TEST(LruList, EvictsLeastRecentlyUsedFirst)
{
    service::LruList lru;
    std::vector<int> evicted;
    std::vector<service::LruList::Handle> handles;
    for (int i = 0; i < 4; ++i)
        handles.push_back(lru.insert(100, [&evicted, i] {
            evicted.push_back(i);
        }));
    EXPECT_EQ(lru.size(), 4u);
    EXPECT_EQ(lru.bytes(), 400u);

    // Capacity for two entries: the two oldest (0 then 1) go first.
    EXPECT_EQ(lru.evictToFit(200), 2u);
    EXPECT_EQ(evicted, (std::vector<int>{0, 1}));
    EXPECT_EQ(lru.bytes(), 200u);
    EXPECT_EQ(lru.size(), 2u);
}

TEST(LruList, TouchMovesAnEntryToTheFront)
{
    service::LruList lru;
    std::vector<int> evicted;
    std::vector<service::LruList::Handle> handles;
    for (int i = 0; i < 3; ++i)
        handles.push_back(lru.insert(100, [&evicted, i] {
            evicted.push_back(i);
        }));
    // 0 becomes most-recent; the eviction order is then 1, 2.
    lru.touch(handles[0]);
    EXPECT_EQ(lru.evictToFit(100), 2u);
    EXPECT_EQ(evicted, (std::vector<int>{1, 2}));
}

TEST(LruList, RemoveDetachesWithoutRunningTheEraseCallback)
{
    service::LruList lru;
    std::vector<int> evicted;
    const auto h0 = lru.insert(64, [&evicted] { evicted.push_back(0); });
    lru.insert(64, [&evicted] { evicted.push_back(1); });
    lru.remove(h0);
    EXPECT_EQ(lru.bytes(), 64u);
    EXPECT_EQ(lru.evictToFit(0), 1u);
    EXPECT_EQ(evicted, (std::vector<int>{1}));
}

TEST(LruList, OversizedEntriesAreEvictedToo)
{
    service::LruList lru;
    bool evicted = false;
    lru.insert(1000, [&evicted] { evicted = true; });
    EXPECT_EQ(lru.evictToFit(500), 1u);
    EXPECT_TRUE(evicted);
    EXPECT_EQ(lru.bytes(), 0u);
    EXPECT_EQ(lru.size(), 0u);
}

// ---------------------------------------------------------------------
// Shared-cache behavior through the memo layers
// ---------------------------------------------------------------------

/** Fabricate a slice-set result whose byte estimate is predictable;
 *  @p tag makes results distinguishable per key. */
analysis::SliceSetResult
fabricatedSlices(std::uint64_t tag)
{
    analysis::SliceSetResult out;
    std::set<InstrId> slice;
    for (InstrId i = 0; i < 32; ++i)
        slice.insert(i);
    out.slices.assign(4, slice);
    out.complete = true;
    out.workUnits = tag;
    return out;
}

TEST(SharedCache, MemoHitsServeTheStoredResult)
{
    CacheGuard guard;
    const auto module = tinyModule(0);
    int calls = 0;
    auto compute = [&calls] {
        ++calls;
        return fabricatedSlices(7);
    };
    const std::vector<InstrId> endpoints = {1, 2};
    const auto first =
        analysis::sliceSetMemo(module, nullptr, 1, endpoints, compute);
    const auto second =
        analysis::sliceSetMemo(module, nullptr, 1, endpoints, compute);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(first.get(), second.get());
    const auto stats = analysis::andersenCacheStats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_GT(stats.bytesCached, 0u);
}

TEST(SharedCache, ByteBudgetEvictsLeastRecentlyUsedEntries)
{
    CacheGuard guard;
    const auto module = tinyModule(0);
    const std::vector<InstrId> endpoints = {1};
    int calls = 0;
    auto memo = [&](std::uint64_t key) {
        return analysis::sliceSetMemo(module, nullptr, key, endpoints,
                                      [&calls, key] {
                                          ++calls;
                                          return fabricatedSlices(key);
                                      });
    };

    // Calibrate: one entry's charge, as the cache accounts it.
    memo(0);
    const std::size_t perEntry =
        analysis::andersenCacheStats().bytesCached;
    ASSERT_GT(perEntry, 0u);
    analysis::resetAndersenCache();

    // Room for three entries.
    analysis::setStaticCacheByteBudget(3 * perEntry + perEntry / 2);
    calls = 0;
    memo(1);
    memo(2);
    memo(3);
    EXPECT_EQ(analysis::andersenCacheStats().entries, 3u);
    EXPECT_EQ(analysis::andersenCacheStats().evictions, 0u);

    // Touch 1 so 2 is now the coldest, then overflow with 4.
    memo(1);
    memo(4);
    const auto stats = analysis::andersenCacheStats();
    EXPECT_EQ(stats.entries, 3u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_LE(stats.bytesCached, analysis::staticCacheByteBudget());
    EXPECT_EQ(calls, 4);

    // 2 was evicted (recomputes); 1 survived its touch (hit).
    EXPECT_EQ(memo(2)->workUnits, 2u);
    EXPECT_EQ(calls, 5);
    const std::uint64_t hitsBefore = analysis::andersenCacheStats().hits;
    memo(1);
    EXPECT_EQ(analysis::andersenCacheStats().hits, hitsBefore + 1);
    EXPECT_EQ(calls, 5);
}

TEST(SharedCache, ShrinkingTheBudgetEvictsImmediately)
{
    CacheGuard guard;
    const auto module = tinyModule(0);
    const std::vector<InstrId> endpoints = {1};
    for (std::uint64_t key = 0; key < 4; ++key)
        analysis::sliceSetMemo(module, nullptr, key, endpoints, [key] {
            return fabricatedSlices(key);
        });
    ASSERT_EQ(analysis::andersenCacheStats().entries, 4u);
    analysis::setStaticCacheByteBudget(1);
    const auto stats = analysis::andersenCacheStats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.bytesCached, 0u);
    EXPECT_EQ(stats.evictions, 4u);
}

// ---------------------------------------------------------------------
// Satellite bugfix: collision verification
// ---------------------------------------------------------------------

TEST(SharedCache, PrimaryFingerprintCollisionIsVerifiedNotServed)
{
    CacheGuard guard;
    // Every primary fingerprint now collides; only the independent
    // secondary fingerprints can tell entries apart.
    service::testing::forcePrimaryFingerprintCollisions(true);

    const auto moduleA = tinyModule(1); // 2 outputs
    const auto moduleB = tinyModule(5); // 6 outputs

    const auto a = analysis::runAndersenMemo(moduleA, {});
    // Same primary key as A's entry: without verification this would
    // silently return A's result for B.
    const auto b = analysis::runAndersenMemo(moduleB, {});
    EXPECT_EQ(analysis::andersenCacheStats().verifiedMisses, 1u);
    EXPECT_NE(a.get(), b.get());
    // The results genuinely belong to their modules (different
    // module sizes => different solve footprints).
    EXPECT_NE(a->workUnits, b->workUnits);

    // B's insert replaced the colliding entry, so A collides again —
    // verified again, never silently wrong.
    const auto a2 = analysis::runAndersenMemo(moduleA, {});
    EXPECT_EQ(analysis::andersenCacheStats().verifiedMisses, 2u);
    EXPECT_EQ(a2->workUnits, a->workUnits);

    // Trace captures verify through the same machinery.
    exec::ExecConfig input;
    const auto traceA = exec::recordRunMemo(moduleA, input);
    const auto traceB = exec::recordRunMemo(moduleB, input);
    EXPECT_NE(traceA->result.steps, traceB->result.steps);
    EXPECT_GE(analysis::andersenCacheStats().verifiedMisses, 3u);
}

// ---------------------------------------------------------------------
// Satellite bugfix: generation-stamped inserts across resets
// ---------------------------------------------------------------------

TEST(SharedCache, InsertFromBeforeAResetIsDropped)
{
    CacheGuard guard;
    const auto module = tinyModule(0);
    const std::vector<InstrId> endpoints = {1};
    int calls = 0;

    // The solve starts, then a reset lands before it finishes (here:
    // from inside compute, which runs outside the cache lock — the
    // same window a concurrent resetter would hit).
    const auto first = analysis::sliceSetMemo(
        module, nullptr, 9, endpoints, [&calls] {
            ++calls;
            analysis::resetAndersenCache();
            return fabricatedSlices(9);
        });
    EXPECT_EQ(first->workUnits, 9u); // caller still gets the result
    const auto afterDrop = analysis::andersenCacheStats();
    EXPECT_EQ(afterDrop.staleDrops, 1u);
    EXPECT_EQ(afterDrop.entries, 0u) << "stale insert must not cache";

    // The next probe misses (nothing was cached) and inserts cleanly.
    const auto second = analysis::sliceSetMemo(
        module, nullptr, 9, endpoints, [&calls] {
            ++calls;
            return fabricatedSlices(9);
        });
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(analysis::andersenCacheStats().entries, 1u);

    // And from here on it hits.
    analysis::sliceSetMemo(module, nullptr, 9, endpoints, [&calls] {
        ++calls;
        return fabricatedSlices(9);
    });
    EXPECT_EQ(calls, 2);
    (void)second;
}

// ---------------------------------------------------------------------
// Version lineage
// ---------------------------------------------------------------------

TEST(SharedCacheLineage, MissOnEditedModulePatchesFromAncestor)
{
    CacheGuard guard;
    const auto v1 = tinyModule(0);
    const auto v2 = tinyModule(2);
    analysis::runAndersenMemo(v1, {});
    EXPECT_EQ(analysis::andersenCacheStats().lineageHits, 0u);

    // The edited version misses on its own fingerprint but finds v1
    // in the lineage list and patches its result incrementally.
    const auto patched = analysis::runAndersenMemo(v2, {});
    EXPECT_EQ(analysis::andersenCacheStats().lineageHits, 1u);
    EXPECT_EQ(ptsSignature(*v2, *patched),
              ptsSignature(*v2, analysis::runAndersen(*v2, {})));

    // The patched result is re-cached under the new fingerprint: a
    // repeat request is a plain hit, not another lineage patch.
    const auto again = analysis::runAndersenMemo(v2, {});
    EXPECT_EQ(again.get(), patched.get());
    EXPECT_EQ(analysis::andersenCacheStats().lineageHits, 1u);
}

TEST(SharedCacheLineage, EditedModulePatchesDetectorFromAncestor)
{
    CacheGuard guard;
    const workloads::Workload w = workloads::makeRaceWorkload("sunflow", 1, 3);
    const std::shared_ptr<const ir::Module> base = w.module;

    // Edit one non-entry, Spawn/Join-free function so the detector's
    // global structure guards hold and the patched path engages.
    std::vector<char> hasThreadOp(base->numFunctions(), 0);
    for (InstrId id = 0; id < base->numInstrs(); ++id) {
        const ir::Instruction &ins = base->instr(id);
        if (ins.op == ir::Opcode::Spawn || ins.op == ir::Opcode::Join)
            hasThreadOp[ins.func] = 1;
    }
    std::vector<std::string> names;
    for (const auto &func : base->functions())
        if (names.empty() && func->name() != "main" &&
            !hasThreadOp[func->id()])
            names.push_back(func->name());
    ASSERT_FALSE(names.empty());
    const std::shared_ptr<const ir::Module> next =
        workloads::editFunctions(*base, names);

    analysis::runStaticRaceDetectorMemo(base, nullptr);
    const std::uint64_t before = analysis::andersenCacheStats().lineageHits;

    // The edited module misses on its own fingerprint; both the
    // points-to phase AND the detector's pair matrix are patched from
    // the cached ancestor (one lineage hit each).
    const auto patched = analysis::runStaticRaceDetectorMemo(next, nullptr);
    const std::uint64_t after = analysis::andersenCacheStats().lineageHits;
    EXPECT_GE(after - before, 2u);

    const analysis::StaticRaceResult fresh =
        analysis::runStaticRaceDetector(*next, nullptr);
    EXPECT_EQ(patched->racyPairs, fresh.racyPairs);
    EXPECT_EQ(patched->racyAccesses, fresh.racyAccesses);
    EXPECT_EQ(patched->candidatePairs, fresh.candidatePairs);
    EXPECT_EQ(patched->accessesConsidered, fresh.accessesConsidered);

    // Re-cached under the new fingerprint: a repeat is a plain hit.
    const auto again = analysis::runStaticRaceDetectorMemo(next, nullptr);
    EXPECT_EQ(again.get(), patched.get());
    EXPECT_EQ(analysis::andersenCacheStats().lineageHits, after);
}

TEST(SharedCacheLineage, SliceMemoOffersAncestorToIncrementalCallback)
{
    CacheGuard guard;
    const auto outputsOf = [](const ir::Module &module) {
        std::vector<InstrId> out;
        for (InstrId id = 0; id < module.numInstrs(); ++id)
            if (module.instr(id).op == ir::Opcode::Output)
                out.push_back(id);
        return out;
    };
    const auto v1 = tinyModule(0);
    const auto v2 = tinyModule(1);
    const std::vector<InstrId> eps1 = outputsOf(*v1);
    const std::vector<InstrId> eps2 = outputsOf(*v2);

    // Warm the slice entry for v1 (no callback: cold compute).
    analysis::sliceSetMemo(v1, nullptr, 7, eps1, [&] {
        analysis::SliceSetResult r;
        r.slices.assign(eps1.size(), {});
        r.complete = true;
        r.workUnits = 11;
        return r;
    });

    // The edited version's miss offers the v1 entry — with its stored
    // endpoints and a usable lowered diff — to the callback; its
    // result is cached and counted as a lineage hit.
    int computeCalls = 0, incrementalCalls = 0;
    const auto patched = analysis::sliceSetMemo(
        v2, nullptr, 7, eps2,
        [&] {
            ++computeCalls;
            return analysis::SliceSetResult{};
        },
        [&](const analysis::SliceLineageBase &base)
            -> std::optional<analysis::SliceSetResult> {
            ++incrementalCalls;
            EXPECT_EQ(base.slices->workUnits, 11u);
            EXPECT_EQ(base.slices->endpoints, eps1);
            EXPECT_TRUE(base.diff && base.diff->usable);
            analysis::SliceSetResult r;
            r.slices.assign(eps2.size(), {});
            r.complete = true;
            r.workUnits = 5;
            return r;
        });
    EXPECT_EQ(computeCalls, 0);
    EXPECT_EQ(incrementalCalls, 1);
    EXPECT_EQ(patched->workUnits, 5u);
    EXPECT_EQ(patched->endpoints, eps2);
    EXPECT_EQ(analysis::andersenCacheStats().lineageHits, 1u);

    // A declining callback falls back to the cold compute, uncounted.
    const auto v3 = tinyModule(2);
    const auto fresh = analysis::sliceSetMemo(
        v3, nullptr, 7, outputsOf(*v3),
        [&] {
            ++computeCalls;
            analysis::SliceSetResult r;
            r.complete = true;
            return r;
        },
        [&](const analysis::SliceLineageBase &)
            -> std::optional<analysis::SliceSetResult> {
            ++incrementalCalls;
            return std::nullopt;
        });
    EXPECT_EQ(computeCalls, 1);
    EXPECT_GE(incrementalCalls, 2); // offered v2, then v1
    EXPECT_TRUE(fresh->complete);
    EXPECT_EQ(analysis::andersenCacheStats().lineageHits, 1u);
}

TEST(SharedCacheLineage, ResetDropsLineageEntriesInsteadOfServingThem)
{
    CacheGuard guard;
    const auto v1 = tinyModule(0);
    const auto v2 = tinyModule(1);
    analysis::runAndersenMemo(v1, {});
    analysis::resetAndersenCache();
    // The pre-reset version is gone — not a valid patch base.
    analysis::runAndersenMemo(v2, {});
    EXPECT_EQ(analysis::andersenCacheStats().lineageHits, 0u);
}

TEST(SharedCacheLineage, DepthZeroDisablesPatching)
{
    CacheGuard guard;
    setenv("OHA_LINEAGE_DEPTH", "0", 1);
    const auto v1 = tinyModule(0);
    const auto v2 = tinyModule(1);
    analysis::runAndersenMemo(v1, {});
    analysis::runAndersenMemo(v2, {});
    unsetenv("OHA_LINEAGE_DEPTH");
    EXPECT_EQ(analysis::andersenCacheStats().lineageHits, 0u);
}

/** The stale-generation seam: resets racing in-flight incremental
 *  inserts must never surface a pre-reset base (wrong values) — a
 *  stale lineage entry is dropped, not served.  Meaningful under
 *  TSan; the value check makes it meaningful everywhere. */
TEST(SharedCacheLineage, ConcurrentResetNeverServesAStaleBase)
{
    CacheGuard guard;
    std::vector<std::shared_ptr<const ir::Module>> modules;
    for (int v = 0; v < 3; ++v)
        modules.push_back(tinyModule(v));
    std::vector<std::vector<analysis::CellId>> expectedPts;
    for (const auto &module : modules)
        expectedPts.push_back(
            ptsSignature(*module, analysis::runAndersen(*module, {})));

    std::atomic<int> wrongResults{0};
    std::thread resetter([] {
        for (int i = 0; i < 40; ++i)
            analysis::resetAndersenCache();
    });
    std::vector<std::thread> requesters;
    for (int t = 0; t < 4; ++t) {
        requesters.emplace_back([&, t] {
            for (int it = 0; it < 60; ++it) {
                const int m = (t + it) % int(modules.size());
                const auto result =
                    analysis::runAndersenMemo(modules[m], {});
                if (ptsSignature(*modules[m], *result) != expectedPts[m])
                    ++wrongResults;
            }
        });
    }
    resetter.join();
    for (std::thread &thread : requesters)
        thread.join();
    EXPECT_EQ(wrongResults.load(), 0);
}

// ---------------------------------------------------------------------
// Concurrent torture (meaningful under TSan)
// ---------------------------------------------------------------------

TEST(SharedCacheTorture, ConcurrentMemoResetAndBudgetChanges)
{
    CacheGuard guard;
    constexpr int kThreads = 8;
    constexpr int kIters = 60;

    std::vector<std::shared_ptr<const ir::Module>> modules;
    for (int v = 0; v < 3; ++v)
        modules.push_back(tinyModule(v));
    // Reference solves, for checking that concurrent cache traffic
    // never serves a wrong result.  Identity is the points-to sets,
    // not workUnits: the three modules are versions of one another,
    // so the lineage path may (correctly) patch one result from
    // another with less effort.
    std::vector<std::vector<analysis::CellId>> expectedPts;
    for (const auto &module : modules)
        expectedPts.push_back(
            ptsSignature(*module, analysis::runAndersen(*module, {})));
    std::vector<std::uint64_t> expectedSteps;
    for (const auto &module : modules)
        expectedSteps.push_back(
            exec::recordRun(*module, exec::ExecConfig{}).result.steps);

    std::atomic<int> wrongResults{0};
    auto worker = [&](int tid) {
        for (int it = 0; it < kIters; ++it) {
            const int m = (tid + it) % int(modules.size());
            switch ((tid * 7 + it) % 5) {
              case 0: {
                const auto result =
                    analysis::runAndersenMemo(modules[m], {});
                if (ptsSignature(*modules[m], *result) != expectedPts[m])
                    ++wrongResults;
                break;
              }
              case 1: {
                const std::uint64_t key = std::uint64_t((tid + it) % 4);
                const auto result = analysis::sliceSetMemo(
                    modules[m], nullptr, key, {InstrId(1)},
                    [key] { return fabricatedSlices(key); });
                if (result->workUnits != key)
                    ++wrongResults;
                break;
              }
              case 2: {
                const auto trace =
                    exec::recordRunMemo(modules[m], exec::ExecConfig{});
                if (trace->result.steps != expectedSteps[m])
                    ++wrongResults;
                break;
              }
              case 3:
                if (it % 16 == 3)
                    analysis::resetAndersenCache();
                break;
              default:
                analysis::setStaticCacheByteBudget(
                    it % 2 ? std::size_t{1} << 30 : std::size_t{64} << 10);
                break;
            }
        }
    };

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(worker, t);
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(wrongResults.load(), 0);
    const auto stats = analysis::andersenCacheStats();
    EXPECT_LE(stats.bytesCached,
              std::max(analysis::staticCacheByteBudget(),
                       std::size_t{1} << 30));
}

} // namespace
} // namespace oha
