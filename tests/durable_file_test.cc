/**
 * @file
 * Crash-consistent container format: round-trips, corruption
 * rejection and fault-injected I/O.
 *
 * The durability contract is absolute: a DurableReader either serves
 * fully checksum-verified bytes or rejects the file with a reason —
 * truncation at EVERY length, a bit flip at every offset class,
 * version skew, wrong magic, and wrong container kind all reject
 * cleanly (flips confined to never-checksummed alignment padding may
 * be accepted, in which case every payload must still read back
 * byte-identical).  Writers interrupted by injected open/write/
 * fsync/rename faults at every operation index leave the previously
 * published file untouched and no temp litter behind, and surface
 * the injected errno.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "dyn/fault_injector.h"
#include "support/durable_file.h"

namespace oha {
namespace {

using support::ByteReader;
using support::ByteWriter;
using support::DurableReader;
using support::DurableWriter;

/** Per-test scratch directory under the working directory. */
class DurableFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = "durable_test_" + std::to_string(::getpid());
        ::mkdir(dir_.c_str(), 0755);
        support::disarmIoFault();
    }

    void
    TearDown() override
    {
        support::disarmIoFault();
        if (DIR *d = ::opendir(dir_.c_str())) {
            while (const dirent *entry = ::readdir(d)) {
                const std::string name = entry->d_name;
                if (name != "." && name != "..")
                    ::unlink((dir_ + "/" + name).c_str());
            }
            ::closedir(d);
        }
        ::rmdir(dir_.c_str());
    }

    std::string
    path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

    /** Names of leftover temp files in the scratch dir. */
    std::vector<std::string>
    tempLitter() const
    {
        std::vector<std::string> litter;
        if (DIR *d = ::opendir(dir_.c_str())) {
            while (const dirent *entry = ::readdir(d)) {
                const std::string name = entry->d_name;
                if (name.find(".tmp.") != std::string::npos)
                    litter.push_back(name);
            }
            ::closedir(d);
        }
        return litter;
    }

    std::string dir_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFileRaw(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
}

/** Standard three-block container used by the corruption sweeps. */
std::vector<std::string>
sampleBlocks()
{
    std::string big(300, '\0');
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = static_cast<char>(i * 7 + 3);
    return {"hello durable world", std::string(), big};
}

bool
writeSample(const std::string &path)
{
    DurableWriter writer(path, support::kDurableKindCapture);
    for (const std::string &block : sampleBlocks())
        writer.addBlock(block);
    return writer.commit();
}

/** Read every block of a verified container. */
std::vector<std::string>
readAllBlocks(DurableReader &reader)
{
    std::vector<std::string> blocks;
    for (std::size_t i = 0; i < reader.numBlocks(); ++i) {
        std::string block;
        EXPECT_TRUE(reader.readBlock(i, block));
        blocks.push_back(std::move(block));
    }
    return blocks;
}

TEST_F(DurableFileTest, RoundTripsBlocksWithAlignedOffsets)
{
    const std::string file = path("roundtrip");
    ASSERT_TRUE(writeSample(file));

    std::string error;
    auto reader =
        DurableReader::open(file, support::kDurableKindCapture, &error);
    ASSERT_TRUE(reader) << error;
    ASSERT_EQ(reader->numBlocks(), sampleBlocks().size());
    EXPECT_EQ(readAllBlocks(*reader), sampleBlocks());
    for (std::size_t i = 0; i < reader->numBlocks(); ++i) {
        EXPECT_EQ(reader->blockOffset(i) % 8, 0u)
            << "block " << i << " payload is not 8-aligned";
        EXPECT_EQ(reader->blockLength(i), sampleBlocks()[i].size());
    }
    EXPECT_TRUE(tempLitter().empty());
}

TEST_F(DurableFileTest, StreamingBlocksMatchWholeBlocks)
{
    const std::string whole = path("whole");
    const std::string streamed = path("streamed");
    const std::string payload = sampleBlocks().back();
    {
        DurableWriter writer(whole, support::kDurableKindSnapshot);
        writer.addBlock(payload);
        ASSERT_TRUE(writer.commit());
    }
    {
        DurableWriter writer(streamed, support::kDurableKindSnapshot);
        writer.beginBlock();
        // Uneven chunking must not change the result.
        std::size_t at = 0;
        for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                                    std::size_t{100}, payload.size()}) {
            const std::size_t len = std::min(n, payload.size() - at);
            writer.writeChunk(payload.data() + at, len);
            at += len;
        }
        ASSERT_EQ(at, payload.size());
        writer.endBlock();
        ASSERT_TRUE(writer.commit());
    }
    EXPECT_EQ(readFile(whole).size(), readFile(streamed).size());
    auto a = DurableReader::open(whole, support::kDurableKindSnapshot);
    auto b = DurableReader::open(streamed, support::kDurableKindSnapshot);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(readAllBlocks(*a), readAllBlocks(*b));
}

TEST_F(DurableFileTest, RejectsTruncationAtEveryLength)
{
    const std::string file = path("truncated");
    ASSERT_TRUE(writeSample(file));
    const std::string bytes = readFile(file);
    ASSERT_GT(bytes.size(), 32u);

    for (std::size_t len = 0; len < bytes.size(); ++len) {
        writeFileRaw(file, bytes.substr(0, len));
        std::string error;
        auto reader = DurableReader::open(
            file, support::kDurableKindCapture, &error);
        EXPECT_FALSE(reader)
            << "accepted a file truncated to " << len << " bytes";
        EXPECT_FALSE(error.empty());
    }
}

TEST_F(DurableFileTest, BitFlipSweepRejectsOrReadsIdentical)
{
    const std::string file = path("bitflip");
    ASSERT_TRUE(writeSample(file));
    const std::string bytes = readFile(file);
    const std::vector<std::string> expect = sampleBlocks();

    std::size_t accepted = 0;
    for (std::size_t at = 0; at < bytes.size(); ++at) {
        std::string mutated = bytes;
        mutated[at] = static_cast<char>(mutated[at] ^ 0x40);
        writeFileRaw(file, mutated);
        auto reader =
            DurableReader::open(file, support::kDurableKindCapture);
        if (!reader)
            continue; // rejected: the common, correct outcome
        // Accepted: the flip can only have hit never-checksummed
        // alignment padding — every payload must be untouched.
        ++accepted;
        ASSERT_EQ(reader->numBlocks(), expect.size()) << "offset " << at;
        EXPECT_EQ(readAllBlocks(*reader), expect) << "offset " << at;
    }
    // Most offsets are covered by a checksum; padding is a sliver.
    EXPECT_LT(accepted, bytes.size() / 4);
}

TEST_F(DurableFileTest, RejectsVersionSkewMagicAndKind)
{
    const std::string file = path("skew");
    ASSERT_TRUE(writeSample(file));
    const std::string bytes = readFile(file);

    // Future format version, with the header checksum recomputed so
    // only the version check can reject it.
    {
        std::string mutated = bytes;
        const std::uint32_t version = 999;
        std::memcpy(&mutated[8], &version, sizeof(version));
        const std::uint64_t sum = support::fnv1a64(mutated.data(), 24);
        std::memcpy(&mutated[24], &sum, sizeof(sum));
        writeFileRaw(file, mutated);
        std::string error;
        EXPECT_FALSE(DurableReader::open(
            file, support::kDurableKindCapture, &error));
        EXPECT_NE(error.find("version"), std::string::npos) << error;
    }
    // Wrong magic.
    {
        std::string mutated = bytes;
        mutated[0] = 'X';
        writeFileRaw(file, mutated);
        std::string error;
        EXPECT_FALSE(DurableReader::open(
            file, support::kDurableKindCapture, &error));
    }
    // Right file, wrong expected kind: a capture never parses as a
    // snapshot.
    {
        writeFileRaw(file, bytes);
        std::string error;
        EXPECT_FALSE(DurableReader::open(
            file, support::kDurableKindSnapshot, &error));
        EXPECT_NE(error.find("kind"), std::string::npos) << error;
    }
}

TEST_F(DurableFileTest, WriterFaultSweepNeverClobbersPublishedFile)
{
    const std::string file = path("sweep");
    // Publish a first generation, then measure the op count of a
    // healthy overwrite.
    ASSERT_TRUE(writeSample(file));
    const std::string previous = readFile(file);

    const std::uint64_t ops = dyn::countIoOps([&] {
        DurableWriter writer(file, support::kDurableKindCapture);
        writer.addBlock(std::string("second generation"));
        ASSERT_TRUE(writer.commit());
    });
    ASSERT_GT(ops, 0u);
    const std::string committed = readFile(file);
    writeFileRaw(file, previous); // restore generation one

    // Fail every op index in turn; each interrupted overwrite must
    // leave either the previous generation or (only once the rename
    // happened) the complete new one — never a hybrid, never litter.
    for (std::uint64_t k = 0; k < ops; ++k) {
        dyn::IoFaultPoint point;
        point.failAfter = k;
        point.error = ENOSPC;
        bool ok = true;
        int error = 0;
        {
            dyn::ScopedIoFault fault(point);
            DurableWriter writer(file, support::kDurableKindCapture);
            writer.addBlock(std::string("second generation"));
            ok = writer.commit();
            error = writer.error();
            EXPECT_TRUE(fault.fired()) << "op " << k;
        }
        EXPECT_FALSE(ok) << "op " << k;
        EXPECT_EQ(error, ENOSPC) << "op " << k;
        const std::string now = readFile(file);
        EXPECT_TRUE(now == previous || now == committed)
            << "torn file after fault at op " << k;
        EXPECT_TRUE(tempLitter().empty()) << "op " << k;
        writeFileRaw(file, previous);
    }
}

TEST_F(DurableFileTest, AtomicWriteFileFaultsKeepPreviousContent)
{
    const std::string file = path("atomic.txt");
    ASSERT_TRUE(support::atomicWriteFile(file, "first\n"));
    EXPECT_EQ(readFile(file), "first\n");

    const std::uint64_t ops =
        dyn::countIoOps([&] { support::atomicWriteFile(file, "second\n"); });
    ASSERT_GT(ops, 0u);
    ASSERT_TRUE(support::atomicWriteFile(file, "first\n"));

    for (std::uint64_t k = 0; k < ops; ++k) {
        dyn::IoFaultPoint point;
        point.failAfter = k;
        point.error = EIO;
        std::string error;
        bool ok = true;
        {
            dyn::ScopedIoFault fault(point);
            ok = support::atomicWriteFile(file, "second\n", &error);
        }
        if (!ok) {
            EXPECT_FALSE(error.empty()) << "op " << k;
            const std::string now = readFile(file);
            EXPECT_TRUE(now == "first\n" || now == "second\n")
                << "torn atomic write at op " << k;
        } else {
            // The only survivable fault is the directory fsync after
            // a successful rename — and that path reports failure, so
            // a true return means the fault never fired here.
            EXPECT_EQ(readFile(file), "second\n");
        }
        EXPECT_TRUE(tempLitter().empty()) << "op " << k;
        ASSERT_TRUE(support::atomicWriteFile(file, "first\n"));
    }
}

TEST_F(DurableFileTest, ByteReaderIsBoundsCheckedAndSticky)
{
    ByteWriter out;
    out.u8(7);
    out.u32(0xdeadbeef);
    out.u64(0x1122334455667788ull);
    out.str("payload");
    const std::string bytes = out.take();

    ByteReader in(bytes);
    EXPECT_EQ(in.u8(), 7u);
    EXPECT_EQ(in.u32(), 0xdeadbeefu);
    EXPECT_EQ(in.u64(), 0x1122334455667788ull);
    EXPECT_EQ(in.str(), "payload");
    EXPECT_TRUE(in.ok());
    EXPECT_EQ(in.remaining(), 0u);

    // Reading past the end trips the sticky failure flag and returns
    // zero forever after — even for reads that would fit again.
    EXPECT_EQ(in.u64(), 0u);
    EXPECT_FALSE(in.ok());
    EXPECT_EQ(in.u8(), 0u);
    EXPECT_EQ(in.bytes(1), nullptr);

    // A length-prefixed string whose length overruns the buffer fails
    // without reading out of bounds.
    ByteWriter bad;
    bad.u64(1u << 20);
    const std::string badBytes = bad.take();
    ByteReader badIn(badBytes);
    EXPECT_EQ(badIn.str(), "");
    EXPECT_FALSE(badIn.ok());
}

TEST_F(DurableFileTest, PickIoFaultPointsIsSeededAndCoversEdges)
{
    // Exhaustive below the cap.
    const auto small = dyn::pickIoFaultPoints(5, 10, 42);
    ASSERT_EQ(small.size(), 5u);
    for (std::uint64_t k = 0; k < 5; ++k)
        EXPECT_EQ(small[k].failAfter, k);

    // Sampled above the cap: deterministic per seed, edges included.
    const auto a = dyn::pickIoFaultPoints(1000, 16, 7);
    const auto b = dyn::pickIoFaultPoints(1000, 16, 7);
    const auto c = dyn::pickIoFaultPoints(1000, 16, 8);
    ASSERT_EQ(a.size(), 16u);
    EXPECT_EQ(a.front().failAfter, 0u);
    EXPECT_EQ(a.back().failAfter, 999u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].failAfter, b[i].failAfter);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs = differs || a[i].failAfter != c[i].failAfter;
    EXPECT_TRUE(differs);

    EXPECT_TRUE(dyn::pickIoFaultPoints(0, 16, 7).empty());
}

} // namespace
} // namespace oha
