/**
 * @file
 * Tests for the runtime invariant checker: every invariant family's
 * violation path, the Bloom-filtered call-context fast path, and the
 * zero-false-negative property of the checks (Section 2.3).
 */

#include <gtest/gtest.h>

#include "dyn/invariant_checker.h"
#include "ir/builder.h"
#include "profile/profiler.h"

namespace oha::dyn {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Reg;

struct CheckOutcome
{
    bool violated;
    std::string reason;
    exec::RunResult::Status status;
};

CheckOutcome
runChecked(const ir::Module &module, const inv::InvariantSet &invariants,
           const exec::ExecConfig &config, CheckerConfig checkerConfig = {})
{
    InvariantChecker checker(module, invariants, checkerConfig);
    exec::Interpreter interp(module, config);
    checker.setControl(&interp);
    interp.attach(&checker, &checker.plan());
    const auto result = interp.run();
    return {checker.violated(), checker.violationReason(), result.status};
}

/** Profile a module over inputs and return the merged invariants. */
inv::InvariantSet
profiled(const ir::Module &module,
         const std::vector<exec::ExecConfig> &inputs,
         bool contexts = false)
{
    prof::ProfileOptions options;
    options.callContexts = contexts;
    prof::ProfilingCampaign campaign(module, options);
    for (const auto &config : inputs)
        campaign.addRun(config);
    return campaign.invariants();
}

exec::ExecConfig
oneInput(std::int64_t v)
{
    exec::ExecConfig config;
    config.input = {v};
    return config;
}

TEST(InvariantChecker, LucViolationAbortsBeforeTheColdCode)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    BasicBlock *cold = b.createBlock(main, "cold");
    BasicBlock *done = b.createBlock(main, "done");
    b.condBr(b.input(0), cold, done);
    b.setInsertPoint(cold);
    b.output(b.constInt(13)); // must never be reached optimistically
    b.br(done);
    b.setInsertPoint(done);
    b.ret();
    module.finalize();

    const auto inv = profiled(module, {oneInput(0)});
    const auto ok = runChecked(module, inv, oneInput(0));
    EXPECT_FALSE(ok.violated);
    EXPECT_EQ(ok.status, exec::RunResult::Status::Finished);

    const auto bad = runChecked(module, inv, oneInput(1));
    EXPECT_TRUE(bad.violated);
    EXPECT_EQ(bad.status, exec::RunResult::Status::Aborted);
    EXPECT_NE(bad.reason.find("unreachable"), std::string::npos);
}

struct IcallProgram
{
    Module module;
};

void
buildIcall(IcallProgram &prog)
{
    IRBuilder b(prog.module);
    Function *fa = b.createFunction("fa", 0);
    b.ret(b.constInt(1));
    Function *fb = b.createFunction("fb", 0);
    b.ret(b.constInt(2));
    b.createFunction("main", 0);
    const Reg table = b.alloc(2);
    b.store(b.gep(table, 0), b.funcAddr(fa));
    b.store(b.gep(table, 1), b.funcAddr(fb));
    const Reg fp = b.load(b.gepDyn(table, b.input(0)));
    b.output(b.icall(fp, {}));
    b.ret();
    prog.module.finalize();
}

TEST(InvariantChecker, CalleeSetViolationOnNewTarget)
{
    IcallProgram prog;
    buildIcall(prog);
    const auto inv = profiled(prog.module, {oneInput(0)});

    EXPECT_FALSE(runChecked(prog.module, inv, oneInput(0)).violated);
    // Disable the LUC check: the unprofiled callee's entry block
    // would otherwise trip first (a correct, earlier detection of the
    // same mis-speculation).
    CheckerConfig config;
    config.unreachableCode = false;
    const auto bad = runChecked(prog.module, inv, oneInput(1), config);
    EXPECT_TRUE(bad.violated);
    EXPECT_NE(bad.reason.find("indirect-call"), std::string::npos);

    // With LUC enabled, the block check catches it even earlier.
    const auto lucFirst = runChecked(prog.module, inv, oneInput(1));
    EXPECT_TRUE(lucFirst.violated);
    EXPECT_NE(lucFirst.reason.find("unreachable"), std::string::npos);
}

TEST(InvariantChecker, CalleeSetCheckIgnoredWhenDisabled)
{
    IcallProgram prog;
    buildIcall(prog);
    const auto inv = profiled(prog.module, {oneInput(0)});
    CheckerConfig config;
    config.calleeSets = false;
    config.unreachableCode = false;
    EXPECT_FALSE(runChecked(prog.module, inv, oneInput(1), config)
                     .violated);
}

TEST(InvariantChecker, ContextViolationOnNovelCallChain)
{
    // Recursion depth controlled by input: deeper-than-profiled
    // recursion creates unobserved contexts.
    Module module;
    IRBuilder b(module);
    Function *rec = b.createFunction("rec", 1);
    {
        Function *f = rec;
        BasicBlock *more = b.createBlock(f, "more");
        BasicBlock *leaf = b.createBlock(f, "leaf");
        b.condBr(b.binop(ir::BinOpKind::Gt, 0, b.constInt(0)), more,
                 leaf);
        b.setInsertPoint(more);
        b.ret(b.call(rec, {b.sub(0, b.constInt(1))}));
        b.setInsertPoint(leaf);
        b.ret(b.constInt(0));
    }
    b.createFunction("main", 0);
    b.call(rec, {b.input(0)});
    b.ret();
    module.finalize();

    const auto inv =
        profiled(module, {oneInput(2), oneInput(3)}, /*contexts=*/true);
    CheckerConfig config;
    config.callContexts = true;
    config.unreachableCode = false; // isolate the context check

    EXPECT_FALSE(runChecked(module, inv, oneInput(3), config).violated);
    const auto bad = runChecked(module, inv, oneInput(5), config);
    EXPECT_TRUE(bad.violated);
    EXPECT_NE(bad.reason.find("call context"), std::string::npos);
}

TEST(InvariantChecker, DeepRecursionBeyondCapNeverMisspeculates)
{
    // Recursion far past inv::kMaxContextDepth: the profiler stops
    // recording contexts at the cap and the checker must exempt them
    // at the same cap.  If the two depth limits ever diverged, the
    // replayed (or deeper) run would trip "unobserved call context"
    // on stacks the profiler never had a chance to record.
    Module module;
    IRBuilder b(module);
    Function *rec = b.createFunction("rec", 1);
    {
        Function *f = rec;
        BasicBlock *more = b.createBlock(f, "more");
        BasicBlock *leaf = b.createBlock(f, "leaf");
        b.condBr(b.binop(ir::BinOpKind::Gt, 0, b.constInt(0)), more,
                 leaf);
        b.setInsertPoint(more);
        b.ret(b.call(rec, {b.sub(0, b.constInt(1))}));
        b.setInsertPoint(leaf);
        b.ret(b.constInt(0));
    }
    b.createFunction("main", 0);
    b.call(rec, {b.input(0)});
    b.ret();
    module.finalize();

    const std::int64_t depth =
        static_cast<std::int64_t>(inv::kMaxContextDepth) + 6;
    const auto inv = profiled(module, {oneInput(depth)}, /*contexts=*/true);
    CheckerConfig config;
    config.callContexts = true;
    config.unreachableCode = false; // isolate the context check

    // Replaying the profiled input is clean...
    EXPECT_FALSE(runChecked(module, inv, oneInput(depth), config).violated);
    // ...and so is recursing even deeper: every frame past the cap is
    // exempt, and the frames within the cap match the profiled ones.
    EXPECT_FALSE(
        runChecked(module, inv, oneInput(depth + 20), config).violated);
}

TEST(InvariantChecker, ContextFastPathElidesExactChecks)
{
    // Repeated identical contexts must hit the confirmed cache: the
    // number of slow (exact-set) probes is bounded by the number of
    // distinct contexts, not by the number of calls.
    Module module;
    IRBuilder b(module);
    Function *leaf = b.createFunction("leaf", 0);
    b.ret(b.constInt(1));
    Function *main = b.createFunction("main", 0);
    BasicBlock *loop = b.createBlock(main, "loop");
    BasicBlock *body = b.createBlock(main, "body");
    BasicBlock *done = b.createBlock(main, "done");
    const Reg i = b.constInt(0);
    const Reg n = b.constInt(50);
    const Reg one = b.constInt(1);
    b.br(loop);
    b.setInsertPoint(loop);
    b.condBr(b.lt(i, n), body, done);
    b.setInsertPoint(body);
    b.call(leaf, {});
    b.binopTo(i, ir::BinOpKind::Add, i, one);
    b.br(loop);
    b.setInsertPoint(done);
    b.ret();
    module.finalize();

    const auto inv = profiled(module, {{}}, /*contexts=*/true);
    CheckerConfig config;
    config.callContexts = true;
    InvariantChecker checker(module, inv, config);
    exec::Interpreter interp(module, {});
    checker.setControl(&interp);
    interp.attach(&checker, &checker.plan());
    ASSERT_TRUE(interp.run().finished());
    EXPECT_FALSE(checker.violated());
    EXPECT_LE(checker.slowContextChecks(), 2u)
        << "50 identical call contexts must not take 50 slow probes";
}

struct LockProgram
{
    Module module;
    InstrId site1 = kNoInstr, site2 = kNoInstr;
};

void
buildLocks(LockProgram &prog)
{
    IRBuilder b(prog.module);
    const auto m1 = prog.module.addGlobal("m1", 1);
    const auto m2 = prog.module.addGlobal("m2", 1);
    b.createFunction("main", 0);
    const Reg p1 = b.globalAddr(m1);
    b.lock(p1);
    b.unlock(p1);
    const Reg box = b.alloc(1);
    b.store(box, b.globalAddr(m1));
    Function *main = b.currentFunction();
    BasicBlock *other = b.createBlock(main, "other");
    BasicBlock *after = b.createBlock(main, "after");
    b.condBr(b.input(0), other, after);
    b.setInsertPoint(other);
    b.store(box, b.globalAddr(m2));
    b.br(after);
    b.setInsertPoint(after);
    const Reg p2 = b.load(box);
    b.lock(p2);
    b.unlock(p2);
    b.ret();
    prog.module.finalize();
    for (InstrId id = 0; id < prog.module.numInstrs(); ++id) {
        if (prog.module.instr(id).op == ir::Opcode::Lock) {
            if (prog.site1 == kNoInstr)
                prog.site1 = id;
            else
                prog.site2 = id;
        }
    }
}

TEST(InvariantChecker, LockAliasViolationWhenPairDiverges)
{
    LockProgram prog;
    buildLocks(prog);
    const auto inv = profiled(prog.module, {oneInput(0)});
    ASSERT_TRUE(inv.locksMustAlias(prog.site1, prog.site2));

    EXPECT_FALSE(runChecked(prog.module, inv, oneInput(0)).violated);
    CheckerConfig config;
    config.unreachableCode = false; // the branch also trips LUC
    const auto bad = runChecked(prog.module, inv, oneInput(1), config);
    EXPECT_TRUE(bad.violated);
    EXPECT_NE(bad.reason.find("lock"), std::string::npos);
}

TEST(InvariantChecker, SingletonSpawnViolationOnSecondThread)
{
    Module module;
    IRBuilder b(module);
    Function *worker = b.createFunction("worker", 0);
    b.ret(b.constInt(0));
    Function *main = b.createFunction("main", 0);
    BasicBlock *loop = b.createBlock(main, "loop");
    BasicBlock *body = b.createBlock(main, "body");
    BasicBlock *done = b.createBlock(main, "done");
    const Reg i = b.constInt(0);
    const Reg one = b.constInt(1);
    const Reg n = b.input(0);
    const Reg box = b.alloc(1);
    b.br(loop);
    b.setInsertPoint(loop);
    b.condBr(b.lt(i, n), body, done);
    b.setInsertPoint(body);
    b.store(box, b.spawn(worker, {}));
    b.join(b.load(box));
    b.binopTo(i, ir::BinOpKind::Add, i, one);
    b.br(loop);
    b.setInsertPoint(done);
    b.ret();
    module.finalize();

    const auto inv = profiled(module, {oneInput(1)});
    ASSERT_EQ(inv.singletonSpawnSites.size(), 1u);

    EXPECT_FALSE(runChecked(module, inv, oneInput(1)).violated);
    const auto bad = runChecked(module, inv, oneInput(2));
    EXPECT_TRUE(bad.violated);
    EXPECT_NE(bad.reason.find("singleton"), std::string::npos);
}

TEST(InvariantChecker, PlanCoversOnlyCheckSites)
{
    IcallProgram prog;
    buildIcall(prog);
    const auto inv = profiled(prog.module, {oneInput(0)});
    InvariantChecker checker(prog.module, inv, {});
    // Exactly the icall site is instruction-instrumented; only
    // unvisited blocks are block-instrumented.
    std::uint64_t instrSites = checker.plan().numInstrSites();
    EXPECT_EQ(instrSites, 1u);
    for (BlockId blk = 0; blk < prog.module.numBlocks(); ++blk) {
        EXPECT_EQ(checker.plan().coversBlock(blk),
                  !inv.blockVisited(blk));
    }
}

TEST(InvariantChecker, NoViolationMeansNoAbortEver)
{
    // Property: replaying any profiled input can never violate.
    IcallProgram prog;
    buildIcall(prog);
    const auto inv =
        profiled(prog.module, {oneInput(0), oneInput(1)});
    for (std::int64_t v : {0, 1}) {
        const auto outcome = runChecked(prog.module, inv, oneInput(v));
        EXPECT_FALSE(outcome.violated) << "input " << v;
    }
}

} // namespace
} // namespace oha::dyn
