/**
 * @file
 * Tests for the deterministic fault-injection harness: every
 * injectable violation family actually trips the runtime checker on
 * the corpus it was derived from, selection is seed-deterministic,
 * structured violation metadata is identical between live and
 * replayed runs, and the end-to-end pipelines stay sound under
 * injection.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "core/optft.h"
#include "core/optslice.h"
#include "dyn/fault_injector.h"
#include "dyn/invariant_checker.h"
#include "exec/trace.h"
#include "ir/builder.h"
#include "profile/profiler.h"

namespace oha::dyn {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Reg;

exec::ExecConfig
oneInput(std::int64_t v)
{
    exec::ExecConfig config;
    config.input = {v};
    return config;
}

inv::InvariantSet
profiled(const ir::Module &module,
         const std::vector<exec::ExecConfig> &inputs,
         bool contexts = false)
{
    prof::ProfileOptions options;
    options.callContexts = contexts;
    prof::ProfilingCampaign campaign(module, options);
    for (const auto &config : inputs)
        campaign.addRun(config);
    return campaign.invariants();
}

/** Run the corpus under the checker; return the first violation. */
Violation
firstViolation(const ir::Module &module,
               const inv::InvariantSet &invariants,
               const std::vector<exec::ExecConfig> &corpus,
               CheckerConfig checkerConfig = {})
{
    for (const exec::ExecConfig &input : corpus) {
        InvariantChecker checker(module, invariants, checkerConfig);
        exec::Interpreter interp(module, input);
        checker.setControl(&interp);
        interp.attach(&checker, &checker.plan());
        interp.run();
        if (checker.violated())
            return checker.violation();
    }
    return {};
}

/** A program exercising blocks, icalls, locks and spawns. */
struct RichProgram
{
    Module module;
};

void
buildRich(RichProgram &prog)
{
    IRBuilder b(prog.module);
    const auto m1 = prog.module.addGlobal("m1", 1);
    const auto m2 = prog.module.addGlobal("m2", 1);
    Function *worker = b.createFunction("worker", 0);
    b.ret(b.constInt(0));
    Function *fa = b.createFunction("fa", 0);
    b.ret(b.constInt(1));
    Function *fb = b.createFunction("fb", 0);
    b.ret(b.constInt(2));
    Function *main = b.createFunction("main", 0);
    BasicBlock *odd = b.createBlock(main, "odd");
    BasicBlock *join = b.createBlock(main, "join");
    const Reg table = b.alloc(2);
    b.store(b.gep(table, 0), b.funcAddr(fa));
    b.store(b.gep(table, 1), b.funcAddr(fb));
    b.condBr(b.input(0), odd, join);
    b.setInsertPoint(odd);
    b.output(b.constInt(99));
    b.br(join);
    b.setInsertPoint(join);
    const Reg fp = b.load(b.gepDyn(table, b.input(0)));
    b.output(b.icall(fp, {}));
    // Two lock sites: the first always locks m1, the second locks m1
    // or m2 depending on the input (so the sites observably diverge).
    const Reg p1 = b.globalAddr(m1);
    b.lock(p1);
    b.unlock(p1);
    const Reg box = b.alloc(1);
    b.store(box, b.globalAddr(m1));
    BasicBlock *other = b.createBlock(main, "other");
    BasicBlock *after = b.createBlock(main, "after");
    b.condBr(b.input(0), other, after);
    b.setInsertPoint(other);
    b.store(box, b.globalAddr(m2));
    b.br(after);
    b.setInsertPoint(after);
    const Reg p2 = b.load(box);
    b.lock(p2);
    b.unlock(p2);
    // Spawn 1 + input workers from one site.
    BasicBlock *loop = b.createBlock(main, "loop");
    BasicBlock *body = b.createBlock(main, "body");
    BasicBlock *done = b.createBlock(main, "done");
    const Reg i = b.constInt(0);
    const Reg n = b.binop(ir::BinOpKind::Add, b.input(0), b.constInt(1));
    const Reg one = b.constInt(1);
    const Reg tbox = b.alloc(1);
    b.br(loop);
    b.setInsertPoint(loop);
    b.condBr(b.lt(i, n), body, done);
    b.setInsertPoint(body);
    b.store(tbox, b.spawn(worker, {}));
    b.join(b.load(tbox));
    b.binopTo(i, ir::BinOpKind::Add, i, one);
    b.br(loop);
    b.setInsertPoint(done);
    b.ret();
    prog.module.finalize();
}

/** Corpus covering both behaviours of the rich program. */
std::vector<exec::ExecConfig>
richCorpus()
{
    return {oneInput(0), oneInput(1)};
}

TEST(FaultInjector, EachInjectableFamilyTripsTheChecker)
{
    RichProgram prog;
    buildRich(prog);
    const auto corpus = richCorpus();

    for (ViolationFamily family :
         {ViolationFamily::UnreachableBlock, ViolationFamily::CalleeSet,
          ViolationFamily::MustAliasLock,
          ViolationFamily::SingletonSpawn}) {
        // Profile the whole corpus: with nothing unseen, the clean
        // invariant set never violates...
        inv::InvariantSet invariants = profiled(prog.module, corpus);
        ASSERT_EQ(firstViolation(prog.module, invariants, corpus).family,
                  ViolationFamily::None)
            << violationFamilyName(family);

        // ...and one injected fault of the requested family must trip
        // exactly that family on the same corpus.
        FaultInjectorOptions options;
        options.seed = 7;
        options.families = {family};
        const FaultInjector injector(prog.module, options);
        const auto applied = injector.inject(invariants, corpus);
        ASSERT_EQ(applied.size(), 1u) << violationFamilyName(family);
        EXPECT_EQ(applied[0].family, family);

        // Isolate the family under test: an injected callee-set or
        // lock fault must be caught by its own check, not masked by an
        // earlier family's checker hook.
        CheckerConfig checkerConfig;
        checkerConfig.unreachableCode =
            family == ViolationFamily::UnreachableBlock;
        const Violation tripped = firstViolation(
            prog.module, invariants, corpus, checkerConfig);
        EXPECT_EQ(tripped.family, family)
            << "injected " << applied[0].describe() << " but tripped "
            << tripped.describe();
    }
}

TEST(FaultInjector, SelectionIsSeedDeterministic)
{
    RichProgram prog;
    buildRich(prog);
    const auto corpus = richCorpus();

    auto applyWithSeed = [&](std::uint64_t seed) {
        inv::InvariantSet invariants = profiled(prog.module, corpus);
        FaultInjectorOptions options;
        options.seed = seed;
        const FaultInjector injector(prog.module, options);
        std::vector<std::string> described;
        for (const FaultInjection &f :
             injector.inject(invariants, corpus))
            described.push_back(f.describe());
        return described;
    };
    EXPECT_EQ(applyWithSeed(3), applyWithSeed(3));
    EXPECT_FALSE(applyWithSeed(3).empty());
}

TEST(FaultInjector, EnvSeedParsing)
{
    // Preserve any CI sweep seed for the other tests in this binary.
    const char *outer = std::getenv("OHA_FAULT_SEED");
    const std::string saved = outer ? outer : "";

    unsetenv("OHA_FAULT_SEED");
    EXPECT_EQ(faultSeedFromEnv(), 0u);
    setenv("OHA_FAULT_SEED", "42", 1);
    EXPECT_EQ(faultSeedFromEnv(), 42u);
    setenv("OHA_FAULT_SEED", "banana", 1);
    EXPECT_EQ(faultSeedFromEnv(), 0u);
    setenv("OHA_FAULT_SEED", "", 1);
    EXPECT_EQ(faultSeedFromEnv(), 0u);

    if (outer)
        setenv("OHA_FAULT_SEED", saved.c_str(), 1);
    else
        unsetenv("OHA_FAULT_SEED");
}

/** The CI fault sweep (ci/run.sh faults) varies OHA_FAULT_SEED; the
 *  end-to-end soundness tests pick it up so every sweep point injects
 *  a different fault mix.  Seed 1 keeps plain runs deterministic. */
std::uint64_t
sweepSeed()
{
    const std::uint64_t env = faultSeedFromEnv();
    return env ? env : 1;
}

TEST(Violation, LiveAndReplayedMetadataAreFieldIdentical)
{
    RichProgram prog;
    buildRich(prog);
    // Profile input 0 only: input 1 trips likely-unreachable code.
    const auto invariants = profiled(prog.module, {oneInput(0)});

    InvariantChecker liveChecker(prog.module, invariants, {});
    exec::Interpreter interp(prog.module, oneInput(1));
    liveChecker.setControl(&interp);
    interp.attach(&liveChecker, &liveChecker.plan());
    const exec::RunResult liveResult = interp.run();
    ASSERT_TRUE(liveChecker.violated());

    const exec::RecordedTrace trace =
        exec::recordRun(prog.module, oneInput(1));
    InvariantChecker replayChecker(prog.module, invariants, {});
    exec::TraceReplayer replayer(prog.module, trace);
    replayChecker.setControl(&replayer);
    replayer.attach(&replayChecker, &replayChecker.plan());
    const exec::RunResult replayResult = replayer.run();
    ASSERT_TRUE(replayChecker.violated());

    EXPECT_EQ(liveChecker.violation(), replayChecker.violation());
    EXPECT_EQ(liveChecker.violationReason(),
              replayChecker.violationReason());
    EXPECT_EQ(liveResult.abortMeta, replayResult.abortMeta);
    EXPECT_EQ(liveResult.abortReason, replayResult.abortReason);
    // The structured record and the abort metadata agree field by
    // field.
    const exec::AbortMetadata meta =
        liveChecker.violation().toAbortMetadata();
    EXPECT_EQ(meta, liveResult.abortMeta);
    EXPECT_EQ(meta.kind,
              static_cast<std::uint32_t>(
                  liveChecker.violation().family));
}

TEST(FaultInjection, OptFtStaysSoundUnderInjection)
{
    const auto workload = workloads::makeRaceWorkload("raytracer", 10, 6);
    core::OptFtConfig config;
    config.faultSeed = sweepSeed();
    const auto result = core::runOptFt(workload, config);
    EXPECT_FALSE(result.injectedFaults.empty());
    EXPECT_GT(result.misSpeculations, 0u)
        << "every injected fault is corpus-reachable by construction";
    EXPECT_TRUE(result.raceReportsMatch)
        << "recovery must restore the sound reports";
}

TEST(FaultInjection, OptFtInjectionParityAcrossThreadsAndSeeds)
{
    const auto workload = workloads::makeRaceWorkload("pmd", 8, 6);
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        core::OptFtConfig serial, parallel;
        serial.faultSeed = parallel.faultSeed = seed;
        serial.threads = 1;
        parallel.threads = 4;
        const auto a = core::runOptFt(workload, serial);
        const auto b = core::runOptFt(workload, parallel);
        EXPECT_TRUE(a.raceReportsMatch) << "seed " << seed;
        EXPECT_EQ(a.injectedFaults.size(), b.injectedFaults.size())
            << "seed " << seed;
        EXPECT_EQ(a.misSpeculations, b.misSpeculations)
            << "seed " << seed;
        EXPECT_EQ(a.demotions, b.demotions) << "seed " << seed;
        EXPECT_EQ(a.raceReportsMatch, b.raceReportsMatch)
            << "seed " << seed;
    }
}

TEST(FaultInjection, OptSliceStaysSoundUnderInjection)
{
    const auto workload = workloads::makeSliceWorkload("perl", 10, 5);
    core::OptSliceConfig config;
    config.faultSeed = sweepSeed();
    const auto result = core::runOptSlice(workload, config);
    EXPECT_FALSE(result.injectedFaults.empty());
    EXPECT_GT(result.misSpeculations, 0u);
    EXPECT_TRUE(result.sliceResultsMatch)
        << "recovery must restore the hybrid slices";
}

} // namespace
} // namespace oha::dyn
