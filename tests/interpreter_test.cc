/**
 * @file
 * Tests for the execution engine: semantics of every opcode,
 * multithreading, locking, determinism/replay and instrumentation
 * delivery.
 */

#include <gtest/gtest.h>

#include <map>

#include "exec/interpreter.h"
#include "ir/builder.h"

namespace oha::exec {
namespace {

using ir::BasicBlock;
using ir::BinOpKind;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Opcode;
using ir::Reg;

/** Run @p module with no instrumentation and return the result. */
RunResult
runPlain(const Module &module, ExecConfig config = {})
{
    Interpreter interp(module, std::move(config));
    return interp.run();
}

TEST(Interpreter, ArithmeticAndOutput)
{
    Module module;
    IRBuilder b(module);
    b.createFunction("main", 0);
    const Reg x = b.constInt(6);
    const Reg y = b.constInt(7);
    b.output(b.mul(x, y));
    b.ret();
    module.finalize();

    const RunResult result = runPlain(module);
    ASSERT_TRUE(result.finished());
    ASSERT_EQ(result.outputs.size(), 1u);
    EXPECT_EQ(result.outputs[0].second, 42);
}

TEST(Interpreter, MemoryLoadStoreGep)
{
    Module module;
    IRBuilder b(module);
    b.createFunction("main", 0);
    const Reg buf = b.alloc(4);
    const Reg v = b.constInt(11);
    b.store(b.gep(buf, 2), v);
    b.output(b.load(b.gep(buf, 2)));
    b.output(b.load(b.gep(buf, 0))); // untouched cell reads 0
    b.ret();
    module.finalize();

    const RunResult result = runPlain(module);
    ASSERT_TRUE(result.finished());
    EXPECT_EQ(result.outputs[0].second, 11);
    EXPECT_EQ(result.outputs[1].second, 0);
}

TEST(Interpreter, GlobalsAreSharedAndZeroInitialized)
{
    Module module;
    const auto g = module.addGlobal("g", 2);
    IRBuilder b(module);
    Function *setter = b.createFunction("setter", 0);
    {
        const Reg addr = b.gep(b.globalAddr(g), 1);
        b.store(addr, b.constInt(5));
        b.ret();
    }
    b.createFunction("main", 0);
    b.output(b.load(b.gep(b.globalAddr(g), 1)));
    b.call(setter, {});
    b.output(b.load(b.gep(b.globalAddr(g), 1)));
    b.ret();
    module.finalize();

    const RunResult result = runPlain(module);
    ASSERT_TRUE(result.finished());
    EXPECT_EQ(result.outputs[0].second, 0);
    EXPECT_EQ(result.outputs[1].second, 5);
}

TEST(Interpreter, CallPassesArgsAndReturnsValue)
{
    Module module;
    IRBuilder b(module);
    Function *addFn = b.createFunction("add2", 2);
    b.ret(b.add(0, 1));
    b.createFunction("main", 0);
    const Reg r =
        b.call(addFn, {b.constInt(30), b.constInt(12)});
    b.output(r);
    b.ret();
    module.finalize();

    const RunResult result = runPlain(module);
    ASSERT_TRUE(result.finished());
    EXPECT_EQ(result.outputs[0].second, 42);
}

TEST(Interpreter, IndirectCallDispatch)
{
    Module module;
    IRBuilder b(module);
    Function *dbl = b.createFunction("dbl", 1);
    b.ret(b.add(0, 0));
    Function *neg = b.createFunction("neg", 1);
    b.ret(b.sub(b.constInt(0), 0));
    b.createFunction("main", 0);
    const Reg table = b.alloc(2);
    b.store(b.gep(table, 0), b.funcAddr(dbl));
    b.store(b.gep(table, 1), b.funcAddr(neg));
    const Reg which = b.input(0);
    const Reg fp = b.load(b.gepDyn(table, which));
    b.output(b.icall(fp, {b.constInt(21)}));
    b.ret();
    module.finalize();

    ExecConfig cfg;
    cfg.input = {0};
    EXPECT_EQ(runPlain(module, cfg).outputs[0].second, 42);
    cfg.input = {1};
    EXPECT_EQ(runPlain(module, cfg).outputs[0].second, -21);
}

TEST(Interpreter, LoopViaRedefinition)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    BasicBlock *loop = b.createBlock(main, "loop");
    BasicBlock *body = b.createBlock(main, "body");
    BasicBlock *exit = b.createBlock(main, "exit");

    const Reg i = b.constInt(0);
    const Reg sum = b.constInt(0);
    const Reg n = b.constInt(10);
    const Reg one = b.constInt(1);
    b.br(loop);

    b.setInsertPoint(loop);
    b.condBr(b.lt(i, n), body, exit);

    b.setInsertPoint(body);
    b.binopTo(sum, BinOpKind::Add, sum, i);
    b.binopTo(i, BinOpKind::Add, i, one);
    b.br(loop);

    b.setInsertPoint(exit);
    b.output(sum);
    b.ret();
    module.finalize();

    const RunResult result = runPlain(module);
    ASSERT_TRUE(result.finished());
    EXPECT_EQ(result.outputs[0].second, 45);
}

TEST(Interpreter, InputIndexingWraps)
{
    Module module;
    IRBuilder b(module);
    b.createFunction("main", 0);
    b.output(b.input(0));
    b.output(b.input(1));
    b.output(b.input(5)); // wraps to index 1
    b.ret();
    module.finalize();

    ExecConfig cfg;
    cfg.input = {10, 20, 30, 40};
    const RunResult result = runPlain(module, cfg);
    EXPECT_EQ(result.outputs[0].second, 10);
    EXPECT_EQ(result.outputs[1].second, 20);
    EXPECT_EQ(result.outputs[2].second, 20);
}

/** Build: main spawns `threads` workers incrementing a shared counter
 *  under a lock `iters` times each, joins them, outputs the counter. */
void
buildCounterProgram(Module &module, int threads, int iters)
{
    IRBuilder b(module);
    const auto shared = module.addGlobal("shared", 1);
    const auto mutex = module.addGlobal("mutex", 1);

    Function *worker = b.createFunction("worker", 0);
    {
        BasicBlock *loop = b.createBlock(worker, "loop");
        BasicBlock *body = b.createBlock(worker, "body");
        BasicBlock *done = b.createBlock(worker, "done");
        const Reg i = b.constInt(0);
        const Reg n = b.constInt(iters);
        const Reg one = b.constInt(1);
        b.br(loop);
        b.setInsertPoint(loop);
        b.condBr(b.lt(i, n), body, done);
        b.setInsertPoint(body);
        const Reg m = b.globalAddr(mutex);
        b.lock(m);
        const Reg addr = b.globalAddr(shared);
        b.store(addr, b.add(b.load(addr), one));
        b.unlock(m);
        b.binopTo(i, BinOpKind::Add, i, one);
        b.br(loop);
        b.setInsertPoint(done);
        b.ret();
    }

    Function *main = b.createFunction("main", 0);
    {
        std::vector<Reg> handles;
        for (int t = 0; t < threads; ++t)
            handles.push_back(b.spawn(worker, {}));
        for (const Reg h : handles)
            b.join(h);
        b.output(b.load(b.globalAddr(shared)));
        b.ret();
        (void)main;
    }
}

TEST(Interpreter, LockedCounterIsExact)
{
    Module module;
    buildCounterProgram(module, 4, 50);
    module.finalize();

    for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
        ExecConfig cfg;
        cfg.scheduleSeed = seed;
        const RunResult result = runPlain(module, cfg);
        ASSERT_TRUE(result.finished());
        EXPECT_EQ(result.outputs[0].second, 200);
        EXPECT_EQ(result.numThreads, 5u);
    }
}

TEST(Interpreter, ReplayIsDeterministic)
{
    Module module;
    buildCounterProgram(module, 3, 20);
    module.finalize();

    ExecConfig cfg;
    cfg.scheduleSeed = 1234;

    // Capture a scheduling-sensitive observable: total per-class event
    // counts and step count must match exactly across replays.
    const RunResult first = runPlain(module, cfg);
    const RunResult second = runPlain(module, cfg);
    EXPECT_EQ(first.steps, second.steps);
    for (std::size_t i = 0; i < kNumEventClasses; ++i) {
        EXPECT_EQ(first.totalEvents.counts[i], second.totalEvents.counts[i]);
    }
}

TEST(Interpreter, ScheduleTraceReplaysUnderDifferentSeed)
{
    Module module;
    buildCounterProgram(module, 3, 20);
    module.finalize();

    // Record the schedule of a run under seed A.
    ExecConfig record;
    record.scheduleSeed = 17;
    record.recordSchedule = true;
    Interpreter recorder(module, record);
    const RunResult original = recorder.run();
    ASSERT_TRUE(original.finished());
    ASSERT_FALSE(original.schedule.empty());

    // Replay the trace with a completely different seed: the
    // interleaving (and hence every event count) must be identical.
    ExecConfig replay;
    replay.scheduleSeed = 999999;
    replay.replaySchedule = original.schedule;
    replay.recordSchedule = true;
    Interpreter replayer(module, replay);
    const RunResult replayed = replayer.run();
    ASSERT_TRUE(replayed.finished());
    EXPECT_EQ(replayed.steps, original.steps);
    EXPECT_EQ(replayed.outputs, original.outputs);
    EXPECT_EQ(replayed.schedule, original.schedule);
    for (std::size_t i = 0; i < kNumEventClasses; ++i) {
        EXPECT_EQ(replayed.totalEvents.counts[i],
                  original.totalEvents.counts[i]);
    }
}

TEST(Interpreter, DifferentSeedsInterleaveDifferently)
{
    Module module;
    buildCounterProgram(module, 3, 30);
    module.finalize();

    ExecConfig a;
    a.scheduleSeed = 1;
    ExecConfig b;
    b.scheduleSeed = 2;
    // Steps may coincide; lock contention patterns rarely do.  Use
    // total steps as a weak signal, falling back to success if equal.
    const RunResult ra = runPlain(module, a);
    const RunResult rb = runPlain(module, b);
    EXPECT_TRUE(ra.finished());
    EXPECT_TRUE(rb.finished());
}

TEST(Interpreter, JoinReturnsThreadValue)
{
    Module module;
    IRBuilder b(module);
    Function *worker = b.createFunction("worker", 1);
    b.ret(b.mul(0, 0));
    b.createFunction("main", 0);
    const Reg h = b.spawn(worker, {b.constInt(9)});
    b.output(b.join(h));
    b.ret();
    module.finalize();

    const RunResult result = runPlain(module);
    ASSERT_TRUE(result.finished());
    EXPECT_EQ(result.outputs[0].second, 81);
}

TEST(Interpreter, CustomSyncSpinLoopTerminates)
{
    // Thread 2 spins on a flag written by thread 1: the scheduler
    // must preempt the spinner so the writer makes progress.
    Module module;
    IRBuilder b(module);
    const auto flag = module.addGlobal("flag", 1);

    Function *setter = b.createFunction("setter", 0);
    b.store(b.globalAddr(flag), b.constInt(1));
    b.ret();

    Function *main = b.createFunction("main", 0);
    BasicBlock *spin = b.createBlock(main, "spin");
    BasicBlock *done = b.createBlock(main, "done");
    b.spawn(setter, {});
    b.br(spin);
    b.setInsertPoint(spin);
    const Reg v = b.load(b.globalAddr(flag));
    b.condBr(v, done, spin);
    b.setInsertPoint(done);
    b.output(b.constInt(7));
    b.ret();
    module.finalize();

    const RunResult result = runPlain(module);
    ASSERT_TRUE(result.finished());
    EXPECT_EQ(result.outputs[0].second, 7);
}

TEST(Interpreter, GuestFaultOnBadDeref)
{
    Module module;
    IRBuilder b(module);
    b.createFunction("main", 0);
    const Reg notAPointer = b.constInt(3);
    b.load(notAPointer);
    b.ret();
    module.finalize();

    const RunResult result = runPlain(module);
    EXPECT_EQ(result.status, RunResult::Status::RuntimeError);
}

TEST(Interpreter, GuestFaultOnOutOfBounds)
{
    Module module;
    IRBuilder b(module);
    b.createFunction("main", 0);
    const Reg buf = b.alloc(2);
    b.load(b.gep(buf, 5));
    b.ret();
    module.finalize();

    EXPECT_EQ(runPlain(module).status, RunResult::Status::RuntimeError);
}

TEST(Interpreter, DeadlockDetected)
{
    // main locks m and then joins a thread that also locks m.
    Module module;
    IRBuilder b(module);
    const auto mutex = module.addGlobal("m", 1);
    Function *worker = b.createFunction("worker", 0);
    b.lock(b.globalAddr(mutex));
    b.unlock(b.globalAddr(mutex));
    b.ret();
    b.createFunction("main", 0);
    b.lock(b.globalAddr(mutex));
    const Reg h = b.spawn(worker, {});
    b.join(h); // worker can never acquire the lock -> deadlock
    b.unlock(b.globalAddr(mutex));
    b.ret();
    module.finalize();

    EXPECT_EQ(runPlain(module).status, RunResult::Status::Deadlock);
}

TEST(Interpreter, StepLimitStopsRunawayLoop)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    BasicBlock *loop = b.createBlock(main, "loop");
    b.br(loop);
    b.setInsertPoint(loop);
    b.br(loop);
    module.finalize();

    ExecConfig cfg;
    cfg.maxSteps = 1000;
    EXPECT_EQ(runPlain(module, cfg).status, RunResult::Status::StepLimit);
}

/** Tool that records every event it sees by class. */
class RecordingTool : public Tool
{
  public:
    void
    onEvent(const EventCtx &ctx) override
    {
        ++events[eventClassOf(ctx.instr->op)];
        if (ctx.instr->op == ir::Opcode::Store)
            lastStoreObj = ctx.obj;
    }

    void
    onBlockEnter(ThreadId, BlockId block) override
    {
        blocks.push_back(block);
    }

    void
    onThreadStart(ThreadId tid, ThreadId, InstrId) override
    {
        ++threadStarts;
        lastTid = tid;
    }

    std::map<EventClass, std::uint64_t> events;
    std::vector<BlockId> blocks;
    int threadStarts = 0;
    ThreadId lastTid = 0;
    ObjectId lastStoreObj = 0;
};

TEST(Interpreter, InstrumentationDeliversPlannedEventsOnly)
{
    Module module;
    buildCounterProgram(module, 2, 5);
    module.finalize();

    // Full plan sees loads and stores; empty plan sees nothing.
    RecordingTool full, none;
    const InstrumentationPlan allPlan = InstrumentationPlan::all(module);
    const InstrumentationPlan nonePlan = InstrumentationPlan::none(module);

    ExecConfig cfg;
    Interpreter interp(module, cfg);
    interp.attach(&full, &allPlan);
    interp.attach(&none, &nonePlan);
    const RunResult result = interp.run();
    ASSERT_TRUE(result.finished());

    EXPECT_GT(full.events[EventClass::Load], 0u);
    EXPECT_GT(full.events[EventClass::Store], 0u);
    EXPECT_GT(full.events[EventClass::Lock], 0u);
    EXPECT_EQ(full.events[EventClass::Lock],
              full.events[EventClass::Unlock]);
    EXPECT_EQ(full.events[EventClass::Spawn], 2u);
    EXPECT_EQ(full.events[EventClass::Join], 2u);
    EXPECT_TRUE(none.events.empty());
    EXPECT_TRUE(none.blocks.empty());
    EXPECT_EQ(full.threadStarts, 3);
    // Thread lifecycle callbacks are unconditional.
    EXPECT_EQ(none.threadStarts, 3);

    // Delivered counters mirror what each tool saw.
    EXPECT_EQ(result.delivered[0][EventClass::Lock],
              full.events[EventClass::Lock]);
    EXPECT_EQ(result.delivered[1].total(), 0u);
    // Total event counts are plan-independent.
    EXPECT_GE(result.totalEvents[EventClass::Load],
              full.events[EventClass::Load]);
}

TEST(Interpreter, SelectivePlanFiltersPerInstruction)
{
    Module module;
    IRBuilder b(module);
    b.createFunction("main", 0);
    const Reg buf = b.alloc(2);
    const Reg v = b.constInt(1);
    b.store(b.gep(buf, 0), v); // instrumented
    b.store(b.gep(buf, 1), v); // elided
    b.ret();
    module.finalize();

    // Find the two store instructions.
    std::vector<InstrId> stores;
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == ir::Opcode::Store)
            stores.push_back(id);
    ASSERT_EQ(stores.size(), 2u);

    InstrumentationPlan plan = InstrumentationPlan::none(module);
    plan.setInstr(stores[0], true);

    RecordingTool tool;
    Interpreter interp(module, {});
    interp.attach(&tool, &plan);
    ASSERT_TRUE(interp.run().finished());
    EXPECT_EQ(tool.events[EventClass::Store], 1u);
}

TEST(Interpreter, AbortFromToolStopsExecution)
{
    class AbortingTool : public Tool
    {
      public:
        explicit AbortingTool(Interpreter *interp) : interp_(interp) {}
        void
        onEvent(const EventCtx &ctx) override
        {
            if (ctx.instr->op == ir::Opcode::Store)
                interp_->requestAbort("test abort");
        }

      private:
        Interpreter *interp_;
    };

    Module module;
    IRBuilder b(module);
    b.createFunction("main", 0);
    const Reg buf = b.alloc(1);
    b.store(buf, b.constInt(1));
    b.output(b.constInt(99)); // never reached
    b.ret();
    module.finalize();

    const InstrumentationPlan plan = InstrumentationPlan::all(module);
    Interpreter interp(module, {});
    AbortingTool tool(&interp);
    interp.attach(&tool, &plan);
    const RunResult result = interp.run();
    EXPECT_EQ(result.status, RunResult::Status::Aborted);
    EXPECT_EQ(result.abortReason, "test abort");
    EXPECT_TRUE(result.outputs.empty());
}

} // namespace
} // namespace oha::exec
