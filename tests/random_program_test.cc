/**
 * @file
 * Randomized differential testing: generate random well-formed IR
 * programs from a seed, then check system-wide properties that must
 * hold for *any* program:
 *  - printer/parser round-trip preserves text and behaviour;
 *  - execution is deterministic;
 *  - every dynamically-touched address lies in the static points-to
 *    set of its access;
 *  - every dynamic slice is contained in the sound static slice;
 *  - hybrid (static-slice-planned) Giri equals pure Giri.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/race_detector.h"
#include "analysis/slicer.h"
#include "dyn/fasttrack.h"
#include "dyn/giri.h"
#include "dyn/plans.h"
#include "exec/interpreter.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "support/rng.h"

namespace oha {
namespace {

using ir::BasicBlock;
using ir::BinOpKind;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Reg;

/** A pointer register and how many cells remain valid beyond it. */
struct PtrVal
{
    Reg reg;
    std::uint32_t remaining;
};

/** Random straight-line-plus-loops program generator. */
class ProgramGen
{
  public:
    explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

    std::unique_ptr<Module>
    generate(bool multithreaded = false)
    {
        auto module = std::make_unique<Module>();
        IRBuilder b(*module);

        // A couple of globals for cross-function flow.
        const int numGlobals = 1 + int(rng_.below(3));
        for (int g = 0; g < numGlobals; ++g) {
            globals_.push_back(module->addGlobal(
                "g" + std::to_string(g),
                1 + std::uint32_t(rng_.below(4))));
            globalSizes_.push_back(
                module->globals().back().size);
        }

        // Callees first (an acyclic call DAG by construction).
        const int numFuncs = 2 + int(rng_.below(4));
        for (int f = 0; f < numFuncs; ++f) {
            const unsigned params = unsigned(rng_.below(3));
            Function *func = b.createFunction(
                "f" + std::to_string(f), params);
            emitBody(b, func, params, /*isMain=*/false);
            callees_.push_back(func);
        }
        Function *main = b.createFunction("main", 0);
        if (multithreaded) {
            emitMtMain(b);
        } else {
            emitBody(b, main, 0, /*isMain=*/true);
        }

        module->finalize();
        return module;
    }

  private:
    void
    emitBody(IRBuilder &b, Function *func, unsigned params, bool isMain)
    {
        scalars_.clear();
        ptrs_.clear();
        for (unsigned p = 0; p < params; ++p)
            scalars_.push_back(p);
        if (scalars_.empty())
            scalars_.push_back(b.constInt(std::int64_t(rng_.below(64))));

        const int instrs = 8 + int(rng_.below(24));
        for (int i = 0; i < instrs; ++i)
            emitRandomInstr(b);

        // Maybe a bounded loop with more work inside.
        if (rng_.chance(0.6)) {
            BasicBlock *head = b.createBlock(func, "head");
            BasicBlock *body = b.createBlock(func, "body");
            BasicBlock *exit = b.createBlock(func, "exit");
            const Reg i = b.constInt(0);
            const Reg n = b.constInt(2 + std::int64_t(rng_.below(6)));
            const Reg one = b.constInt(1);
            b.br(head);
            b.setInsertPoint(head);
            b.condBr(b.lt(i, n), body, exit);
            b.setInsertPoint(body);
            const int inner = 2 + int(rng_.below(6));
            for (int k = 0; k < inner; ++k)
                emitRandomInstr(b);
            b.binopTo(i, BinOpKind::Add, i, one);
            b.br(head);
            b.setInsertPoint(exit);
        }

        if (isMain) {
            // Several observable endpoints.
            const int outputs = 1 + int(rng_.below(3));
            for (int o = 0; o < outputs; ++o)
                b.output(pickScalar());
            b.ret();
        } else {
            b.ret(pickScalar());
        }
    }

    Reg
    pickScalar()
    {
        return scalars_[rng_.below(scalars_.size())];
    }

    void
    emitRandomInstr(IRBuilder &b)
    {
        switch (rng_.below(11)) {
          case 0:
            scalars_.push_back(
                b.constInt(std::int64_t(rng_.below(1000))));
            break;
          case 1: {
            static const BinOpKind kinds[] = {
                BinOpKind::Add, BinOpKind::Sub, BinOpKind::Mul,
                BinOpKind::Xor, BinOpKind::And, BinOpKind::Lt,
            };
            scalars_.push_back(b.binop(kinds[rng_.below(6)],
                                       pickScalar(), pickScalar()));
            break;
          }
          case 2: {
            const std::uint32_t size = 1 + std::uint32_t(rng_.below(4));
            ptrs_.push_back({b.alloc(size), size});
            break;
          }
          case 3: { // global address
            const std::size_t g = rng_.below(globals_.size());
            ptrs_.push_back(
                {b.globalAddr(globals_[g]), globalSizes_[g]});
            break;
          }
          case 4: { // gep within bounds
            if (ptrs_.empty())
                break;
            const PtrVal base = ptrs_[rng_.below(ptrs_.size())];
            if (base.remaining <= 1)
                break;
            const std::uint32_t field =
                std::uint32_t(rng_.below(base.remaining));
            ptrs_.push_back(
                {b.gep(base.reg, field), base.remaining - field});
            break;
          }
          case 5: // store a scalar
            if (!ptrs_.empty()) {
                b.store(ptrs_[rng_.below(ptrs_.size())].reg,
                        pickScalar());
            }
            break;
          case 6: // load
            if (!ptrs_.empty()) {
                scalars_.push_back(
                    b.load(ptrs_[rng_.below(ptrs_.size())].reg));
            }
            break;
          case 7: { // call an earlier function
            if (callees_.empty())
                break;
            Function *callee =
                callees_[rng_.below(callees_.size())];
            std::vector<Reg> args;
            for (unsigned p = 0; p < callee->numParams(); ++p)
                args.push_back(pickScalar());
            // Save/restore value pools around the callee's body
            // emission?  Not needed: callees are fully built before
            // main, so this is a plain call.
            scalars_.push_back(b.call(callee, std::move(args)));
            break;
          }
          case 8: // input
            scalars_.push_back(
                b.input(std::int64_t(rng_.below(8))));
            break;
          case 9: { // a small critical section on a global mutex
            const std::size_t g = rng_.below(globals_.size());
            const Reg mutex = b.globalAddr(globals_[g]);
            b.lock(mutex);
            if (!ptrs_.empty() && rng_.chance(0.8)) {
                const Reg p = ptrs_[rng_.below(ptrs_.size())].reg;
                b.store(p, pickScalar());
                scalars_.push_back(b.load(p));
            }
            b.unlock(mutex);
            break;
          }
          default: // register shuffling
            scalars_.push_back(b.assign(pickScalar()));
            break;
        }
    }

    /** main that spawns random workers: the race-fuzzing variant. */
    void
    emitMtMain(IRBuilder &b)
    {
        scalars_.clear();
        ptrs_.clear();
        scalars_.push_back(b.constInt(std::int64_t(rng_.below(64))));
        const int pre = 2 + int(rng_.below(8));
        for (int i = 0; i < pre; ++i)
            emitRandomInstr(b);

        std::vector<Reg> handles;
        const int threads = 2 + int(rng_.below(3));
        for (int t = 0; t < threads; ++t) {
            Function *worker = callees_[rng_.below(callees_.size())];
            std::vector<Reg> args;
            for (unsigned p = 0; p < worker->numParams(); ++p)
                args.push_back(pickScalar());
            handles.push_back(b.spawn(worker, std::move(args)));
            // Interleave a little main-thread work with live threads.
            for (int i = 0; i < int(rng_.below(4)); ++i)
                emitRandomInstr(b);
        }
        for (Reg h : handles)
            scalars_.push_back(b.join(h));
        for (int i = 0; i < int(rng_.below(5)); ++i)
            emitRandomInstr(b);
        b.output(pickScalar());
        b.ret();
    }

    Rng rng_;
    std::vector<std::uint32_t> globals_;
    std::vector<std::uint32_t> globalSizes_;
    std::vector<Function *> callees_;
    std::vector<Reg> scalars_;
    std::vector<PtrVal> ptrs_;
};

class RandomProgram : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    void
    SetUp() override
    {
        // Callees built before main can only call *previously built*
        // functions, so the call graph is acyclic and terminating.
        ProgramGen gen(GetParam());
        module_ = gen.generate();
        config_.input = {3, 1, 4, 1, 5, 9, 2, 6};
        config_.scheduleSeed = GetParam();
    }

    std::unique_ptr<Module> module_;
    exec::ExecConfig config_;
};

TEST_P(RandomProgram, ExecutesCleanlyAndDeterministically)
{
    exec::Interpreter a(*module_, config_);
    const auto ra = a.run();
    ASSERT_TRUE(ra.finished()) << ra.abortReason;
    exec::Interpreter b(*module_, config_);
    EXPECT_EQ(b.run().outputs, ra.outputs);
}

TEST_P(RandomProgram, PrintParseRoundTrip)
{
    const std::string once = ir::printModule(*module_);
    const auto reparsed = ir::parseModule(once);
    EXPECT_EQ(ir::printModule(*reparsed), once);
    exec::Interpreter a(*module_, config_);
    exec::Interpreter b(*reparsed, config_);
    EXPECT_EQ(a.run().outputs, b.run().outputs);
}

TEST_P(RandomProgram, DynamicAccessesWithinPointsTo)
{
    const auto pts = analysis::runAndersen(*module_, {});

    class Recorder : public exec::Tool
    {
      public:
        explicit Recorder(exec::Interpreter &interp) : interp_(interp) {}
        void
        onEvent(const exec::EventCtx &ctx) override
        {
            if (ctx.instr->isMemAccess())
                seen_[ctx.instr->id].insert(
                    {interp_.objectAllocSite(ctx.obj), ctx.obj,
                     ctx.off});
        }
        std::map<InstrId,
                 std::set<std::tuple<InstrId, exec::ObjectId,
                                     std::uint32_t>>>
            seen_;

      private:
        exec::Interpreter &interp_;
    };

    const auto plan = exec::InstrumentationPlan::all(*module_);
    exec::Interpreter interp(*module_, config_);
    Recorder recorder(interp);
    interp.attach(&recorder, &plan);
    ASSERT_TRUE(interp.run().finished());

    for (const auto &[instr, touched] : recorder.seen_) {
        const SparseBitSet targets = pts.pointerTargets(instr);
        for (const auto &[site, obj, off] : touched) {
            bool found = false;
            targets.forEach([&](analysis::CellId cell) {
                const auto &object =
                    pts.memory.object(pts.memory.objectOfCell(cell));
                if (pts.memory.fieldOfCell(cell) != off)
                    return;
                if (site == kNoInstr) {
                    found = found ||
                            (object.kind ==
                                 analysis::AbsObjectKind::Global &&
                             object.srcId == obj);
                } else {
                    found = found ||
                            (object.kind ==
                                 analysis::AbsObjectKind::AllocSite &&
                             object.srcId == site);
                }
            });
            EXPECT_TRUE(found) << "seed " << GetParam() << " access i"
                               << instr;
        }
    }
}

TEST_P(RandomProgram, DynamicSliceWithinStaticSliceAndHybridMatchesPure)
{
    const auto pts = analysis::runAndersen(*module_, {});
    const analysis::StaticSlicer slicer(*module_, pts, {});
    const auto fullPlan = dyn::fullGiriPlan(*module_);

    dyn::GiriSlicer pure(*module_);
    {
        exec::Interpreter interp(*module_, config_);
        interp.attach(&pure, &fullPlan);
        ASSERT_TRUE(interp.run().finished());
    }

    for (InstrId id = 0; id < module_->numInstrs(); ++id) {
        if (module_->instr(id).op != ir::Opcode::Output)
            continue;
        const auto staticSlice = slicer.slice(id);
        ASSERT_TRUE(staticSlice.completed);
        const auto dynamicSlice = pure.slice(id);
        for (InstrId instr : dynamicSlice) {
            const bool inStatic = staticSlice.instructions.count(instr) > 0;
            EXPECT_TRUE(inStatic)
                << "seed " << GetParam() << " endpoint " << id;
            if (!inStatic && ::getenv("OHA_DUMP")) {
                std::fprintf(stderr, "MISSING i%u: %s\n", instr,
                    ir::printInstruction(*module_, module_->instr(instr)).c_str());
                std::fprintf(stderr, "%s\n", ir::printModule(*module_).c_str());
            }
        }

        dyn::GiriSlicer hybrid(*module_);
        const auto plan =
            dyn::sliceGiriPlan(*module_, staticSlice.instructions);
        exec::Interpreter interp(*module_, config_);
        interp.attach(&hybrid, &plan);
        ASSERT_TRUE(interp.run().finished());
        EXPECT_EQ(hybrid.slice(id), dynamicSlice);
        EXPECT_EQ(hybrid.missingDependencies(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, RandomProgram,
                         ::testing::Range<std::uint64_t>(1, 25));

class RandomMtProgram : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomMtProgram, ObservedRacesAreStaticallyReported)
{
    ProgramGen gen(GetParam() * 7919 + 3);
    const auto module = gen.generate(/*multithreaded=*/true);

    const auto staticResult =
        analysis::runStaticRaceDetector(*module, nullptr);
    const auto plan = dyn::fullFastTrackPlan(*module);

    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        exec::ExecConfig config;
        config.input = {3, 1, 4, 1, 5, 9, 2, 6};
        config.scheduleSeed = seed;
        dyn::FastTrack tool;
        exec::Interpreter interp(*module, config);
        interp.attach(&tool, &plan);
        const auto result = interp.run();
        ASSERT_TRUE(result.finished()) << result.abortReason;
        for (const auto &pair : tool.racePairs()) {
            EXPECT_TRUE(staticResult.racyPairs.count(pair))
                << "seed " << GetParam() << "/" << seed
                << ": dynamic race (" << pair.first << "," << pair.second
                << ") missed by the sound static detector";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, RandomMtProgram,
                         ::testing::Range<std::uint64_t>(1, 25));

} // namespace
} // namespace oha
