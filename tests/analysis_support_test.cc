/**
 * @file
 * Tests for analysis support structures: the abstract memory model,
 * CFG dominators, the call graph, and the aggressive-LUC profiling
 * extension.
 */

#include <gtest/gtest.h>

#include "analysis/callgraph.h"
#include "analysis/memory_model.h"
#include "ir/builder.h"
#include "ir/cfg.h"
#include "profile/profiler.h"

namespace oha {
namespace {

using analysis::AbsObjectKind;
using analysis::MemoryModel;
using ir::BasicBlock;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Reg;

TEST(MemoryModel, CellsAreDenseAndFieldAddressable)
{
    MemoryModel memory;
    const auto g = memory.addObject(AbsObjectKind::Global, 0, 3);
    const auto f = memory.addObject(AbsObjectKind::Function, 7, 1);
    const auto h = memory.addObject(AbsObjectKind::AllocSite, 42, 2, 5);

    EXPECT_EQ(memory.numCells(), 6u);
    EXPECT_EQ(memory.cellOf(g, 0), 0u);
    EXPECT_EQ(memory.cellOf(g, 2), 2u);
    EXPECT_EQ(memory.cellOf(g, 3), analysis::kNoCell);
    EXPECT_EQ(memory.cellOf(f, 0), 3u);
    EXPECT_EQ(memory.cellOf(h, 1), 5u);

    EXPECT_EQ(memory.objectOfCell(2), g);
    EXPECT_EQ(memory.fieldOfCell(2), 2u);
    EXPECT_EQ(memory.object(h).contextId, 5u);
}

TEST(MemoryModel, ShiftStaysWithinObject)
{
    MemoryModel memory;
    const auto g = memory.addObject(AbsObjectKind::Global, 0, 4);
    const auto base = memory.cellOf(g, 1);
    EXPECT_EQ(memory.shiftCell(base, 2), memory.cellOf(g, 3));
    EXPECT_EQ(memory.shiftCell(base, -1), memory.cellOf(g, 0));
    EXPECT_EQ(memory.shiftCell(base, 3), analysis::kNoCell);
    EXPECT_EQ(memory.shiftCell(base, -2), analysis::kNoCell);
}

TEST(MemoryModel, FunctionCellsAreRecognized)
{
    MemoryModel memory;
    memory.addObject(AbsObjectKind::Global, 0, 1);
    const auto f = memory.addObject(AbsObjectKind::Function, 9, 1);
    EXPECT_FALSE(memory.isFunctionCell(0));
    EXPECT_TRUE(memory.isFunctionCell(memory.cellOf(f, 0)));
    EXPECT_EQ(memory.functionOfCell(memory.cellOf(f, 0)), 9u);
}

TEST(CfgDominators, DiamondAndLoop)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    BasicBlock *left = b.createBlock(main, "left");
    BasicBlock *right = b.createBlock(main, "right");
    BasicBlock *merge = b.createBlock(main, "merge");
    BasicBlock *loop = b.createBlock(main, "loop");
    BasicBlock *exit = b.createBlock(main, "exit");
    b.condBr(b.input(0), left, right);
    b.setInsertPoint(left);
    b.br(merge);
    b.setInsertPoint(right);
    b.br(merge);
    b.setInsertPoint(merge);
    b.br(loop);
    b.setInsertPoint(loop);
    b.condBr(b.input(1), loop, exit);
    b.setInsertPoint(exit);
    b.ret();
    module.finalize();

    const ir::Cfg cfg(*main);
    const BlockId entry = main->entry()->id();
    EXPECT_TRUE(cfg.dominates(entry, merge->id()));
    EXPECT_TRUE(cfg.dominates(merge->id(), exit->id()));
    EXPECT_FALSE(cfg.dominates(left->id(), merge->id()));
    EXPECT_FALSE(cfg.dominates(right->id(), merge->id()));
    EXPECT_TRUE(cfg.dominates(loop->id(), exit->id()));
    EXPECT_TRUE(cfg.dominates(exit->id(), exit->id())) << "reflexive";
    EXPECT_FALSE(cfg.dominates(exit->id(), loop->id()));
}

TEST(CallGraph, ResolvesDirectIndirectAndSpawnEdges)
{
    Module module;
    IRBuilder b(module);
    Function *leaf = b.createFunction("leaf", 0);
    b.ret(b.constInt(1));
    Function *viaPtr = b.createFunction("via_ptr", 0);
    b.ret(b.constInt(2));
    Function *worker = b.createFunction("worker", 0);
    b.call(leaf, {});
    b.ret(b.constInt(3));
    Function *main = b.createFunction("main", 0);
    b.call(leaf, {});
    b.icall(b.funcAddr(viaPtr), {});
    const Reg h = b.spawn(worker, {});
    b.join(h);
    b.ret();
    module.finalize();

    const auto pts = analysis::runAndersen(module, {});
    const analysis::CallGraph graph(module, pts, nullptr);

    EXPECT_EQ(graph.callees(main->id()),
              (std::set<FuncId>{leaf->id(), viaPtr->id()}))
        << "spawn is not a call edge";
    EXPECT_EQ(graph.spawnSites().size(), 1u);
    EXPECT_TRUE(graph.reachableFrom(main->id()).count(viaPtr->id()));
    EXPECT_FALSE(graph.reachableFrom(main->id()).count(worker->id()))
        << "thread bodies are their own region";
    EXPECT_TRUE(graph.reachableFrom(worker->id()).count(leaf->id()));
    EXPECT_TRUE(graph.isCalleeSomewhere(leaf->id()));
    EXPECT_FALSE(graph.isCalleeSomewhere(main->id()));
}

TEST(AggressiveLuc, ThresholdShrinksVisitedSet)
{
    // A loop body runs many times; a once-per-run branch only once.
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    BasicBlock *rare = b.createBlock(main, "rare");
    BasicBlock *head = b.createBlock(main, "head");
    BasicBlock *body = b.createBlock(main, "body");
    BasicBlock *done = b.createBlock(main, "done");
    const Reg i = b.constInt(0);
    const Reg n = b.constInt(20);
    const Reg one = b.constInt(1);
    b.condBr(b.input(0), rare, head);
    b.setInsertPoint(rare);
    b.br(head);
    b.setInsertPoint(head);
    b.condBr(b.lt(i, n), body, done);
    b.setInsertPoint(body);
    b.binopTo(i, ir::BinOpKind::Add, i, one);
    b.br(head);
    b.setInsertPoint(done);
    b.ret();
    module.finalize();

    prof::ProfilingCampaign campaign(module, {});
    exec::ExecConfig rareRun;
    rareRun.input = {1};
    exec::ExecConfig commonRun;
    commonRun.input = {0};
    campaign.addRun(rareRun);
    campaign.addRun(commonRun);
    campaign.addRun(commonRun);

    // Plain invariants: everything observed is visited.
    EXPECT_TRUE(campaign.invariants().blockVisited(rare->id()));
    EXPECT_TRUE(campaign.invariants().blockVisited(body->id()));

    // Threshold 1 (off) reproduces the plain set.
    EXPECT_TRUE(campaign.invariantsWithAggressiveLuc(1) ==
                campaign.invariants());

    // Threshold 2: the once-visited rare branch is now assumed
    // unreachable; the hot loop survives.
    const auto aggressive = campaign.invariantsWithAggressiveLuc(2);
    EXPECT_FALSE(aggressive.blockVisited(rare->id()));
    EXPECT_TRUE(aggressive.blockVisited(body->id()));
    EXPECT_TRUE(aggressive.blockVisited(head->id()));
}

} // namespace
} // namespace oha
