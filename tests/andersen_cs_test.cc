/**
 * @file
 * Context-sensitivity internals of the Andersen analysis: depth
 * overflow falls back to per-function CI instances, context instances
 * are navigable through callEdges(), and CS results refine CI results
 * (never the other way).
 */

#include <gtest/gtest.h>

#include "analysis/andersen.h"
#include "ir/builder.h"
#include "workloads/workloads.h"

namespace oha::analysis {
namespace {

using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Reg;

TEST(AndersenCs, DepthOverflowUsesFallbackInstances)
{
    // A linear call chain deeper than the context cap.
    Module module;
    IRBuilder b(module);
    Function *leaf = b.createFunction("leaf", 0);
    b.ret(b.alloc(1));
    Function *prev = leaf;
    for (int depth = 0; depth < 12; ++depth) {
        Function *f = b.createFunction("mid" + std::to_string(depth), 0);
        b.ret(b.call(prev, {}));
        prev = f;
    }
    b.createFunction("main", 0);
    const Reg p = b.call(prev, {});
    (void)p;
    b.ret();
    module.finalize();

    AndersenOptions options;
    options.contextSensitive = true;
    options.maxContextDepth = 4;
    const auto result = runAndersen(module, options);
    ASSERT_TRUE(result.completed);

    bool sawFallback = false;
    for (const auto &ctx : result.contexts)
        sawFallback = sawFallback || ctx.fallback;
    EXPECT_TRUE(sawFallback)
        << "chains beyond the depth cap must reuse fallback instances";

    // The result still reaches the leaf allocation.
    const FuncId mainId = module.functionByName("main")->id();
    const std::uint32_t mainCtx = result.instancesOf(mainId).front();
    EXPECT_FALSE(result.pts(mainCtx, p).empty());
}

TEST(AndersenCs, CsRefinesCiNeverWidens)
{
    // Property over a real benchmark: for every load/store, the CS
    // target set is a subset of the CI target set.
    const auto workload = workloads::makeSliceWorkload("redis", 1, 1);
    const ir::Module &module = *workload.module;

    const auto ci = runAndersen(module, {});
    AndersenOptions csOptions;
    csOptions.contextSensitive = true;
    const auto cs = runAndersen(module, csOptions);
    ASSERT_TRUE(cs.completed);

    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        if (!module.instr(id).isMemAccess())
            continue;
        SparseBitSet ciCells = ci.pointerTargets(id);
        const SparseBitSet csCells = cs.pointerTargets(id);
        // Compare at (object source, field) granularity: CS clones
        // objects, so cell ids differ across the two results.
        std::set<std::tuple<int, std::uint32_t, std::uint32_t>> ciKeys,
            csKeys;
        auto keyify = [](const AndersenResult &r, const SparseBitSet &s,
                         auto &out) {
            s.forEach([&](CellId cell) {
                const auto &object =
                    r.memory.object(r.memory.objectOfCell(cell));
                out.insert({int(object.kind), object.srcId,
                            r.memory.fieldOfCell(cell)});
            });
        };
        keyify(ci, ciCells, ciKeys);
        keyify(cs, csCells, csKeys);
        for (const auto &key : csKeys) {
            EXPECT_TRUE(ciKeys.count(key))
                << "CS widened the target set of i" << id;
        }
    }
}

TEST(AndersenCs, CallEdgesNavigateTheContextTree)
{
    Module module;
    IRBuilder b(module);
    Function *helper = b.createFunction("helper", 0);
    b.ret(b.alloc(1));
    b.createFunction("main", 0);
    b.call(helper, {});
    b.call(helper, {});
    b.ret();
    module.finalize();

    AndersenOptions options;
    options.contextSensitive = true;
    const auto result = runAndersen(module, options);
    ASSERT_TRUE(result.completed);

    const FuncId mainId = module.functionByName("main")->id();
    const FuncId helperId = module.functionByName("helper")->id();
    EXPECT_EQ(result.instancesOf(helperId).size(), 2u);

    const std::uint32_t mainCtx = result.instancesOf(mainId).front();
    std::set<std::uint32_t> reached;
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        if (module.instr(id).op != ir::Opcode::Call)
            continue;
        const auto callee =
            result.calleeInstance(mainCtx, id, helperId);
        ASSERT_NE(callee, static_cast<std::uint32_t>(-1));
        reached.insert(callee);
        EXPECT_EQ(result.contexts[callee].callSite, id);
        EXPECT_EQ(result.contexts[callee].parent, mainCtx);
    }
    EXPECT_EQ(reached.size(), 2u) << "one instance per call site";
}

} // namespace
} // namespace oha::analysis
