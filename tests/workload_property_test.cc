/**
 * @file
 * Parameterized property tests over every benchmark workload:
 * structural well-formedness, deterministic execution, schedule
 * sensitivity, and corpus reproducibility.
 */

#include <gtest/gtest.h>

#include "exec/interpreter.h"
#include "workloads/workloads.h"

namespace oha::workloads {
namespace {

class RaceWorkloadTest : public ::testing::TestWithParam<std::string>
{
};

class SliceWorkloadTest : public ::testing::TestWithParam<std::string>
{
};

exec::RunResult
run(const Workload &workload, const exec::ExecConfig &config)
{
    exec::Interpreter interp(*workload.module, config);
    return interp.run();
}

TEST_P(RaceWorkloadTest, CorporaAreReproducible)
{
    const auto a = makeRaceWorkload(GetParam(), 3, 3);
    const auto b = makeRaceWorkload(GetParam(), 3, 3);
    ASSERT_EQ(a.profilingSet.size(), b.profilingSet.size());
    for (std::size_t i = 0; i < a.profilingSet.size(); ++i) {
        EXPECT_EQ(a.profilingSet[i].input, b.profilingSet[i].input);
        EXPECT_EQ(a.profilingSet[i].scheduleSeed,
                  b.profilingSet[i].scheduleSeed);
    }
}

TEST_P(RaceWorkloadTest, ProfilingAndTestingSetsDiffer)
{
    const auto workload = makeRaceWorkload(GetParam(), 4, 4);
    // Same distribution, different draws.
    EXPECT_NE(workload.profilingSet[0].input,
              workload.testingSet[0].input);
}

TEST_P(RaceWorkloadTest, EveryInputRunsToCompletion)
{
    const auto workload = makeRaceWorkload(GetParam(), 4, 4);
    for (const auto &config : workload.profilingSet) {
        const auto result = run(workload, config);
        EXPECT_TRUE(result.finished()) << result.abortReason;
    }
    for (const auto &config : workload.testingSet) {
        const auto result = run(workload, config);
        EXPECT_TRUE(result.finished()) << result.abortReason;
    }
}

TEST_P(RaceWorkloadTest, ExecutionIsDeterministic)
{
    const auto workload = makeRaceWorkload(GetParam(), 1, 1);
    const auto &config = workload.testingSet.front();
    const auto a = run(workload, config);
    const auto b = run(workload, config);
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.numThreads, b.numThreads);
}

TEST_P(RaceWorkloadTest, IsMultithreaded)
{
    const auto workload = makeRaceWorkload(GetParam(), 1, 1);
    const auto result = run(workload, workload.testingSet.front());
    EXPECT_GE(result.numThreads, 3u)
        << "race benchmarks need real concurrency";
    EXPECT_GT(result.totalEvents[exec::EventClass::Load], 0u);
    EXPECT_GT(result.totalEvents[exec::EventClass::Store], 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllRaceWorkloads, RaceWorkloadTest,
    ::testing::ValuesIn(raceWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST_P(SliceWorkloadTest, CorporaAreReproducible)
{
    const auto a = makeSliceWorkload(GetParam(), 3, 3);
    const auto b = makeSliceWorkload(GetParam(), 3, 3);
    for (std::size_t i = 0; i < a.testingSet.size(); ++i)
        EXPECT_EQ(a.testingSet[i].input, b.testingSet[i].input);
}

TEST_P(SliceWorkloadTest, EveryInputRunsToCompletion)
{
    const auto workload = makeSliceWorkload(GetParam(), 4, 4);
    for (const auto &config : workload.testingSet) {
        const auto result = run(workload, config);
        EXPECT_TRUE(result.finished()) << result.abortReason;
        EXPECT_FALSE(result.outputs.empty());
    }
}

TEST_P(SliceWorkloadTest, ExecutionIsDeterministic)
{
    const auto workload = makeSliceWorkload(GetParam(), 1, 1);
    const auto &config = workload.testingSet.front();
    EXPECT_EQ(run(workload, config).outputs,
              run(workload, config).outputs);
}

TEST_P(SliceWorkloadTest, HasSliceEndpoints)
{
    const auto workload = makeSliceWorkload(GetParam(), 1, 1);
    int outputs = 0;
    for (InstrId id = 0; id < workload.module->numInstrs(); ++id)
        if (workload.module->instr(id).op == ir::Opcode::Output)
            ++outputs;
    EXPECT_GE(outputs, 1);
}

TEST_P(SliceWorkloadTest, InputsVaryAcrossTheCorpus)
{
    const auto workload = makeSliceWorkload(GetParam(), 6, 6);
    std::set<std::vector<std::int64_t>> distinct;
    for (const auto &config : workload.profilingSet)
        distinct.insert(config.input);
    EXPECT_GE(distinct.size(), 5u)
        << "profiling corpus must exercise varied behaviour";
}

INSTANTIATE_TEST_SUITE_P(
    AllSliceWorkloads, SliceWorkloadTest,
    ::testing::ValuesIn(sliceWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace oha::workloads
