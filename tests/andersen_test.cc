/**
 * @file
 * Tests for the Andersen points-to analysis: basic inclusion
 * constraints, field sensitivity, indirect calls, context-sensitive
 * heap cloning (Figure 3), and the predicated (invariant-assuming)
 * variants.
 */

#include <gtest/gtest.h>

#include "analysis/andersen.h"
#include "ir/builder.h"

namespace oha::analysis {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Opcode;
using ir::Reg;

/** Find the i-th instruction with opcode @p op. */
InstrId
nthInstr(const Module &module, Opcode op, int index = 0)
{
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        if (module.instr(id).op == op && index-- == 0)
            return id;
    }
    OHA_PANIC("instruction not found");
}

TEST(Andersen, DistinctAllocSitesDoNotAlias)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    const Reg p = b.alloc(1);
    const Reg q = b.alloc(1);
    const Reg r = b.assign(p);
    b.ret();
    module.finalize();

    const AndersenResult result = runAndersen(module, {});
    ASSERT_TRUE(result.completed);
    const FuncId f = main->id();
    EXPECT_EQ(result.pts(f, p).size(), 1u);
    EXPECT_EQ(result.pts(f, q).size(), 1u);
    EXPECT_FALSE(result.pts(f, p).intersects(result.pts(f, q)));
    EXPECT_TRUE(result.pts(f, r) == result.pts(f, p));
}

TEST(Andersen, LoadStoreFlowsThroughMemory)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    const Reg box = b.alloc(1);   // box holding a pointer
    const Reg target = b.alloc(1);
    b.store(box, target);          // *box = target
    const Reg loaded = b.load(box);
    b.ret();
    module.finalize();

    const AndersenResult result = runAndersen(module, {});
    ASSERT_TRUE(result.completed);
    const FuncId f = main->id();
    EXPECT_TRUE(result.pts(f, loaded) == result.pts(f, target));
}

TEST(Andersen, FieldSensitivityDistinguishesCells)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    const Reg obj = b.alloc(3);
    const Reg a = b.alloc(1);
    const Reg c = b.alloc(1);
    b.store(b.gep(obj, 0), a); // obj[0] = a
    b.store(b.gep(obj, 2), c); // obj[2] = c
    const Reg la = b.load(b.gep(obj, 0));
    const Reg lc = b.load(b.gep(obj, 2));
    b.ret();
    module.finalize();

    const AndersenResult result = runAndersen(module, {});
    const FuncId f = main->id();
    EXPECT_TRUE(result.pts(f, la) == result.pts(f, a));
    EXPECT_TRUE(result.pts(f, lc) == result.pts(f, c));
    EXPECT_FALSE(result.pts(f, la).intersects(result.pts(f, lc)));
}

TEST(Andersen, VariableGepCollapsesFields)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    const Reg obj = b.alloc(2);
    const Reg a = b.alloc(1);
    b.store(b.gep(obj, 1), a);
    const Reg idx = b.input(0);
    const Reg any = b.load(b.gepDyn(obj, idx)); // may read either field
    b.ret();
    module.finalize();

    const AndersenResult result = runAndersen(module, {});
    const FuncId f = main->id();
    // The variable-index load may observe the pointer stored at
    // field 1.
    EXPECT_TRUE(result.pts(f, any).intersects(result.pts(f, a)));
}

TEST(Andersen, GlobalsFlowBetweenFunctions)
{
    Module module;
    const auto g = module.addGlobal("g", 1);
    IRBuilder b(module);

    Function *setter = b.createFunction("setter", 0);
    const Reg obj = b.alloc(1);
    b.store(b.globalAddr(g), obj);
    b.ret();

    Function *main = b.createFunction("main", 0);
    b.call(setter, {});
    const Reg got = b.load(b.globalAddr(g));
    b.ret();
    module.finalize();

    const AndersenResult result = runAndersen(module, {});
    EXPECT_TRUE(result.pts(main->id(), got) ==
                result.pts(setter->id(), obj));
    EXPECT_EQ(result.pts(main->id(), got).size(), 1u);
}

TEST(Andersen, CallParamAndReturnFlow)
{
    Module module;
    IRBuilder b(module);
    Function *identity = b.createFunction("identity", 1);
    b.ret(0);
    Function *main = b.createFunction("main", 0);
    const Reg p = b.alloc(1);
    const Reg r = b.call(identity, {p});
    b.ret();
    module.finalize();

    const AndersenResult result = runAndersen(module, {});
    EXPECT_TRUE(result.pts(main->id(), r) == result.pts(main->id(), p));
    EXPECT_TRUE(result.pts(identity->id(), 0) ==
                result.pts(main->id(), p));
}

TEST(Andersen, SoundIcallResolvedOnTheFly)
{
    Module module;
    IRBuilder b(module);
    Function *callee = b.createFunction("callee", 1);
    const Reg param = 0;
    b.ret(param);
    Function *main = b.createFunction("main", 0);
    const Reg fp = b.funcAddr(callee);
    const Reg arg = b.alloc(1);
    const Reg r = b.icall(fp, {arg});
    b.ret();
    module.finalize();

    const AndersenResult result = runAndersen(module, {});
    const InstrId icall = nthInstr(module, Opcode::ICall);
    const auto targets = result.icallTargets(icall);
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(*targets.begin(), callee->id());
    EXPECT_TRUE(result.pts(callee->id(), param) ==
                result.pts(main->id(), arg));
    EXPECT_TRUE(result.pts(main->id(), r) == result.pts(main->id(), arg));
}

/** The Figure 3 program: main calls a malloc wrapper twice. */
struct WrapperProgram
{
    Module module;
    Reg a = 0, b = 0;
    FuncId mainId = 0;
};

void
buildWrapperProgram(WrapperProgram &prog)
{
    IRBuilder b(prog.module);
    Function *myMalloc = b.createFunction("my_malloc", 0);
    b.ret(b.alloc(1));
    Function *main = b.createFunction("main", 0);
    prog.a = b.call(myMalloc, {});
    prog.b = b.call(myMalloc, {});
    b.ret();
    prog.mainId = main->id();
    prog.module.finalize();
}

TEST(Andersen, ContextInsensitiveMergesWrapperResults)
{
    WrapperProgram prog;
    buildWrapperProgram(prog);
    const AndersenResult result = runAndersen(prog.module, {});
    // One abstract heap object for the single alloc site: both
    // results alias.
    EXPECT_TRUE(result.pts(prog.mainId, prog.a)
                    .intersects(result.pts(prog.mainId, prog.b)));
}

TEST(Andersen, ContextSensitiveHeapCloningSeparatesWrapperResults)
{
    WrapperProgram prog;
    buildWrapperProgram(prog);
    AndersenOptions options;
    options.contextSensitive = true;
    const AndersenResult result = runAndersen(prog.module, options);
    ASSERT_TRUE(result.completed);
    // Heap cloning gives each call chain its own abstract object.
    const std::uint32_t mainCtx =
        result.instancesOf(prog.mainId).front();
    EXPECT_FALSE(result.pts(mainCtx, prog.a)
                     .intersects(result.pts(mainCtx, prog.b)));
}

TEST(Andersen, RecursionDoesNotExplodeContexts)
{
    Module module;
    IRBuilder b(module);
    Function *rec = b.createFunction("rec", 1);
    {
        BasicBlock *again = b.createBlock(rec, "again");
        BasicBlock *done = b.createBlock(rec, "done");
        b.condBr(0, again, done);
        b.setInsertPoint(again);
        b.call(rec, {0});
        b.br(done);
        b.setInsertPoint(done);
        b.ret();
    }
    b.createFunction("main", 0);
    b.call(rec, {b.constInt(3)});
    b.ret();
    module.finalize();

    AndersenOptions options;
    options.contextSensitive = true;
    const AndersenResult result = runAndersen(module, options);
    ASSERT_TRUE(result.completed);
    // main + one rec instance (self-call folds back) at most a couple
    // of instances; certainly no blowup.
    EXPECT_LE(result.contexts.size(), 4u);
}

TEST(Andersen, ContextBudgetAbortsCleanly)
{
    // A call tree with fan-out 4 and depth 8 = ~87k contexts.
    Module module;
    IRBuilder b(module);
    std::vector<Function *> layers;
    Function *leaf = b.createFunction("leaf", 0);
    b.ret(b.alloc(1));
    Function *prev = leaf;
    for (int depth = 0; depth < 8; ++depth) {
        Function *f =
            b.createFunction("layer" + std::to_string(depth), 0);
        for (int i = 0; i < 4; ++i)
            b.call(prev, {});
        b.ret();
        prev = f;
    }
    b.createFunction("main", 0);
    b.call(prev, {});
    b.ret();
    module.finalize();

    AndersenOptions options;
    options.contextSensitive = true;
    options.maxContexts = 1000;
    const AndersenResult result = runAndersen(module, options);
    EXPECT_FALSE(result.completed);
}

TEST(Andersen, PredicatedLucPrunesDeadStore)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    BasicBlock *cold = b.createBlock(main, "cold");
    BasicBlock *done = b.createBlock(main, "done");

    const Reg box = b.alloc(1);
    const Reg secret = b.alloc(1);
    const Reg cond = b.input(0);
    b.condBr(cond, cold, done);
    b.setInsertPoint(cold);
    b.store(box, secret); // only reached on unusual inputs
    b.br(done);
    b.setInsertPoint(done);
    const Reg loaded = b.load(box);
    b.ret();
    module.finalize();

    // Sound analysis: loaded may be secret.
    const AndersenResult sound = runAndersen(module, {});
    EXPECT_TRUE(sound.pts(main->id(), loaded)
                    .intersects(sound.pts(main->id(), secret)));

    // Invariants that never saw the cold block.
    inv::InvariantSet invariants;
    invariants.numBlocks = static_cast<std::uint32_t>(module.numBlocks());
    for (const auto &block : main->blocks())
        invariants.visitedBlocks.insert(block->id());
    invariants.visitedBlocks.erase(cold->id());

    AndersenOptions options;
    options.invariants = &invariants;
    const AndersenResult optimistic = runAndersen(module, options);
    EXPECT_FALSE(optimistic.pts(main->id(), loaded)
                     .intersects(optimistic.pts(main->id(), secret)));
}

TEST(Andersen, PredicatedCalleeSetsNarrowIcall)
{
    Module module;
    IRBuilder b(module);
    Function *red = b.createFunction("red", 0);
    b.ret(b.alloc(1));
    Function *blue = b.createFunction("blue", 0);
    b.ret(b.alloc(1));
    Function *main = b.createFunction("main", 0);
    const Reg table = b.alloc(2);
    b.store(b.gep(table, 0), b.funcAddr(red));
    b.store(b.gep(table, 1), b.funcAddr(blue));
    const Reg idx = b.input(0);
    const Reg fp = b.load(b.gepDyn(table, idx));
    const Reg r = b.icall(fp, {});
    b.ret();
    module.finalize();

    const InstrId icall = nthInstr(module, Opcode::ICall);

    const AndersenResult sound = runAndersen(module, {});
    EXPECT_EQ(sound.icallTargets(icall).size(), 2u);
    EXPECT_EQ(sound.pts(main->id(), r).size(), 2u);

    inv::InvariantSet invariants;
    invariants.numBlocks = static_cast<std::uint32_t>(module.numBlocks());
    for (BlockId blk = 0; blk < module.numBlocks(); ++blk)
        invariants.visitedBlocks.insert(blk);
    invariants.calleeSets[icall] = {red->id()};

    AndersenOptions options;
    options.invariants = &invariants;
    const AndersenResult optimistic = runAndersen(module, options);
    EXPECT_EQ(optimistic.pts(main->id(), r).size(), 1u);
}

TEST(Andersen, PredicatedContextPruningShrinksCsAnalysis)
{
    WrapperProgram prog;
    buildWrapperProgram(prog);

    // Only the first call to my_malloc was ever observed.
    const InstrId firstCall = nthInstr(prog.module, Opcode::Call, 0);
    inv::InvariantSet invariants;
    invariants.numBlocks =
        static_cast<std::uint32_t>(prog.module.numBlocks());
    for (BlockId blk = 0; blk < prog.module.numBlocks(); ++blk)
        invariants.visitedBlocks.insert(blk);
    invariants.hasCallContexts = true;
    invariants.callContexts.insert({firstCall});
    invariants.rehashContexts();

    AndersenOptions options;
    options.contextSensitive = true;
    options.invariants = &invariants;
    const AndersenResult result = runAndersen(prog.module, options);
    ASSERT_TRUE(result.completed);

    // Only main + my_malloc@[firstCall] exist (Figure 3, right).
    EXPECT_EQ(result.contexts.size(), 2u);
    const std::uint32_t mainCtx =
        result.instancesOf(prog.mainId).front();
    EXPECT_EQ(result.pts(mainCtx, prog.a).size(), 1u);
    // The pruned second call contributes nothing.
    EXPECT_TRUE(result.pts(mainCtx, prog.b).empty());
}

TEST(Andersen, AliasRateDropsWithInvariants)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    BasicBlock *cold = b.createBlock(main, "cold");
    BasicBlock *done = b.createBlock(main, "done");
    const Reg x = b.alloc(1);
    const Reg y = b.alloc(1);
    const Reg v = b.constInt(1);
    b.store(x, v);
    b.load(x);
    b.load(y);
    const Reg cond = b.input(0);
    b.condBr(cond, cold, done);
    b.setInsertPoint(cold);
    b.store(y, v);
    b.load(y);
    b.br(done);
    b.setInsertPoint(done);
    b.ret();
    module.finalize();

    const AndersenResult sound = runAndersen(module, {});
    inv::InvariantSet invariants;
    invariants.numBlocks = static_cast<std::uint32_t>(module.numBlocks());
    invariants.visitedBlocks.insert(main->entry()->id());
    invariants.visitedBlocks.insert(done->id());

    AndersenOptions options;
    options.invariants = &invariants;
    const AndersenResult optimistic = runAndersen(module, options);

    const double baseRate = sound.aliasRate(module, &invariants);
    const double optRate = optimistic.aliasRate(module, &invariants);
    EXPECT_LE(optRate, baseRate);
    EXPECT_GT(baseRate, 0.0);
}

TEST(Andersen, HvnAndCyclesPreserveResults)
{
    // A copy cycle through three registers plus a load/store web;
    // results must be identical with and without HVN/cycle collapse.
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    BasicBlock *loop = b.createBlock(main, "loop");
    BasicBlock *out = b.createBlock(main, "out");
    const Reg p = b.alloc(1);
    const Reg q = b.assign(p);
    const Reg r = b.assign(q);
    b.br(loop);
    b.setInsertPoint(loop);
    b.assignTo(p, r); // closes the copy cycle p -> q -> r -> p
    const Reg cond = b.input(0);
    b.condBr(cond, loop, out);
    b.setInsertPoint(out);
    const Reg box = b.alloc(1);
    b.store(box, r);
    const Reg got = b.load(box);
    b.ret();
    module.finalize();

    AndersenOptions plain;
    plain.useHvn = false;
    plain.cycleCollapse = false;
    AndersenOptions optimized;
    optimized.useHvn = true;
    optimized.cycleCollapse = true;

    const AndersenResult a = runAndersen(module, plain);
    const AndersenResult c = runAndersen(module, optimized);
    const FuncId f = main->id();
    for (Reg reg : {p, q, r, got}) {
        EXPECT_TRUE(a.pts(f, reg) == c.pts(f, reg))
            << "mismatch for r" << reg;
    }
    EXPECT_EQ(a.pts(f, got).size(), 1u);
}

TEST(Andersen, SpawnAndJoinFlow)
{
    Module module;
    IRBuilder b(module);
    Function *worker = b.createFunction("worker", 1);
    b.ret(0); // returns its pointer argument
    Function *main = b.createFunction("main", 0);
    const Reg p = b.alloc(1);
    const Reg h = b.spawn(worker, {p});
    const Reg j = b.join(h);
    b.ret();
    module.finalize();

    const AndersenResult result = runAndersen(module, {});
    EXPECT_TRUE(result.pts(worker->id(), 0) == result.pts(main->id(), p));
    EXPECT_TRUE(result.pts(main->id(), j) == result.pts(main->id(), p));
}

} // namespace
} // namespace oha::analysis
