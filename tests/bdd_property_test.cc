/**
 * @file
 * Parameterized property tests for the ROBDD package: BddSet must
 * agree with a reference std::set implementation under randomized
 * insert/union/intersect workloads of varying sizes and seeds.
 */

#include <gtest/gtest.h>

#include <set>

#include "support/bdd.h"
#include "support/rng.h"

namespace oha {
namespace {

struct BddCase
{
    unsigned bits;
    std::uint64_t seed;
    int ops;
};

class BddAgainstReference : public ::testing::TestWithParam<BddCase>
{
};

TEST_P(BddAgainstReference, RandomOpsMatchStdSet)
{
    const BddCase param = GetParam();
    BddSetUniverse universe(param.bits);
    Rng rng(param.seed);
    const std::uint32_t limit = 1u << param.bits;

    BddRef setA = universe.empty();
    BddRef setB = universe.empty();
    std::set<std::uint32_t> refA, refB;

    for (int op = 0; op < param.ops; ++op) {
        const std::uint32_t value =
            static_cast<std::uint32_t>(rng.below(limit));
        switch (rng.below(4)) {
          case 0:
            setA = universe.insert(setA, value);
            refA.insert(value);
            break;
          case 1:
            setB = universe.insert(setB, value);
            refB.insert(value);
            break;
          case 2: {
            setA = universe.unite(setA, setB);
            refA.insert(refB.begin(), refB.end());
            break;
          }
          default: {
            setB = universe.intersect(setA, setB);
            std::set<std::uint32_t> met;
            for (std::uint32_t v : refB)
                if (refA.count(v))
                    met.insert(v);
            refB = std::move(met);
            break;
          }
        }
    }

    EXPECT_EQ(universe.size(setA), refA.size());
    EXPECT_EQ(universe.size(setB), refB.size());
    // Spot-check membership over random probes plus every element.
    for (std::uint32_t v : refA)
        EXPECT_TRUE(universe.contains(setA, v));
    for (std::uint32_t v : refB)
        EXPECT_TRUE(universe.contains(setB, v));
    for (int probe = 0; probe < 64; ++probe) {
        const std::uint32_t v =
            static_cast<std::uint32_t>(rng.below(limit));
        EXPECT_EQ(universe.contains(setA, v), refA.count(v) > 0);
        EXPECT_EQ(universe.contains(setB, v), refB.count(v) > 0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BddAgainstReference,
    ::testing::Values(BddCase{4, 1, 50}, BddCase{6, 2, 200},
                      BddCase{8, 3, 400}, BddCase{10, 4, 400},
                      BddCase{12, 5, 600}, BddCase{16, 6, 600},
                      BddCase{8, 7, 50}, BddCase{20, 8, 300}),
    [](const ::testing::TestParamInfo<BddCase> &info) {
        return "bits" + std::to_string(info.param.bits) + "_seed" +
               std::to_string(info.param.seed);
    });

TEST(BddStructure, HashConsingKeepsTableCompact)
{
    BddSetUniverse universe(16);
    BddRef set = universe.empty();
    for (std::uint32_t v = 0; v < 1000; ++v)
        set = universe.insert(set, v * 17 % 65536);
    // A dense range would be linear; hash consing keeps the node
    // count far below elements * bits.
    EXPECT_LT(universe.manager().numNodes(), 1000u * 16u);
}

} // namespace
} // namespace oha
