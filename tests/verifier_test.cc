/**
 * @file
 * Death tests for the IR verifier and parser diagnostics: malformed
 * modules must be rejected at finalize()/parse time with a clear
 * message, never limp into the interpreter.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/parser.h"

namespace oha::ir {
namespace {

TEST(Verifier, RejectsBlockWithoutTerminator)
{
    auto build = [] {
        Module module;
        IRBuilder b(module);
        b.createFunction("main", 0);
        b.constInt(1); // no terminator
        module.finalize();
    };
    EXPECT_EXIT(build(), ::testing::ExitedWithCode(1),
                "lacks a terminator");
}

TEST(Verifier, RejectsTerminatorMidBlock)
{
    auto build = [] {
        Module module;
        IRBuilder b(module);
        b.createFunction("main", 0);
        b.ret();
        b.output(b.constInt(1)); // unreachable tail in the same block
        b.ret();
        module.finalize();
    };
    EXPECT_EXIT(build(), ::testing::ExitedWithCode(1), "mid-block");
}

TEST(Verifier, RejectsCrossFunctionBranch)
{
    auto build = [] {
        Module module;
        IRBuilder b(module);
        Function *other = b.createFunction("other", 0);
        BasicBlock *foreign = b.createBlock(other, "foreign");
        b.setInsertPoint(foreign);
        b.ret();
        // "other"'s entry block needs a terminator too.
        b.setInsertPoint(other->entry());
        b.ret();
        b.createFunction("main", 0);
        b.br(foreign); // branch into another function
        module.finalize();
    };
    EXPECT_EXIT(build(), ::testing::ExitedWithCode(1), "cross-function");
}

TEST(Verifier, RejectsArityMismatch)
{
    auto build = [] {
        Module module;
        IRBuilder b(module);
        Function *callee = b.createFunction("callee", 2);
        b.ret();
        b.createFunction("main", 0);
        Instruction call;
        call.op = Opcode::Call;
        call.callee = callee->id();
        call.args = {}; // needs 2
        call.dest = b.currentFunction()->allocReg();
        b.insertBlock()->instructions().push_back(call);
        b.ret();
        module.finalize();
    };
    EXPECT_EXIT(build(), ::testing::ExitedWithCode(1), "arity mismatch");
}

TEST(Verifier, RejectsDuplicateFunctionNames)
{
    auto build = [] {
        Module module;
        module.addFunction("dup", 0);
        module.addFunction("dup", 0);
    };
    EXPECT_EXIT(build(), ::testing::ExitedWithCode(1),
                "duplicate function name");
}

TEST(Verifier, RejectsOutOfRangeRegister)
{
    auto build = [] {
        Module module;
        IRBuilder b(module);
        b.createFunction("main", 0);
        Instruction bad;
        bad.op = Opcode::Output;
        bad.a = 999; // never allocated
        b.insertBlock()->instructions().push_back(bad);
        b.ret();
        module.finalize();
    };
    EXPECT_EXIT(build(), ::testing::ExitedWithCode(1), "out of range");
}

TEST(ParserDiagnostics, ReportsLineNumbers)
{
    EXPECT_EXIT(parseModule("func main() {\n  entry:\n    r0 = @\n}\n"),
                ::testing::ExitedWithCode(1), "line 3");
}

TEST(ParserDiagnostics, RejectsUnknownBlockLabel)
{
    EXPECT_EXIT(
        parseModule("func main() {\n  entry:\n    br nowhere\n}\n"),
        ::testing::ExitedWithCode(1), "unknown block label");
}

TEST(ParserDiagnostics, RejectsUnknownFunction)
{
    EXPECT_EXIT(
        parseModule(
            "func main() {\n  entry:\n    r0 = call ghost()\n    ret\n}\n"),
        ::testing::ExitedWithCode(1), "unknown function");
}

TEST(ParserDiagnostics, RejectsDuplicateLabels)
{
    EXPECT_EXIT(parseModule("func main() {\n  a:\n    ret\n  a:\n    "
                            "ret\n}\n"),
                ::testing::ExitedWithCode(1), "duplicate block label");
}

TEST(ParserDiagnostics, RejectsMissingCloseBrace)
{
    EXPECT_EXIT(parseModule("func main() {\n  entry:\n    ret\n"),
                ::testing::ExitedWithCode(1), "missing '}'");
}

} // namespace
} // namespace oha::ir
