/**
 * @file
 * Parameterized parity tests: the BDD-backed visited set must produce
 * byte-identical slices to the hashed-set implementation on real
 * benchmark modules, for every endpoint, in CI and (budget
 * permitting) CS modes.
 */

#include <gtest/gtest.h>

#include "analysis/slicer.h"
#include "workloads/workloads.h"

namespace oha::analysis {
namespace {

class BddParity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BddParity, SlicesMatchHashedSetImplementation)
{
    const auto workload = workloads::makeSliceWorkload(GetParam(), 1, 1);
    const ir::Module &module = *workload.module;

    for (bool contextSensitive : {false, true}) {
        AndersenOptions options;
        options.contextSensitive = contextSensitive;
        options.maxContexts = 1500;
        const auto pts = runAndersen(module, options);
        if (!pts.completed)
            continue;

        SlicerOptions hashed;
        SlicerOptions bdd;
        bdd.useBddVisitedSet = true;
        const StaticSlicer hashedSlicer(module, pts, hashed);
        const StaticSlicer bddSlicer(module, pts, bdd);

        for (InstrId id = 0; id < module.numInstrs(); ++id) {
            if (module.instr(id).op != ir::Opcode::Output)
                continue;
            const auto a = hashedSlicer.slice(id);
            const auto b = bddSlicer.slice(id);
            EXPECT_EQ(a.instructions, b.instructions)
                << GetParam() << (contextSensitive ? " CS" : " CI")
                << " endpoint " << id;
            EXPECT_EQ(a.nodesVisited, b.nodesVisited);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SliceWorkloads, BddParity,
    ::testing::Values("nginx", "redis", "zlib", "sphinx"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace oha::analysis
