/**
 * @file
 * Trace codec unit tests: the encoded byte stream itself.
 *
 * Pins the payload-free record encoding byte-for-byte (so growing the
 * codec — segments, value payloads — can never silently change the
 * format existing captures and parity baselines rely on), covers the
 * escape-tid (tid >= 31) header path, and round-trips the optional
 * value payload through encode/decode and through a full
 * record-then-replay cycle against a live run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dyn/plans.h"
#include "exec/trace.h"
#include "ir/builder.h"

namespace oha {
namespace {

/** Drain every byte of every segment, in stream order. */
std::vector<std::uint8_t>
allBytes(const exec::TraceStore &store)
{
    std::vector<std::uint8_t> bytes;
    for (std::size_t i = 0; i < store.numSegments(); ++i) {
        exec::SegmentCursor cursor = store.cursor(i);
        while (!cursor.atEnd())
            bytes.push_back(cursor.byte());
    }
    return bytes;
}

ir::Instruction
instrOf(InstrId id, ir::Opcode op)
{
    ir::Instruction ins;
    ins.id = id;
    ins.op = op;
    return ins;
}

TEST(TraceCodec, PayloadFreeEncodingIsByteStable)
{
    // A scripted record sequence with hand-computed expected bytes:
    // any codec change that is not strictly additive breaks this.
    exec::TraceRecorder recorder;
    exec::EventCtx ctx;

    recorder.beginStep();
    recorder.recordThreadStart(0, 0, kNoInstr);

    recorder.beginStep();
    ctx.obj = 3;
    ctx.off = 2;
    recorder.recordEvent(exec::EventClass::Load, 0,
                         instrOf(5, ir::Opcode::Load), ctx);

    recorder.recordBlockEnter(1, 7);

    recorder.beginStep();
    ctx.obj = 3;
    ctx.off = 4;
    recorder.recordEvent(exec::EventClass::Store, 1,
                         instrOf(6, ir::Opcode::Store), ctx);

    recorder.recordThreadFinish(1);

    const exec::TraceStore store = recorder.take();
    const std::vector<std::uint8_t> expected = {
        // thread start, step flag, tid 0: parent 0, site kNoInstr
        0x06, 0x00, 0x00,
        // Load, step flag, tid 0: zigzag(+5), zigzag(+3), off 2
        0x04, 0x0A, 0x06, 0x02,
        // block enter, tid 1: zigzag(+7)
        0x09, 0x0E,
        // Store, step flag, tid 1: zigzag(+1), zigzag(0), off 4
        0x0C, 0x02, 0x00, 0x04,
        // thread finish, tid 1
        0x0B,
    };
    EXPECT_EQ(allBytes(store), expected);

    ASSERT_EQ(store.numSegments(), 1u);
    const exec::SegmentHeader &header = store.header(0);
    EXPECT_EQ(header.records, 5u);
    EXPECT_EQ(header.steps, 3u);
    EXPECT_EQ(header.tidBitmap, 0b11u);
    EXPECT_EQ(header.firstInstr, 5u);
    EXPECT_EQ(header.lastInstr, 6u);
    EXPECT_EQ(header.bytes, expected.size());
    EXPECT_EQ(header.flags, 0);
    EXPECT_FALSE(store.spilled());
    EXPECT_EQ(store.sizeBytes(), expected.size());
}

TEST(TraceCodec, EscapeTidRoundTrips)
{
    // tid 30 fits the 5-bit header field; 31 is the escape marker
    // itself and must be escaped; 300 needs a multi-byte varint.
    const ThreadId tids[] = {30, 31, 32, 300};
    exec::TraceRecorder recorder;
    for (const ThreadId tid : tids)
        recorder.recordThreadFinish(tid);
    const exec::TraceStore store = recorder.take();

    // 30 -> 1 header byte; 31 and 32 -> header + 1 varint byte;
    // 300 -> header + 2 varint bytes.
    EXPECT_EQ(store.sizeBytes(), 1u + 2u + 2u + 3u);

    exec::SegmentCursor cursor = store.cursor(0);
    for (const ThreadId expected : tids) {
        const std::uint8_t header = cursor.byte();
        EXPECT_EQ(header & 3, exec::TraceRecorder::kThreadFinish);
        ThreadId tid = header >> 3;
        if (tid == exec::TraceRecorder::kTidEscape)
            tid = static_cast<ThreadId>(cursor.varint());
        EXPECT_EQ(tid, expected);
    }
    EXPECT_TRUE(cursor.atEnd());
}

TEST(TraceCodec, ValuePayloadRoundTripsAllKinds)
{
    const exec::Value values[] = {
        exec::Value::scalar(-7),
        exec::Value::scalar(1'000'000'007),
        exec::Value::pointer(9, 5),
        exec::Value::funcPtr(3),
        exec::Value::thread(2),
    };

    exec::TraceStoreOptions options;
    options.captureValues = true;
    exec::TraceRecorder recorder(options);
    exec::EventCtx ctx;
    InstrId id = 10;
    for (const exec::Value &value : values) {
        recorder.beginStep();
        ctx.obj = 1;
        ctx.off = 0;
        ctx.value = value;
        recorder.recordEvent(exec::EventClass::Load, 0,
                             instrOf(id++, ir::Opcode::Load), ctx);
    }
    const exec::TraceStore store = recorder.take();
    ASSERT_EQ(store.numSegments(), 1u);
    EXPECT_TRUE(store.header(0).flags & exec::SegmentHeader::kFlagHasValues);

    exec::SegmentCursor cursor = store.cursor(0);
    for (const exec::Value &expected : values) {
        const std::uint8_t header = cursor.byte();
        EXPECT_EQ(header & 3, exec::TraceRecorder::kInstrEvent);
        cursor.zigzag(); // instr delta
        cursor.zigzag(); // obj delta
        cursor.varint(); // off
        const exec::Value decoded = exec::decodeTraceValue(cursor);
        EXPECT_EQ(decoded.kind, expected.kind);
        EXPECT_EQ(decoded.num, expected.num);
        EXPECT_EQ(decoded.obj, expected.obj);
        EXPECT_EQ(decoded.off, expected.off);
        EXPECT_EQ(decoded.idx, expected.idx);
    }
    EXPECT_TRUE(cursor.atEnd());
}

/** Tool that remembers every Load/Store value it is shown. */
struct ValueSpy : exec::Tool
{
    std::vector<std::pair<InstrId, exec::Value>> seen;

    void
    onEvent(const exec::EventCtx &ctx) override
    {
        if (ctx.instr->op == ir::Opcode::Load ||
            ctx.instr->op == ir::Opcode::Store)
            seen.push_back({ctx.instr->id, ctx.value});
    }
};

TEST(TraceCodec, ValueCapturingReplayDeliversLiveValues)
{
    // The documented PR-4 gap: a value-consuming tool used to force a
    // live run.  With captureValues, replay hands the tool the exact
    // loaded/stored Values the interpreter saw.
    using namespace ir;
    Module module;
    IRBuilder b(module);
    b.createFunction("main", 0);
    const Reg ptr = b.alloc(2);
    b.store(ptr, b.constInt(42));
    b.store(b.gep(ptr, 1), b.add(b.load(ptr), b.constInt(1)));
    b.output(b.load(b.gep(ptr, 1)));
    b.ret();
    module.finalize();

    exec::ExecConfig config;
    const auto plan = dyn::fullFastTrackPlan(module);

    ValueSpy live;
    exec::Interpreter interp(module, config);
    interp.attach(&live, &plan);
    interp.run();
    ASSERT_FALSE(live.seen.empty());

    exec::TraceStoreOptions options;
    options.captureValues = true;
    const exec::RecordedTrace trace =
        exec::recordRun(module, config, options);

    ValueSpy replayed;
    exec::TraceReplayer replayer(module, trace);
    replayer.attach(&replayed, &plan);
    replayer.run();

    ASSERT_EQ(live.seen.size(), replayed.seen.size());
    for (std::size_t i = 0; i < live.seen.size(); ++i) {
        EXPECT_EQ(live.seen[i].first, replayed.seen[i].first);
        const exec::Value &a = live.seen[i].second;
        const exec::Value &b2 = replayed.seen[i].second;
        EXPECT_EQ(a.kind, b2.kind);
        EXPECT_EQ(a.num, b2.num);
        EXPECT_EQ(a.obj, b2.obj);
        EXPECT_EQ(a.off, b2.off);
        EXPECT_EQ(a.idx, b2.idx);
    }

    // The payload costs bytes only when asked for: the same execution
    // captured without values keeps the PR-4 encoding (and is
    // strictly smaller).
    const exec::RecordedTrace plain = exec::recordRun(module, config);
    EXPECT_LT(plain.events.sizeBytes(), trace.events.sizeBytes());
    EXPECT_EQ(plain.events.header(0).flags &
                  exec::SegmentHeader::kFlagHasValues,
              0);
}

} // namespace
} // namespace oha
