/**
 * @file
 * Tests for the static backward slicer: data-flow closure, flow
 * sensitivity, interprocedural edges, context sensitivity, predicated
 * pruning and BDD/bitset visited-set parity.
 */

#include <gtest/gtest.h>

#include "analysis/slicer.h"
#include "ir/builder.h"

namespace oha::analysis {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::IRBuilder;
using ir::Module;
using ir::Opcode;
using ir::Reg;

InstrId
firstOutput(const Module &module)
{
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == Opcode::Output)
            return id;
    OHA_PANIC("no output instruction");
}

/** Instruction defining register @p reg in @p func (first one). */
InstrId
defOf(const Module &module, FuncId func, Reg reg)
{
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        const auto &ins = module.instr(id);
        if (ins.func == func && ins.dest == reg)
            return id;
    }
    OHA_PANIC("no def found");
}

StaticSliceResult
sliceOf(const Module &module, InstrId endpoint, bool cs = false,
        const inv::InvariantSet *invariants = nullptr, bool bdd = false)
{
    AndersenOptions aopts;
    aopts.contextSensitive = cs;
    aopts.invariants = invariants;
    const AndersenResult andersen = runAndersen(module, aopts);
    SlicerOptions sopts;
    sopts.invariants = invariants;
    sopts.useBddVisitedSet = bdd;
    StaticSlicer slicer(module, andersen, sopts);
    return slicer.slice(endpoint);
}

TEST(StaticSlicer, StraightLineDataFlow)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    const Reg a = b.constInt(1);
    const Reg z = b.constInt(99); // irrelevant
    const Reg c = b.add(a, a);
    b.output(c);
    b.output(z); // second output keeps z live in the program
    b.ret();
    module.finalize();

    const InstrId endpoint = firstOutput(module);
    const auto result = sliceOf(module, endpoint);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.instructions.count(endpoint));
    EXPECT_TRUE(result.instructions.count(defOf(module, main->id(), a)));
    EXPECT_TRUE(result.instructions.count(defOf(module, main->id(), c)));
    EXPECT_FALSE(result.instructions.count(defOf(module, main->id(), z)));
}

TEST(StaticSlicer, MemoryDependenceRespectsFields)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    const Reg buf = b.alloc(2);
    const Reg v0 = b.constInt(10);
    const Reg v1 = b.constInt(20);
    b.store(b.gep(buf, 0), v0);
    b.store(b.gep(buf, 1), v1);
    b.output(b.load(b.gep(buf, 0)));
    b.ret();
    module.finalize();

    const auto result = sliceOf(module, firstOutput(module));
    EXPECT_TRUE(result.instructions.count(defOf(module, main->id(), v0)));
    EXPECT_FALSE(result.instructions.count(defOf(module, main->id(), v1)));
}

TEST(StaticSlicer, FlowSensitivityExcludesLaterStores)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    const Reg buf = b.alloc(1);
    const Reg early = b.constInt(1);
    const Reg late = b.constInt(2);
    b.store(buf, early);
    const Reg got = b.load(buf);
    b.store(buf, late); // after the load: cannot feed it
    b.output(got);
    b.ret();
    module.finalize();

    const auto result = sliceOf(module, firstOutput(module));
    EXPECT_TRUE(result.instructions.count(defOf(module, main->id(), early)));
    EXPECT_FALSE(result.instructions.count(defOf(module, main->id(), late)));
}

TEST(StaticSlicer, LoopKeepsBackEdgeStores)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    BasicBlock *loop = b.createBlock(main, "loop");
    BasicBlock *out = b.createBlock(main, "out");
    const Reg buf = b.alloc(1);
    b.br(loop);
    b.setInsertPoint(loop);
    const Reg got = b.load(buf);
    const Reg next = b.add(got, got);
    b.store(buf, next); // textually after the load, but loops back
    b.condBr(b.input(0), loop, out);
    b.setInsertPoint(out);
    b.output(got);
    b.ret();
    module.finalize();

    const auto result = sliceOf(module, firstOutput(module));
    EXPECT_TRUE(result.instructions.count(defOf(module, main->id(), next)));
}

TEST(StaticSlicer, InterproceduralThroughCall)
{
    Module module;
    IRBuilder b(module);
    Function *twice = b.createFunction("twice", 1);
    const Reg doubled = b.add(0, 0);
    b.ret(doubled);
    Function *main = b.createFunction("main", 0);
    const Reg seed = b.input(0);
    const Reg unused = b.constInt(5);
    const Reg r = b.call(twice, {seed});
    b.output(r);
    b.ret();
    module.finalize();

    const auto result = sliceOf(module, firstOutput(module));
    EXPECT_TRUE(
        result.instructions.count(defOf(module, twice->id(), doubled)));
    EXPECT_TRUE(result.instructions.count(defOf(module, main->id(), seed)));
    EXPECT_FALSE(
        result.instructions.count(defOf(module, main->id(), unused)));
}

TEST(StaticSlicer, JoinPullsThreadComputation)
{
    Module module;
    IRBuilder b(module);
    Function *worker = b.createFunction("worker", 1);
    const Reg sq = b.mul(0, 0);
    b.ret(sq);
    Function *main = b.createFunction("main", 0);
    const Reg x = b.input(0);
    const Reg h = b.spawn(worker, {x});
    b.output(b.join(h));
    b.ret();
    module.finalize();

    const auto result = sliceOf(module, firstOutput(module));
    EXPECT_TRUE(result.instructions.count(defOf(module, worker->id(), sq)));
    EXPECT_TRUE(result.instructions.count(defOf(module, main->id(), x)));
}

/** Two independent chains through a shared helper: CI conflates them,
 *  CS separates them (the Figure 3 scenario for slicing). */
struct TwoChainProgram
{
    Module module;
    Function *main = nullptr;
    Reg relevantSeed = 0;
    Reg irrelevantSeed = 0;
    InstrId endpoint = kNoInstr;
};

void
buildTwoChains(TwoChainProgram &prog)
{
    IRBuilder b(prog.module);
    Function *box = b.createFunction("box", 1);
    {
        const Reg cell = b.alloc(1);
        b.store(cell, 0);
        b.ret(cell);
    }
    prog.main = b.createFunction("main", 0);
    prog.relevantSeed = b.input(0);
    prog.irrelevantSeed = b.input(1);
    const Reg boxA = b.call(box, {prog.relevantSeed});
    const Reg boxB = b.call(box, {prog.irrelevantSeed});
    (void)boxB;
    b.output(b.load(boxA));
    b.ret();
    prog.module.finalize();
    prog.endpoint = firstOutput(prog.module);
}

TEST(StaticSlicer, ContextInsensitiveConflatesChains)
{
    TwoChainProgram prog;
    buildTwoChains(prog);
    const auto ci = sliceOf(prog.module, prog.endpoint, false);
    // CI merges the two boxes: the irrelevant seed leaks into the
    // slice.
    EXPECT_TRUE(ci.instructions.count(
        defOf(prog.module, prog.main->id(), prog.irrelevantSeed)));
}

TEST(StaticSlicer, ContextSensitiveSeparatesChains)
{
    TwoChainProgram prog;
    buildTwoChains(prog);
    const auto cs = sliceOf(prog.module, prog.endpoint, true);
    ASSERT_TRUE(cs.completed);
    EXPECT_TRUE(cs.instructions.count(
        defOf(prog.module, prog.main->id(), prog.relevantSeed)));
    EXPECT_FALSE(cs.instructions.count(
        defOf(prog.module, prog.main->id(), prog.irrelevantSeed)));

    const auto ci = sliceOf(prog.module, prog.endpoint, false);
    EXPECT_LT(cs.instructions.size(), ci.instructions.size());
}

TEST(StaticSlicer, LucShrinksSlice)
{
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    BasicBlock *cold = b.createBlock(main, "cold");
    BasicBlock *done = b.createBlock(main, "done");
    const Reg buf = b.alloc(1);
    const Reg hot = b.constInt(7);
    b.store(buf, hot);
    b.condBr(b.input(0), cold, done);
    b.setInsertPoint(cold);
    const Reg coldV = b.constInt(13);
    b.store(buf, coldV);
    b.br(done);
    b.setInsertPoint(done);
    b.output(b.load(buf));
    b.ret();
    module.finalize();

    const auto sound = sliceOf(module, firstOutput(module));
    EXPECT_TRUE(
        sound.instructions.count(defOf(module, main->id(), coldV)));

    inv::InvariantSet inv;
    inv.numBlocks = static_cast<std::uint32_t>(module.numBlocks());
    for (BlockId blk = 0; blk < module.numBlocks(); ++blk)
        inv.visitedBlocks.insert(blk);
    inv.visitedBlocks.erase(cold->id());

    AndersenOptions aopts;
    aopts.invariants = &inv;
    const AndersenResult andersen = runAndersen(module, aopts);
    SlicerOptions sopts;
    sopts.invariants = &inv;
    StaticSlicer slicer(module, andersen, sopts);
    const auto optimistic = slicer.slice(firstOutput(module));

    EXPECT_FALSE(
        optimistic.instructions.count(defOf(module, main->id(), coldV)));
    EXPECT_LT(optimistic.instructions.size(), sound.instructions.size());
}

TEST(StaticSlicer, CalleeSetsShrinkIcallSlice)
{
    Module module;
    IRBuilder b(module);
    Function *cheap = b.createFunction("cheap", 0);
    const Reg one = b.constInt(1);
    b.ret(one);
    Function *pricey = b.createFunction("pricey", 0);
    const Reg big = b.mul(b.constInt(1000), b.constInt(1000));
    b.ret(big);
    b.createFunction("main", 0);
    const Reg table = b.alloc(2);
    b.store(b.gep(table, 0), b.funcAddr(cheap));
    b.store(b.gep(table, 1), b.funcAddr(pricey));
    const Reg fp = b.load(b.gepDyn(table, b.input(0)));
    b.output(b.icall(fp, {}));
    b.ret();
    module.finalize();

    const auto sound = sliceOf(module, firstOutput(module));
    EXPECT_TRUE(sound.instructions.count(defOf(module, pricey->id(), big)));

    inv::InvariantSet inv;
    inv.numBlocks = static_cast<std::uint32_t>(module.numBlocks());
    for (BlockId blk = 0; blk < module.numBlocks(); ++blk)
        inv.visitedBlocks.insert(blk);
    InstrId icall = kNoInstr;
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == Opcode::ICall)
            icall = id;
    inv.calleeSets[icall] = {cheap->id()};

    const auto optimistic =
        sliceOf(module, firstOutput(module), false, &inv);
    EXPECT_TRUE(
        optimistic.instructions.count(defOf(module, cheap->id(), one)));
    EXPECT_FALSE(
        optimistic.instructions.count(defOf(module, pricey->id(), big)));
}

TEST(StaticSlicer, BddVisitedSetMatchesBitset)
{
    TwoChainProgram prog;
    buildTwoChains(prog);
    const auto bitset = sliceOf(prog.module, prog.endpoint, true, nullptr,
                                /*bdd=*/false);
    const auto bdd = sliceOf(prog.module, prog.endpoint, true, nullptr,
                             /*bdd=*/true);
    EXPECT_EQ(bitset.instructions, bdd.instructions);
    EXPECT_EQ(bitset.nodesVisited, bdd.nodesVisited);
}

TEST(StaticSlicer, SliceIsClosedUnderItsOwnDependencies)
{
    // Property: re-slicing from any instruction inside a slice stays
    // inside the slice (backward closure).
    TwoChainProgram prog;
    buildTwoChains(prog);

    AndersenOptions aopts;
    const AndersenResult andersen = runAndersen(prog.module, aopts);
    StaticSlicer slicer(prog.module, andersen, {});
    const auto full = slicer.slice(prog.endpoint);
    for (InstrId inner : full.instructions) {
        const auto sub = slicer.slice(inner);
        for (InstrId id : sub.instructions) {
            EXPECT_TRUE(full.instructions.count(id))
                << "instruction " << id << " escapes the closure via "
                << inner;
        }
    }
}

} // namespace
} // namespace oha::analysis
