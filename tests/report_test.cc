/**
 * @file
 * Tests for the reporting module: paper references, markdown row
 * rendering and soundness flagging.
 */

#include <gtest/gtest.h>

#include "core/report.h"

namespace oha::core {
namespace {

TEST(Report, PaperReferencesCoverEveryBenchmark)
{
    for (const auto &name : workloads::raceWorkloadNames()) {
        const auto ref = paperReference(name);
        const bool kernel = [&] {
            for (const auto &k : workloads::raceFreeKernelNames())
                if (k == name)
                    return true;
            return false;
        }();
        if (!kernel) {
            EXPECT_GT(ref.speedupVsFastTrack, 0) << name;
            EXPECT_GT(ref.speedupVsHybrid, 0) << name;
        }
    }
    for (const auto &name : workloads::sliceWorkloadNames())
        EXPECT_GT(paperReference(name).sliceSpeedup, 0) << name;
    EXPECT_EQ(paperReference("nonesuch").sliceSpeedup, 0);
}

TEST(Report, OptFtRowMentionsPaperNumbers)
{
    OptFtResult result;
    result.name = "lusearch";
    result.fastTrack.base = 1;
    result.fastTrack.analysis = 8;
    result.hybridFt.base = 1;
    result.hybridFt.analysis = 3;
    result.optFt.base = 1;
    result.optFt.analysis = 0.5;
    result.speedupVsFastTrack = 6.0;
    result.speedupVsHybrid = 2.7;
    const std::string row = markdownRow(result);
    EXPECT_NE(row.find("lusearch"), std::string::npos);
    EXPECT_NE(row.find("paper 6.3x"), std::string::npos);
    EXPECT_NE(row.find("paper 3.0x"), std::string::npos);
    EXPECT_EQ(row.find("MISMATCH"), std::string::npos);
}

TEST(Report, MismatchIsFlaggedLoudly)
{
    OptFtResult result;
    result.name = "pmd";
    result.fastTrack.base = 1;
    result.hybridFt.base = 1;
    result.optFt.base = 1;
    result.raceReportsMatch = false;
    EXPECT_NE(markdownRow(result).find("MISMATCH"), std::string::npos);

    OptSliceResult slice;
    slice.name = "vim";
    slice.hybrid.base = 1;
    slice.optimistic.base = 1;
    slice.sliceResultsMatch = false;
    EXPECT_NE(markdownRow(slice).find("MISMATCH"), std::string::npos);
}

TEST(Report, SuiteReportHasBothSections)
{
    ReportOptions options;
    options.profileRuns = 2;
    options.raceTestRuns = 2;
    options.sliceTestRuns = 2;
    options.includeRaceSuite = true;
    options.includeSliceSuite = false; // keep the test fast
    const std::string race = generateSuiteReport(options);
    EXPECT_NE(race.find("Race detection"), std::string::npos);
    EXPECT_NE(race.find("lusearch"), std::string::npos);
    EXPECT_EQ(race.find("Dynamic slicing"), std::string::npos);
    EXPECT_EQ(race.find("MISMATCH"), std::string::npos)
        << "soundness must hold even with tiny corpora";
}

} // namespace
} // namespace oha::core
