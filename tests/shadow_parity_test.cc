/**
 * @file
 * Pre/post-overhaul parity for the flat shadow-state storage.
 *
 * The shadow-memory overhaul (flat_map shadow cells, dense lock /
 * reader tables, CSR trace arena, recycled frame register slots)
 * must be a pure representation change: on every workload, the
 * FastTrack race reports and the Giri slice sets must be identical
 * to what the original map-based implementations produce.  The
 * originals are preserved here as reference tools and attached to
 * the very same deterministic run as the production tools, so both
 * observe the same event stream and any divergence is the storage
 * change itself.  Batches run at 1 and 4 worker threads and their
 * results are compared, pinning runBatch's thread-count invariance
 * for tool-carrying jobs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>

#include "dyn/fasttrack.h"
#include "dyn/giri.h"
#include "dyn/plans.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

namespace oha {
namespace {

/** The pre-overhaul FastTrack: map-based shadow state, verbatim. */
class RefFastTrack : public exec::Tool
{
  public:
    void
    onEvent(const exec::EventCtx &ctx) override
    {
        switch (ctx.instr->op) {
          case ir::Opcode::Load:
            read(ctx.tid, ctx);
            break;
          case ir::Opcode::Store:
            write(ctx.tid, ctx);
            break;
          case ir::Opcode::Lock:
            clockOf(ctx.tid).join(locks_[ctx.obj]);
            break;
          case ir::Opcode::Unlock:
            locks_[ctx.obj] = clockOf(ctx.tid);
            clockOf(ctx.tid).incr(ctx.tid);
            break;
          case ir::Opcode::Spawn:
            break;
          case ir::Opcode::Join:
            clockOf(ctx.tid).join(clockOf(ctx.otherTid));
            break;
          default:
            break;
        }
    }

    void
    onThreadStart(ThreadId tid, ThreadId parent,
                  InstrId spawnSite) override
    {
        const ThreadId high =
            spawnSite != kNoInstr ? std::max(tid, parent) : tid;
        if (high >= threads_.size())
            threads_.resize(high + 1);
        VectorClock &clock = threads_[tid];
        if (spawnSite != kNoInstr) {
            clock.join(threads_[parent]);
            threads_[parent].incr(parent);
        }
        clock.incr(tid);
    }

    const std::set<dyn::RaceReport> &races() const { return races_; }

    std::uint64_t readSlowPathUpdates() const
    {
        return readSlowPathUpdates_;
    }

  private:
    struct VarState
    {
        Epoch write;
        Epoch read;
        VectorClock readVC;
        bool sharedRead = false;
        InstrId lastWriteInstr = kNoInstr;
        InstrId lastReadInstr = kNoInstr;
        std::map<ThreadId, InstrId> readInstrByTid;
    };

    static std::uint64_t
    addrKey(exec::ObjectId obj, std::uint32_t off)
    {
        return (static_cast<std::uint64_t>(obj) << 32) | off;
    }

    VectorClock &
    clockOf(ThreadId tid)
    {
        if (tid >= threads_.size())
            threads_.resize(tid + 1);
        return threads_[tid];
    }

    void
    report(InstrId prev, InstrId cur, const exec::EventCtx &ctx)
    {
        if (prev == kNoInstr)
            return;
        races_.insert({std::min(prev, cur), std::max(prev, cur), ctx.obj,
                       ctx.off});
    }

    void
    read(ThreadId tid, const exec::EventCtx &ctx)
    {
        VarState &var = vars_[addrKey(ctx.obj, ctx.off)];
        const VectorClock &clock = clockOf(tid);
        const Epoch now = clock.epochOf(tid);

        if (!var.sharedRead && var.read == now)
            return;
        if (var.sharedRead && var.readVC.get(tid) == now.clock())
            return;

        if (!clock.covers(var.write) && var.write.clock() != 0)
            report(var.lastWriteInstr, ctx.instr->id, ctx);

        if (var.sharedRead) {
            ++readSlowPathUpdates_;
            var.readVC.set(tid, now.clock());
            var.readInstrByTid[tid] = ctx.instr->id;
        } else if (clock.covers(var.read) || var.read.clock() == 0) {
            var.read = now;
        } else {
            ++readSlowPathUpdates_;
            var.sharedRead = true;
            var.readVC.set(var.read.tid(), var.read.clock());
            var.readVC.set(tid, now.clock());
            var.readInstrByTid[var.read.tid()] = var.lastReadInstr;
            var.readInstrByTid[tid] = ctx.instr->id;
        }
        var.lastReadInstr = ctx.instr->id;
    }

    void
    write(ThreadId tid, const exec::EventCtx &ctx)
    {
        VarState &var = vars_[addrKey(ctx.obj, ctx.off)];
        const VectorClock &clock = clockOf(tid);
        const Epoch now = clock.epochOf(tid);

        if (var.write == now)
            return;

        if (!clock.covers(var.write) && var.write.clock() != 0)
            report(var.lastWriteInstr, ctx.instr->id, ctx);

        if (var.sharedRead) {
            for (std::size_t t = 0; t < var.readVC.size(); ++t) {
                const auto readerTid = static_cast<ThreadId>(t);
                const Epoch reader(readerTid, var.readVC.get(readerTid));
                if (reader.clock() != 0 && !clock.covers(reader)) {
                    auto it = var.readInstrByTid.find(readerTid);
                    report(it != var.readInstrByTid.end()
                               ? it->second
                               : var.lastReadInstr,
                           ctx.instr->id, ctx);
                }
            }
            var.sharedRead = false;
            var.readVC = VectorClock();
            var.read = Epoch::none();
            var.readInstrByTid.clear();
        } else if (var.read.clock() != 0 && !clock.covers(var.read)) {
            report(var.lastReadInstr, ctx.instr->id, ctx);
        }
        var.write = now;
        var.lastWriteInstr = ctx.instr->id;
    }

    std::vector<VectorClock> threads_;
    std::unordered_map<exec::ObjectId, VectorClock> locks_;
    std::unordered_map<std::uint64_t, VarState> vars_;
    std::set<dyn::RaceReport> races_;
    std::uint64_t readSlowPathUpdates_ = 0;
};

/** The pre-overhaul Giri slicer: per-entry deps vectors (duplicates
 *  kept), hash-map register/memory definitions, verbatim. */
class RefGiri : public exec::Tool
{
  public:
    explicit RefGiri(const ir::Module &module) : module_(module) {}

    void
    onEvent(const exec::EventCtx &ctx) override
    {
        using ir::Opcode;
        const ir::Instruction &ins = *ctx.instr;

        std::vector<std::uint32_t> deps;
        ins.usedRegs(uses_);
        for (ir::Reg reg : uses_)
            deps.push_back(lookupReg(ctx.frameId, reg));

        switch (ins.op) {
          case Opcode::Load: {
            auto it = memDef_.find(addrKey(ctx.obj, ctx.off));
            if (it != memDef_.end())
                deps.push_back(it->second);
            const std::uint32_t entry = append(ins.id, std::move(deps));
            regDef_[slotKey(ctx.frameId, ins.dest)] = entry;
            break;
          }
          case Opcode::Store: {
            const std::uint32_t entry = append(ins.id, std::move(deps));
            memDef_[addrKey(ctx.obj, ctx.off)] = entry;
            break;
          }
          case Opcode::Call:
          case Opcode::ICall: {
            const std::uint32_t entry = append(ins.id, std::move(deps));
            const ir::Function *callee =
                module_.function(ctx.calleeResolved);
            for (ir::Reg p = 0; p < callee->numParams(); ++p)
                regDef_[slotKey(ctx.frame2, p)] = entry;
            break;
          }
          case Opcode::Spawn: {
            const std::uint32_t entry = append(ins.id, std::move(deps));
            const ir::Function *callee = module_.function(ins.callee);
            for (ir::Reg p = 0; p < callee->numParams(); ++p)
                regDef_[slotKey(ctx.frame2, p)] = entry;
            if (ins.dest != ir::kNoReg)
                regDef_[slotKey(ctx.frameId, ins.dest)] = entry;
            break;
          }
          case Opcode::Ret: {
            const std::uint32_t entry = append(ins.id, std::move(deps));
            if (ctx.callInstr) {
                if (ctx.callInstr->dest != ir::kNoReg)
                    regDef_[slotKey(ctx.frame2, ctx.callInstr->dest)] =
                        entry;
            } else {
                threadRet_[ctx.tid] = entry;
            }
            break;
          }
          case Opcode::Join: {
            auto it = threadRet_.find(ctx.otherTid);
            if (it != threadRet_.end())
                deps.push_back(it->second);
            const std::uint32_t entry = append(ins.id, std::move(deps));
            if (ins.dest != ir::kNoReg)
                regDef_[slotKey(ctx.frameId, ins.dest)] = entry;
            break;
          }
          case Opcode::Output: {
            const std::uint32_t entry = append(ins.id, std::move(deps));
            outputs_[ins.id].push_back(entry);
            break;
          }
          case Opcode::Br:
          case Opcode::CondBr:
            break;
          default: {
            const std::uint32_t entry = append(ins.id, std::move(deps));
            if (ins.dest != ir::kNoReg)
                regDef_[slotKey(ctx.frameId, ins.dest)] = entry;
            break;
          }
        }
    }

    std::set<InstrId>
    slice(InstrId endpoint) const
    {
        std::set<InstrId> result;
        auto it = outputs_.find(endpoint);
        if (it == outputs_.end())
            return result;

        std::vector<bool> visited(trace_.size(), false);
        std::deque<std::uint32_t> work;
        for (std::uint32_t entry : it->second) {
            visited[entry] = true;
            work.push_back(entry);
        }
        while (!work.empty()) {
            const std::uint32_t cur = work.front();
            work.pop_front();
            result.insert(trace_[cur].instr);
            for (std::uint32_t dep : trace_[cur].deps) {
                if (!visited[dep]) {
                    visited[dep] = true;
                    work.push_back(dep);
                }
            }
        }
        return result;
    }

    std::uint64_t traceLength() const { return trace_.size(); }
    std::uint64_t missingDependencies() const { return missing_; }

  private:
    static constexpr std::uint32_t kNoEntry =
        static_cast<std::uint32_t>(-1);

    struct TraceEntry
    {
        InstrId instr;
        std::vector<std::uint32_t> deps;
    };

    static std::uint64_t
    addrKey(exec::ObjectId obj, std::uint32_t off)
    {
        return (static_cast<std::uint64_t>(obj) << 32) | off;
    }

    static std::uint64_t
    slotKey(std::uint64_t frameId, ir::Reg reg)
    {
        return frameId * 0x10000 + reg;
    }

    std::uint32_t
    lookupReg(std::uint64_t frameId, ir::Reg reg)
    {
        auto it = regDef_.find(slotKey(frameId, reg));
        if (it == regDef_.end()) {
            ++missing_;
            return kNoEntry;
        }
        return it->second;
    }

    std::uint32_t
    append(InstrId instr, std::vector<std::uint32_t> deps)
    {
        deps.erase(std::remove(deps.begin(), deps.end(), kNoEntry),
                   deps.end());
        trace_.push_back({instr, std::move(deps)});
        return static_cast<std::uint32_t>(trace_.size() - 1);
    }

    const ir::Module &module_;
    std::vector<TraceEntry> trace_;
    std::vector<ir::Reg> uses_;
    std::unordered_map<std::uint64_t, std::uint32_t> regDef_;
    std::unordered_map<std::uint64_t, std::uint32_t> memDef_;
    std::unordered_map<ThreadId, std::uint32_t> threadRet_;
    std::map<InstrId, std::vector<std::uint32_t>> outputs_;
    std::uint64_t missing_ = 0;
};

using RaceKey = std::tuple<InstrId, InstrId, exec::ObjectId, std::uint32_t>;

std::vector<RaceKey>
raceKeys(const std::set<dyn::RaceReport> &races)
{
    std::vector<RaceKey> keys;
    keys.reserve(races.size());
    for (const dyn::RaceReport &race : races)
        keys.push_back({race.first, race.second, race.obj, race.off});
    return keys;
}

/** Per-workload FastTrack comparison, one entry per testing run. */
struct FtParity
{
    std::string name;
    std::vector<std::vector<RaceKey>> refRaces, newRaces;
    std::vector<std::uint64_t> refSlow, newSlow;

    bool
    operator==(const FtParity &other) const
    {
        return name == other.name && refRaces == other.refRaces &&
               newRaces == other.newRaces && refSlow == other.refSlow &&
               newSlow == other.newSlow;
    }
};

FtParity
runFastTrackParity(const std::string &name)
{
    FtParity out;
    out.name = name;
    const auto workload = workloads::makeRaceWorkload(name, 1, 3);
    const auto plan = dyn::fullFastTrackPlan(*workload.module);
    for (const exec::ExecConfig &config : workload.testingSet) {
        RefFastTrack ref;
        dyn::FastTrack now;
        exec::Interpreter interp(*workload.module, config);
        interp.attach(&ref, &plan);
        interp.attach(&now, &plan);
        interp.run();
        out.refRaces.push_back(raceKeys(ref.races()));
        out.newRaces.push_back(raceKeys(now.races()));
        out.refSlow.push_back(ref.readSlowPathUpdates());
        out.newSlow.push_back(now.readSlowPathUpdates());
    }
    return out;
}

/** Per-workload Giri comparison, one entry per testing run. */
struct GiriParity
{
    std::string name;
    std::vector<std::vector<std::pair<InstrId, std::set<InstrId>>>>
        refSlices, newSlices;
    std::vector<std::uint64_t> refTrace, newTrace;
    std::vector<std::uint64_t> refMissing, newMissing;

    bool
    operator==(const GiriParity &other) const
    {
        return name == other.name && refSlices == other.refSlices &&
               newSlices == other.newSlices &&
               refTrace == other.refTrace &&
               newTrace == other.newTrace &&
               refMissing == other.refMissing &&
               newMissing == other.newMissing;
    }
};

GiriParity
runGiriParity(const std::string &name)
{
    GiriParity out;
    out.name = name;
    const auto workload = workloads::makeSliceWorkload(name, 1, 3);
    const auto plan = dyn::fullGiriPlan(*workload.module);
    for (const exec::ExecConfig &config : workload.testingSet) {
        RefGiri ref(*workload.module);
        dyn::GiriSlicer now(*workload.module);
        exec::Interpreter interp(*workload.module, config);
        interp.attach(&ref, &plan);
        interp.attach(&now, &plan);
        const auto result = interp.run();

        std::set<InstrId> endpoints;
        for (const auto &[instr, value] : result.outputs)
            endpoints.insert(instr);
        std::vector<std::pair<InstrId, std::set<InstrId>>> refS, newS;
        for (InstrId endpoint : endpoints) {
            refS.push_back({endpoint, ref.slice(endpoint)});
            newS.push_back({endpoint, now.slice(endpoint)});
        }
        out.refSlices.push_back(std::move(refS));
        out.newSlices.push_back(std::move(newS));
        out.refTrace.push_back(ref.traceLength());
        out.newTrace.push_back(now.traceLength());
        out.refMissing.push_back(ref.missingDependencies());
        out.newMissing.push_back(now.missingDependencies());
    }
    return out;
}

TEST(ShadowParity, FastTrackRaceReportsIdentical)
{
    const auto &names = workloads::raceWorkloadNames();
    const auto serial = support::runBatch(
        names.size(), [&](std::size_t i) {
            return runFastTrackParity(names[i]);
        },
        1);
    std::size_t totalRaces = 0;
    for (const FtParity &parity : serial) {
        EXPECT_EQ(parity.refRaces, parity.newRaces)
            << "race reports diverged on " << parity.name;
        EXPECT_EQ(parity.refSlow, parity.newSlow)
            << "read slow-path accounting diverged on " << parity.name;
        for (const auto &run : parity.refRaces)
            totalRaces += run.size();
    }
    // Sanity: the racy suite must actually report races, or the
    // comparison above is vacuous.
    EXPECT_GT(totalRaces, 0u);

    // The same batch at 4 workers must produce the same results in
    // the same index order.
    const auto parallel = support::runBatch(
        names.size(), [&](std::size_t i) {
            return runFastTrackParity(names[i]);
        },
        4);
    EXPECT_TRUE(serial == parallel)
        << "FastTrack parity batch differs between 1 and 4 threads";
}

TEST(ShadowParity, GiriSliceSetsIdentical)
{
    const auto &names = workloads::sliceWorkloadNames();
    const auto serial = support::runBatch(
        names.size(), [&](std::size_t i) {
            return runGiriParity(names[i]);
        },
        1);
    std::size_t totalEndpoints = 0;
    for (const GiriParity &parity : serial) {
        EXPECT_EQ(parity.refSlices, parity.newSlices)
            << "slice sets diverged on " << parity.name;
        EXPECT_EQ(parity.refTrace, parity.newTrace)
            << "trace length diverged on " << parity.name;
        EXPECT_EQ(parity.refMissing, parity.newMissing)
            << "missing-dependency count diverged on " << parity.name;
        for (const auto &run : parity.refSlices)
            totalEndpoints += run.size();
    }
    EXPECT_GT(totalEndpoints, 0u) << "no slice endpoints exercised";

    const auto parallel = support::runBatch(
        names.size(), [&](std::size_t i) {
            return runGiriParity(names[i]);
        },
        4);
    EXPECT_TRUE(serial == parallel)
        << "Giri parity batch differs between 1 and 4 threads";
}

} // namespace
} // namespace oha
