/**
 * @file
 * Record-once/analyze-many parity: driving FastTrack, Giri and the
 * invariant checker from a TraceReplayer must be byte-identical to
 * running the same tools on a live Interpreter — race reports, slice
 * sets, delivered-event accounting, step counts, outputs, thread
 * counts and abort semantics — on every workload, including runs the
 * checker aborts mid-execution.  The end-to-end pipelines are then
 * compared field by field between useTraceReplay modes (at 1 and 4
 * worker threads), excluding only the interpretedSteps/replayedEvents
 * counters whose divergence is the optimization itself.
 *
 * Also covers the capture/replay edge cases: recordings truncated by
 * an abort or a step limit, and empty testing sets; plus the OptFT
 * rollback-trigger contract (optFtShouldRollBack).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/optft.h"
#include "core/optslice.h"
#include "dyn/fasttrack.h"
#include "dyn/giri.h"
#include "dyn/invariant_checker.h"
#include "dyn/plans.h"
#include "exec/trace.h"
#include "ir/builder.h"
#include "profile/profiler.h"
#include "workloads/workloads.h"

namespace oha {
namespace {

std::vector<std::uint64_t>
eventVec(const exec::EventCounts &counts)
{
    return std::vector<std::uint64_t>(std::begin(counts.counts),
                                      std::end(counts.counts));
}

/** Everything observable from one analysis run that must match
 *  between a live interpreter run and a trace replay. */
struct RunSnapshot
{
    int status = 0;
    std::string abortReason;
    std::vector<std::pair<InstrId, std::int64_t>> outputs;
    std::uint64_t steps = 0;
    std::uint32_t numThreads = 0;
    std::vector<std::uint64_t> totalEvents;
    std::vector<std::vector<std::uint64_t>> delivered;
    std::set<std::pair<InstrId, InstrId>> races;
    std::vector<std::pair<InstrId, std::set<InstrId>>> slices;
    bool violated = false;
    std::uint64_t slowChecks = 0;
};

void
fillCommon(RunSnapshot &snap, const exec::RunResult &result)
{
    snap.status = static_cast<int>(result.status);
    snap.abortReason = result.abortReason;
    snap.outputs = result.outputs;
    snap.steps = result.steps;
    snap.numThreads = result.numThreads;
    snap.totalEvents = eventVec(result.totalEvents);
    for (const exec::EventCounts &counts : result.delivered)
        snap.delivered.push_back(eventVec(counts));
}

void
expectEqual(const RunSnapshot &live, const RunSnapshot &replayed,
            const std::string &label)
{
    EXPECT_EQ(live.status, replayed.status) << label;
    EXPECT_EQ(live.abortReason, replayed.abortReason) << label;
    EXPECT_EQ(live.outputs, replayed.outputs) << label;
    EXPECT_EQ(live.steps, replayed.steps) << label;
    EXPECT_EQ(live.numThreads, replayed.numThreads) << label;
    EXPECT_EQ(live.totalEvents, replayed.totalEvents) << label;
    EXPECT_EQ(live.delivered, replayed.delivered) << label;
    EXPECT_EQ(live.races, replayed.races) << label;
    EXPECT_EQ(live.slices, replayed.slices) << label;
    EXPECT_EQ(live.violated, replayed.violated) << label;
    EXPECT_EQ(live.slowChecks, replayed.slowChecks) << label;
}

/** Profile @p inputs and return the merged invariants. */
inv::InvariantSet
profiled(const ir::Module &module,
         const std::vector<exec::ExecConfig> &inputs)
{
    prof::ProfilingCampaign campaign(module, {});
    for (const auto &config : inputs)
        campaign.addRun(config);
    return campaign.invariants();
}

std::vector<InstrId>
outputInstrs(const ir::Module &module)
{
    std::vector<InstrId> out;
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == ir::Opcode::Output)
            out.push_back(id);
    return out;
}

/** FastTrack + invariant checker, live or replayed. */
RunSnapshot
ftSnapshot(const ir::Module &module, const inv::InvariantSet &invariants,
           const exec::InstrumentationPlan &plan,
           const exec::ExecConfig *config,
           const exec::RecordedTrace *trace)
{
    RunSnapshot snap;
    dyn::FastTrack tool;
    dyn::InvariantChecker checker(module, invariants, {});
    exec::RunResult result;
    if (trace) {
        exec::TraceReplayer replayer(module, *trace);
        replayer.attach(&tool, &plan);
        checker.setControl(&replayer);
        replayer.attach(&checker, &checker.plan());
        result = replayer.run();
    } else {
        exec::Interpreter interp(module, *config);
        interp.attach(&tool, &plan);
        checker.setControl(&interp);
        interp.attach(&checker, &checker.plan());
        result = interp.run();
    }
    fillCommon(snap, result);
    snap.races = tool.racePairs();
    snap.violated = checker.violated();
    snap.slowChecks = checker.slowContextChecks();
    return snap;
}

/** Giri + invariant checker, live or replayed. */
RunSnapshot
giriSnapshot(const ir::Module &module,
             const inv::InvariantSet &invariants,
             const exec::InstrumentationPlan &plan,
             const std::vector<InstrId> &endpoints,
             const exec::ExecConfig *config,
             const exec::RecordedTrace *trace)
{
    RunSnapshot snap;
    dyn::GiriSlicer tool(module);
    dyn::InvariantChecker checker(module, invariants, {});
    exec::RunResult result;
    if (trace) {
        exec::TraceReplayer replayer(module, *trace);
        replayer.attach(&tool, &plan);
        checker.setControl(&replayer);
        replayer.attach(&checker, &checker.plan());
        result = replayer.run();
    } else {
        exec::Interpreter interp(module, *config);
        interp.attach(&tool, &plan);
        checker.setControl(&interp);
        interp.attach(&checker, &checker.plan());
        result = interp.run();
    }
    fillCommon(snap, result);
    for (InstrId endpoint : endpoints)
        snap.slices.push_back({endpoint, tool.slice(endpoint)});
    snap.violated = checker.violated();
    snap.slowChecks = checker.slowContextChecks();
    return snap;
}

TEST(TraceReplayParity, FastTrackIdenticalOnAllRaceWorkloads)
{
    std::size_t totalRaces = 0;
    std::size_t aborted = 0;
    for (const auto &name : workloads::raceWorkloadNames()) {
        const auto workload = workloads::makeRaceWorkload(name, 2, 3);
        const ir::Module &module = *workload.module;
        // Deliberately under-profiled so some testing inputs violate
        // invariants and exercise the abort path of the replayer.
        const auto invariants =
            profiled(module, workload.profilingSet);
        const auto plan = dyn::fullFastTrackPlan(module);
        for (const exec::ExecConfig &config : workload.testingSet) {
            const exec::RecordedTrace trace =
                exec::recordRun(module, config);
            const RunSnapshot live =
                ftSnapshot(module, invariants, plan, &config, nullptr);
            const RunSnapshot replayed =
                ftSnapshot(module, invariants, plan, nullptr, &trace);
            expectEqual(live, replayed, name);
            totalRaces += live.races.size();
            if (live.violated)
                ++aborted;
        }
    }
    // The comparisons must not be vacuous.
    EXPECT_GT(totalRaces, 0u);
    EXPECT_GT(aborted, 0u)
        << "no under-profiled run aborted; the abort path is untested";
}

TEST(TraceReplayParity, GiriIdenticalOnAllSliceWorkloads)
{
    std::size_t totalSliceInstrs = 0;
    for (const auto &name : workloads::sliceWorkloadNames()) {
        const auto workload = workloads::makeSliceWorkload(name, 2, 3);
        const ir::Module &module = *workload.module;
        const auto invariants =
            profiled(module, workload.profilingSet);
        const auto plan = dyn::fullGiriPlan(module);
        const auto endpoints = outputInstrs(module);
        for (const exec::ExecConfig &config : workload.testingSet) {
            const exec::RecordedTrace trace =
                exec::recordRun(module, config);
            const RunSnapshot live = giriSnapshot(
                module, invariants, plan, endpoints, &config, nullptr);
            const RunSnapshot replayed = giriSnapshot(
                module, invariants, plan, endpoints, nullptr, &trace);
            expectEqual(live, replayed, name);
            for (const auto &[endpoint, slice] : live.slices)
                totalSliceInstrs += slice.size();
        }
    }
    EXPECT_GT(totalSliceInstrs, 0u);
}

TEST(TraceReplayParity, AbortedReplayStopsAtTheLiveBoundary)
{
    using namespace ir;
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    BasicBlock *cold = b.createBlock(main, "cold");
    BasicBlock *done = b.createBlock(main, "done");
    b.condBr(b.input(0), cold, done);
    b.setInsertPoint(cold);
    b.output(b.constInt(13));
    b.br(done);
    b.setInsertPoint(done);
    b.output(b.constInt(7));
    b.ret();
    module.finalize();

    exec::ExecConfig trained;
    trained.input = {0};
    exec::ExecConfig violating;
    violating.input = {1};
    const auto invariants = profiled(module, {trained});
    const auto plan = dyn::fullFastTrackPlan(module);

    const exec::RecordedTrace trace = exec::recordRun(module, violating);
    // The uninstrumented recording runs to completion...
    ASSERT_EQ(trace.result.status, exec::RunResult::Status::Finished);

    const RunSnapshot live =
        ftSnapshot(module, invariants, plan, &violating, nullptr);
    const RunSnapshot replayed =
        ftSnapshot(module, invariants, plan, nullptr, &trace);
    // ...but the checked replay aborts exactly where the live checked
    // run does: before the cold block's Output executes.
    ASSERT_TRUE(replayed.violated);
    EXPECT_EQ(replayed.status,
              static_cast<int>(exec::RunResult::Status::Aborted));
    EXPECT_TRUE(replayed.outputs.empty());
    EXPECT_LT(replayed.steps, trace.result.steps);
    expectEqual(live, replayed, "aborted LUC run");
}

TEST(TraceReplayEdge, TruncatedRecordingReplaysTheRecordedOutcome)
{
    using namespace ir;
    Module module;
    IRBuilder b(module);
    Function *main = b.createFunction("main", 0);
    BasicBlock *cold = b.createBlock(main, "cold");
    BasicBlock *done = b.createBlock(main, "done");
    b.condBr(b.input(0), cold, done);
    b.setInsertPoint(cold);
    b.output(b.constInt(13));
    b.br(done);
    b.setInsertPoint(done);
    b.output(b.constInt(7));
    b.ret();
    module.finalize();

    exec::ExecConfig trained;
    trained.input = {0};
    exec::ExecConfig violating;
    violating.input = {1};
    const auto invariants = profiled(module, {trained});

    // Record *with* a checker attached, so the recording itself is
    // aborted mid-trace (an invariant violation during capture).
    exec::RecordedTrace trace;
    {
        dyn::InvariantChecker checker(module, invariants, {});
        exec::TraceRecorder recorder;
        exec::Interpreter interp(module, violating);
        interp.setRecorder(&recorder);
        checker.setControl(&interp);
        interp.attach(&checker, &checker.plan());
        trace.result = interp.run();
        trace.events = recorder.take();
        ASSERT_TRUE(checker.violated());
    }
    ASSERT_EQ(trace.result.status, exec::RunResult::Status::Aborted);

    // A full replay of the truncated trace reports the recorded
    // outcome — status, reason, step count — and delivers exactly the
    // events that happened before the abort.
    const auto plan = dyn::fullFastTrackPlan(module);
    dyn::FastTrack tool;
    exec::TraceReplayer replayer(module, trace);
    replayer.attach(&tool, &plan);
    const exec::RunResult result = replayer.run();
    EXPECT_EQ(result.status, exec::RunResult::Status::Aborted);
    EXPECT_EQ(result.abortReason, trace.result.abortReason);
    EXPECT_EQ(result.steps, trace.result.steps);
    EXPECT_TRUE(result.outputs.empty());
    EXPECT_EQ(eventVec(result.totalEvents),
              eventVec(trace.result.totalEvents));
}

TEST(TraceReplayEdge, StepLimitTruncationReplaysIdentically)
{
    const auto workload = workloads::makeRaceWorkload("raytracer", 1, 1);
    const ir::Module &module = *workload.module;
    const auto invariants = profiled(module, workload.profilingSet);
    const auto plan = dyn::fullFastTrackPlan(module);

    exec::ExecConfig limited = workload.testingSet.front();
    limited.maxSteps = 200;

    const exec::RecordedTrace trace = exec::recordRun(module, limited);
    ASSERT_EQ(trace.result.status, exec::RunResult::Status::StepLimit);
    ASSERT_EQ(trace.result.steps, 200u);

    const RunSnapshot live =
        ftSnapshot(module, invariants, plan, &limited, nullptr);
    const RunSnapshot replayed =
        ftSnapshot(module, invariants, plan, nullptr, &trace);
    expectEqual(live, replayed, "step-limited run");
}

TEST(TraceReplayEdge, EmptyTestingSetsAreHandled)
{
    auto race = workloads::makeRaceWorkload("raytracer", 2, 2);
    race.testingSet.clear();
    for (const bool replay : {false, true}) {
        core::OptFtConfig config;
        config.useTraceReplay = replay;
        const auto result = core::runOptFt(race, config);
        EXPECT_EQ(result.testRuns, 0u);
        EXPECT_EQ(result.misSpeculations, 0u);
        EXPECT_EQ(result.interpretedSteps, 0u);
        EXPECT_EQ(result.replayedEvents, 0u);
        EXPECT_EQ(result.recordSeconds, 0.0);
        EXPECT_TRUE(result.raceReportsMatch);
    }

    auto slice = workloads::makeSliceWorkload("zlib", 2, 2);
    slice.testingSet.clear();
    for (const bool replay : {false, true}) {
        core::OptSliceConfig config;
        config.useTraceReplay = replay;
        const auto result = core::runOptSlice(slice, config);
        EXPECT_EQ(result.testRuns, 0u);
        EXPECT_EQ(result.misSpeculations, 0u);
        EXPECT_EQ(result.interpretedSteps, 0u);
        EXPECT_EQ(result.recordSeconds, 0.0);
        EXPECT_TRUE(result.sliceResultsMatch);
    }
}

TEST(OptFtRollback, TriggerTruthTable)
{
    // An invariant violation always rolls back.
    EXPECT_TRUE(core::optFtShouldRollBack(true, false, false));
    EXPECT_TRUE(core::optFtShouldRollBack(true, true, false));
    EXPECT_TRUE(core::optFtShouldRollBack(true, false, true));
    EXPECT_TRUE(core::optFtShouldRollBack(true, true, true));
    // A race report forces rollback only under active lock elision —
    // and then globally, regardless of which pair raced (Figure 4:
    // the lost happens-before edge can order unrelated accesses).
    EXPECT_TRUE(core::optFtShouldRollBack(false, true, true));
    EXPECT_FALSE(core::optFtShouldRollBack(false, true, false));
    // No violation and no race: speculation succeeded.
    EXPECT_FALSE(core::optFtShouldRollBack(false, false, true));
    EXPECT_FALSE(core::optFtShouldRollBack(false, false, false));
}

void
expectEqual(const core::RunCost &a, const core::RunCost &b,
            const std::string &label)
{
    EXPECT_EQ(a.base, b.base) << label;
    EXPECT_EQ(a.framework, b.framework) << label;
    EXPECT_EQ(a.analysis, b.analysis) << label;
    EXPECT_EQ(a.invariants, b.invariants) << label;
    EXPECT_EQ(a.rollback, b.rollback) << label;
}

/** Field-by-field OptFtResult equality, excluding interpretedSteps /
 *  replayedEvents (their divergence is the optimization). */
void
expectEqual(const core::OptFtResult &a, const core::OptFtResult &b,
            const std::string &label)
{
    EXPECT_EQ(a.name, b.name) << label;
    EXPECT_EQ(a.staticallyRaceFree, b.staticallyRaceFree) << label;
    EXPECT_EQ(a.soundStaticSeconds, b.soundStaticSeconds) << label;
    EXPECT_EQ(a.predStaticSeconds, b.predStaticSeconds) << label;
    EXPECT_EQ(a.profileSeconds, b.profileSeconds) << label;
    EXPECT_EQ(a.profileRunsUsed, b.profileRunsUsed) << label;
    EXPECT_EQ(a.testRuns, b.testRuns) << label;
    EXPECT_EQ(a.baselineSeconds, b.baselineSeconds) << label;
    expectEqual(a.fastTrack, b.fastTrack, label + " fastTrack");
    expectEqual(a.hybridFt, b.hybridFt, label + " hybridFt");
    expectEqual(a.optFt, b.optFt, label + " optFt");
    EXPECT_EQ(a.misSpeculations, b.misSpeculations) << label;
    EXPECT_EQ(a.raceReportsMatch, b.raceReportsMatch) << label;
    EXPECT_EQ(a.racesObserved, b.racesObserved) << label;
    EXPECT_EQ(a.soundRacyAccesses, b.soundRacyAccesses) << label;
    EXPECT_EQ(a.predRacyAccesses, b.predRacyAccesses) << label;
    EXPECT_EQ(a.elidedLockSites, b.elidedLockSites) << label;
    EXPECT_EQ(a.speedupVsFastTrack, b.speedupVsFastTrack) << label;
    EXPECT_EQ(a.speedupVsHybrid, b.speedupVsHybrid) << label;
    EXPECT_EQ(a.breakEvenVsHybrid, b.breakEvenVsHybrid) << label;
    EXPECT_EQ(a.breakEvenVsFastTrack, b.breakEvenVsFastTrack) << label;
    EXPECT_EQ(a.recordSeconds, b.recordSeconds) << label;
    EXPECT_EQ(a.replayRollbackSeconds, b.replayRollbackSeconds) << label;
}

/** Same for OptSliceResult. */
void
expectEqual(const core::OptSliceResult &a, const core::OptSliceResult &b,
            const std::string &label)
{
    EXPECT_EQ(a.name, b.name) << label;
    EXPECT_EQ(a.profileSeconds, b.profileSeconds) << label;
    EXPECT_EQ(a.profileRunsUsed, b.profileRunsUsed) << label;
    EXPECT_EQ(a.endpoints, b.endpoints) << label;
    EXPECT_EQ(a.testRuns, b.testRuns) << label;
    EXPECT_EQ(a.baselineSeconds, b.baselineSeconds) << label;
    expectEqual(a.hybrid, b.hybrid, label + " hybrid");
    expectEqual(a.optimistic, b.optimistic, label + " optimistic");
    EXPECT_EQ(a.misSpeculations, b.misSpeculations) << label;
    EXPECT_EQ(a.sliceResultsMatch, b.sliceResultsMatch) << label;
    EXPECT_EQ(a.soundSliceSize, b.soundSliceSize) << label;
    EXPECT_EQ(a.optSliceSize, b.optSliceSize) << label;
    EXPECT_EQ(a.dynSpeedup, b.dynSpeedup) << label;
    EXPECT_EQ(a.breakEven, b.breakEven) << label;
    EXPECT_EQ(a.recordSeconds, b.recordSeconds) << label;
    EXPECT_EQ(a.replayRollbackSeconds, b.replayRollbackSeconds) << label;
}

TEST(PipelineParity, OptFtReplayMatchesDirectAt1And4Threads)
{
    for (const char *name : {"raytracer", "pmd"}) {
        const auto workload = workloads::makeRaceWorkload(name, 8, 4);
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            core::OptFtConfig direct;
            direct.useTraceReplay = false;
            direct.threads = threads;
            core::OptFtConfig replay;
            replay.useTraceReplay = true;
            replay.threads = threads;

            const auto a = core::runOptFt(workload, direct);
            const auto b = core::runOptFt(workload, replay);
            const std::string label = std::string(name) + " @" +
                                      std::to_string(threads) + "t";
            expectEqual(a, b, label);
            // The whole point: the direct path interprets every input
            // at least three times (full/hybrid/optimistic), replay
            // interprets it once.
            EXPECT_GE(a.interpretedSteps, 2 * b.interpretedSteps)
                << label;
            EXPECT_EQ(b.replayedEvents > 0, b.testRuns > 0) << label;
            EXPECT_EQ(a.replayedEvents, 0u) << label;
        }
    }
}

TEST(PipelineParity, OptSliceReplayMatchesDirectAt1And4Threads)
{
    // zlib: the clean fast path.  go: under-profiled, so replayed
    // runs abort and roll back (the replay-based rollback path).
    for (const char *name : {"zlib", "go"}) {
        const auto workload = workloads::makeSliceWorkload(name, 4, 6);
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            core::OptSliceConfig direct;
            direct.useTraceReplay = false;
            direct.threads = threads;
            core::OptSliceConfig replay;
            replay.useTraceReplay = true;
            replay.threads = threads;

            const auto a = core::runOptSlice(workload, direct);
            const auto b = core::runOptSlice(workload, replay);
            const std::string label = std::string(name) + " @" +
                                      std::to_string(threads) + "t";
            expectEqual(a, b, label);
            EXPECT_GE(a.interpretedSteps, 2 * b.interpretedSteps)
                << label;
        }
    }
}

/** Deterministic byte serialization of a race-report set: the
 *  "byte-identical" in the sharded-merge contract is literal. */
std::vector<std::uint8_t>
raceBytes(const std::set<dyn::RaceReport> &races)
{
    std::vector<std::uint8_t> bytes;
    const auto put64 = [&bytes](std::uint64_t value) {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    };
    for (const dyn::RaceReport &race : races) {
        put64(race.first);
        put64(race.second);
        put64(race.obj);
        put64(race.off);
    }
    return bytes;
}

TEST(ShardedReplayParity, MergedShardRacesByteIdenticalToSerial)
{
    // Every (obj, off) cell is owned by exactly one shard and sync
    // operations broadcast to all shards, so the merged per-shard race
    // sets must serialize to exactly the serial replay's bytes — for
    // power-of-two and non-power-of-two shard counts alike.
    std::size_t racyCaptures = 0;
    for (const auto &name : workloads::raceWorkloadNames()) {
        const auto workload = workloads::makeRaceWorkload(name, 2, 3);
        const ir::Module &module = *workload.module;
        const auto plan = dyn::fullFastTrackPlan(module);
        for (const exec::ExecConfig &config : workload.testingSet) {
            const exec::RecordedTrace trace =
                exec::recordRun(module, config);

            dyn::FastTrack serialTool;
            exec::TraceReplayer serialReplay(module, trace);
            serialReplay.attach(&serialTool, &plan);
            const exec::RunResult serialResult = serialReplay.run();
            racyCaptures += !serialTool.races().empty();

            for (const std::uint32_t shards : {2u, 3u, 4u}) {
                const std::string label = name + " x" +
                                          std::to_string(shards);
                std::vector<std::set<dyn::RaceReport>> shardRaces;
                std::uint64_t loads = 0;
                std::uint64_t stores = 0;
                for (std::uint32_t s = 0; s < shards; ++s) {
                    dyn::FastTrack tool;
                    tool.setShardFilter(s, shards);
                    exec::TraceReplayer replayer(module, trace);
                    replayer.setShardFilter(s, shards);
                    replayer.attach(&tool, &plan);
                    const exec::RunResult result = replayer.run();
                    shardRaces.push_back(tool.races());
                    loads += result.delivered[0][exec::EventClass::Load];
                    stores +=
                        result.delivered[0][exec::EventClass::Store];
                    // Every shard walks the full stream, so steps and
                    // thread counts are shard-invariant; the complete
                    // stream-level result (outputs, totalEvents) is
                    // the primary shard's contract only — workers run
                    // the lean decode.
                    EXPECT_EQ(result.steps, serialResult.steps) << label;
                    EXPECT_EQ(result.numThreads, serialResult.numThreads)
                        << label;
                    if (s == 0) {
                        EXPECT_EQ(result.outputs, serialResult.outputs)
                            << label;
                        EXPECT_EQ(eventVec(result.totalEvents),
                                  eventVec(serialResult.totalEvents))
                            << label;
                    }
                }
                const std::set<dyn::RaceReport> merged =
                    dyn::mergeShardRaces(shardRaces);
                EXPECT_EQ(raceBytes(merged), raceBytes(serialTool.races()))
                    << label;
                // Delivered accesses partition exactly across shards.
                EXPECT_EQ(loads,
                          serialResult.delivered[0][exec::EventClass::Load])
                    << label;
                EXPECT_EQ(stores,
                          serialResult.delivered[0][exec::EventClass::Store])
                    << label;
            }
        }
    }
    EXPECT_GT(racyCaptures, 0u)
        << "no capture raced; the merge check is vacuous";
}

TEST(ShardedPipeline, OptFtResultsInvariantUnderReplayShards)
{
    // Sharding is a throughput knob, never a semantics knob: the whole
    // OptFT result must be field-identical at any shard count, whether
    // configured programmatically or via OHA_REPLAY_SHARDS.
    const auto workload = workloads::makeRaceWorkload("raytracer", 8, 4);
    core::OptFtConfig base;
    base.useTraceReplay = true;
    base.threads = 1;
    const auto reference = core::runOptFt(workload, base);
    for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
        core::OptFtConfig sharded = base;
        sharded.replayShards = shards;
        const auto result = core::runOptFt(workload, sharded);
        expectEqual(reference, result,
                    "replayShards=" + std::to_string(shards));
    }
    ASSERT_EQ(setenv("OHA_REPLAY_SHARDS", "3", 1), 0);
    const auto viaEnv = core::runOptFt(workload, base);
    unsetenv("OHA_REPLAY_SHARDS");
    expectEqual(reference, viaEnv, "OHA_REPLAY_SHARDS=3");
}

TEST(ShardedPipeline, OptSliceResultsInvariantUnderReplayShards)
{
    // Axis (a): OptSlice replayShards widens the reference replay
    // batch (index-merged), so results are identical at any width.
    const auto workload = workloads::makeSliceWorkload("zlib", 4, 6);
    core::OptSliceConfig base;
    base.useTraceReplay = true;
    base.threads = 1;
    const auto reference = core::runOptSlice(workload, base);
    core::OptSliceConfig sharded = base;
    sharded.replayShards = 4;
    const auto result = core::runOptSlice(workload, sharded);
    expectEqual(reference, result, "optslice replayShards=4");
}

} // namespace
} // namespace oha
