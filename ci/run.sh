#!/usr/bin/env bash
# Tier-1 CI entry point.  Usage:
#
#   ci/run.sh            # plain RelWithDebInfo build + full test suite
#   ci/run.sh sanitize   # AddressSanitizer build, tests under OHA_THREADS=4
#   ci/run.sh tsan       # ThreadSanitizer build, tests under OHA_THREADS=4
#   ci/run.sh bench      # build + run the wall-time microbenchmarks,
#                        # leaving BENCH_*.json in the repo root
#   ci/run.sh bench-release
#                        # Release (-O2, no asserts) build + smoke run of
#                        # the trace capture/replay microbenchmark
#                        # (OHA_BENCH_SMOKE=1: reduced reps and corpus)
#   ci/run.sh faults     # fault-injection sweep: the misspeculation
#                        # recovery tests under OHA_FAULT_SEED 1..3,
#                        # each at OHA_THREADS=1 and 4 (seeded faults
#                        # must repair identically at any thread count),
#                        # then the I/O fault domain — persist-path
#                        # fault sweeps, corruption fuzzing and the
#                        # kill-at-any-write-point crash-recovery
#                        # sweep — at both thread counts
#   ci/run.sh service    # ThreadSanitizer build of the analysis-daemon
#                        # stack: the service/shared-cache test suite,
#                        # then a smoke run of the service_throughput
#                        # bench (parity + hit-rate + latency bars),
#                        # leaving BENCH_service_throughput.json
#
# All test jobs run the same ctest suite; the sanitizer jobs exist to
# catch memory errors and data races in the parallel static-phase and
# run-batching paths, so they force a multi-threaded worker pool.
set -euo pipefail
cd "$(dirname "$0")/.."

job="${1:-plain}"
jobs="$(nproc 2>/dev/null || echo 4)"

case "$job" in
plain)
    build_dir=build-ci
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$build_dir" -j "$jobs"
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
    ;;
sanitize)
    build_dir=build-ci-asan
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DOHA_SANITIZE=address
    cmake --build "$build_dir" -j "$jobs"
    OHA_THREADS=4 ctest --test-dir "$build_dir" --output-on-failure \
        -j "$jobs"
    ;;
tsan)
    build_dir=build-ci-tsan
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DOHA_SANITIZE=thread
    cmake --build "$build_dir" -j "$jobs"
    OHA_THREADS=4 ctest --test-dir "$build_dir" --output-on-failure \
        -j "$jobs"
    ;;
bench)
    build_dir=build-ci
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$build_dir" -j "$jobs" --target \
        microbench_static microbench_shadow
    "$build_dir"/bench/microbench_static
    "$build_dir"/bench/microbench_shadow
    ;;
bench-release)
    build_dir=build-ci-release
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$build_dir" -j "$jobs" --target microbench_trace \
        microbench_incremental microbench_static
    # Force a low segment threshold so the smoke run exercises the
    # segmented spill-to-disk capture path and the sharded-replay
    # series end to end (BENCH_microbench_trace.json is uploaded as
    # an artifact by the workflow).
    OHA_BENCH_SMOKE=1 OHA_TRACE_SEGMENT_BYTES=8192 \
        "$build_dir"/bench/microbench_trace
    # Incremental re-analysis smoke: parity between the patched and
    # from-scratch solves is asserted even in smoke mode; the 5x
    # speedup bar is a warning here (shared-runner timing).  The
    # workflow uploads BENCH_microbench_incremental.json.
    OHA_BENCH_SMOKE=1 "$build_dir"/bench/microbench_incremental
    # Static-phase smoke, including the solver-threads-{1,2,4} wavefront
    # scaling series: work-unit parity across thread counts is asserted
    # even in smoke mode; the 2x scaling bar is a warning here.  The
    # workflow uploads BENCH_microbench_static.json.
    OHA_BENCH_SMOKE=1 "$build_dir"/bench/microbench_static
    ;;
faults)
    build_dir=build-ci
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$build_dir" -j "$jobs"
    for seed in 1 2 3; do
        for threads in 1 4; do
            echo "=== fault sweep: OHA_FAULT_SEED=$seed" \
                "OHA_THREADS=$threads ==="
            OHA_FAULT_SEED="$seed" OHA_THREADS="$threads" \
                ctest --test-dir "$build_dir" --output-on-failure \
                -R 'FaultInjection|FaultInjector|AdaptiveRecovery|Violation'
        done
    done
    # I/O fault domain: every durable-file, capture-persist and
    # snapshot test injects open/write/fsync/rename/mmap failures,
    # fuzzes on-disk bytes, and (Snapshot) kills a child process at
    # every write point.  Determinism bar: the sweep must pass
    # identically single- and multi-threaded.
    for threads in 1 4; do
        echo "=== I/O fault sweep: OHA_THREADS=$threads ==="
        OHA_THREADS="$threads" \
            ctest --test-dir "$build_dir" --output-on-failure \
            -R 'DurableFile|TracePersist|Snapshot'
    done
    ;;
service)
    build_dir=build-ci-tsan
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DOHA_SANITIZE=thread
    cmake --build "$build_dir" -j "$jobs"
    # The concurrent pieces of the daemon under TSan: the request
    # queue, the service itself, the shared cross-request cache
    # (including the torture test), and the segmented-trace /
    # sharded-replay paths whose captures and spill files are shared
    # across concurrent replays.
    # WavefrontParallel and RunBatch cover the wavefront-parallel
    # Andersen solver and the chunked batch primitive it fans out on.
    # Snapshot covers the durability layer under TSan as well: the
    # boot-time warm start, the periodic/final snapshot writers racing
    # request shards, and the crash-recovery sweep.
    OHA_THREADS=4 ctest --test-dir "$build_dir" --output-on-failure \
        -R 'RequestQueue|AnalysisService|LruList|SharedCache|ConfiguredThreads|TraceCodec|SegmentedCapture|SegmentedPipeline|ShardedReplayParity|ShardedPipeline|EnvSizeBytes|IncrementalAndersen|ModuleDiff|SharedCacheLineage|WavefrontParallel|RunBatch|Snapshot'
    # Smoke throughput run; the binary exits non-zero if the parity,
    # warm-hit-rate, warm-latency, or restart-warm acceptance bars
    # fail (the restart-warm series persists a snapshot, clears every
    # cache, and boots a fresh daemon from disk).
    OHA_BENCH_SMOKE=1 OHA_THREADS=4 "$build_dir"/bench/service_throughput
    ;;
*)
    echo "unknown job '$job' (expected: plain | sanitize | tsan | bench |" \
        "bench-release | faults | service)" >&2
    exit 2
    ;;
esac
