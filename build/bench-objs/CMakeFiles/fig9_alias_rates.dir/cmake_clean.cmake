file(REMOVE_RECURSE
  "../bench/fig9_alias_rates"
  "../bench/fig9_alias_rates.pdb"
  "CMakeFiles/fig9_alias_rates.dir/fig9_alias_rates.cc.o"
  "CMakeFiles/fig9_alias_rates.dir/fig9_alias_rates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_alias_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
