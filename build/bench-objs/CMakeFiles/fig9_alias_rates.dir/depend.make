# Empty dependencies file for fig9_alias_rates.
# This may be replaced when dependencies are built.
