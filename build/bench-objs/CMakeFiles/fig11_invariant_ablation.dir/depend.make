# Empty dependencies file for fig11_invariant_ablation.
# This may be replaced when dependencies are built.
