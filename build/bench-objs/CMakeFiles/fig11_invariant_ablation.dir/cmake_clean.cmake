file(REMOVE_RECURSE
  "../bench/fig11_invariant_ablation"
  "../bench/fig11_invariant_ablation.pdb"
  "CMakeFiles/fig11_invariant_ablation.dir/fig11_invariant_ablation.cc.o"
  "CMakeFiles/fig11_invariant_ablation.dir/fig11_invariant_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_invariant_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
