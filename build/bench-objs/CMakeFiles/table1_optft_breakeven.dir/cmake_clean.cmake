file(REMOVE_RECURSE
  "../bench/table1_optft_breakeven"
  "../bench/table1_optft_breakeven.pdb"
  "CMakeFiles/table1_optft_breakeven.dir/table1_optft_breakeven.cc.o"
  "CMakeFiles/table1_optft_breakeven.dir/table1_optft_breakeven.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_optft_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
