# Empty compiler generated dependencies file for table1_optft_breakeven.
# This may be replaced when dependencies are built.
