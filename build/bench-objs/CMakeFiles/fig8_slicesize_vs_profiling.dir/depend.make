# Empty dependencies file for fig8_slicesize_vs_profiling.
# This may be replaced when dependencies are built.
