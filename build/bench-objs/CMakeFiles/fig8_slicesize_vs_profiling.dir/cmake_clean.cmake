file(REMOVE_RECURSE
  "../bench/fig8_slicesize_vs_profiling"
  "../bench/fig8_slicesize_vs_profiling.pdb"
  "CMakeFiles/fig8_slicesize_vs_profiling.dir/fig8_slicesize_vs_profiling.cc.o"
  "CMakeFiles/fig8_slicesize_vs_profiling.dir/fig8_slicesize_vs_profiling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_slicesize_vs_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
