# Empty dependencies file for fig7_misspec_vs_profiling.
# This may be replaced when dependencies are built.
