file(REMOVE_RECURSE
  "../bench/fig7_misspec_vs_profiling"
  "../bench/fig7_misspec_vs_profiling.pdb"
  "CMakeFiles/fig7_misspec_vs_profiling.dir/fig7_misspec_vs_profiling.cc.o"
  "CMakeFiles/fig7_misspec_vs_profiling.dir/fig7_misspec_vs_profiling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_misspec_vs_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
