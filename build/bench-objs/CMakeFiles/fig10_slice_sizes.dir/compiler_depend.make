# Empty compiler generated dependencies file for fig10_slice_sizes.
# This may be replaced when dependencies are built.
