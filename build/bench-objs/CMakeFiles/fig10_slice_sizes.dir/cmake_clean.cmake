file(REMOVE_RECURSE
  "../bench/fig10_slice_sizes"
  "../bench/fig10_slice_sizes.pdb"
  "CMakeFiles/fig10_slice_sizes.dir/fig10_slice_sizes.cc.o"
  "CMakeFiles/fig10_slice_sizes.dir/fig10_slice_sizes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_slice_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
