# Empty dependencies file for table2_optslice_breakeven.
# This may be replaced when dependencies are built.
