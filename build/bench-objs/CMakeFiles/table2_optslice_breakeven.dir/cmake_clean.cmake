file(REMOVE_RECURSE
  "../bench/table2_optslice_breakeven"
  "../bench/table2_optslice_breakeven.pdb"
  "CMakeFiles/table2_optslice_breakeven.dir/table2_optslice_breakeven.cc.o"
  "CMakeFiles/table2_optslice_breakeven.dir/table2_optslice_breakeven.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_optslice_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
