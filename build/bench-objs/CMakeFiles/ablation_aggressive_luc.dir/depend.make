# Empty dependencies file for ablation_aggressive_luc.
# This may be replaced when dependencies are built.
