file(REMOVE_RECURSE
  "../bench/ablation_aggressive_luc"
  "../bench/ablation_aggressive_luc.pdb"
  "CMakeFiles/ablation_aggressive_luc.dir/ablation_aggressive_luc.cc.o"
  "CMakeFiles/ablation_aggressive_luc.dir/ablation_aggressive_luc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aggressive_luc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
