file(REMOVE_RECURSE
  "../bench/fig5_optft_runtimes"
  "../bench/fig5_optft_runtimes.pdb"
  "CMakeFiles/fig5_optft_runtimes.dir/fig5_optft_runtimes.cc.o"
  "CMakeFiles/fig5_optft_runtimes.dir/fig5_optft_runtimes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_optft_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
