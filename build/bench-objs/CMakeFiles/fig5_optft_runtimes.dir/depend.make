# Empty dependencies file for fig5_optft_runtimes.
# This may be replaced when dependencies are built.
