file(REMOVE_RECURSE
  "../bench/fig6_optslice_runtimes"
  "../bench/fig6_optslice_runtimes.pdb"
  "CMakeFiles/fig6_optslice_runtimes.dir/fig6_optslice_runtimes.cc.o"
  "CMakeFiles/fig6_optslice_runtimes.dir/fig6_optslice_runtimes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_optslice_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
