# Empty compiler generated dependencies file for fig6_optslice_runtimes.
# This may be replaced when dependencies are built.
