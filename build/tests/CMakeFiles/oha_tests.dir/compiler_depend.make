# Empty compiler generated dependencies file for oha_tests.
# This may be replaced when dependencies are built.
