
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_support_test.cc" "tests/CMakeFiles/oha_tests.dir/analysis_support_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/analysis_support_test.cc.o.d"
  "/root/repo/tests/andersen_cs_test.cc" "tests/CMakeFiles/oha_tests.dir/andersen_cs_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/andersen_cs_test.cc.o.d"
  "/root/repo/tests/andersen_test.cc" "tests/CMakeFiles/oha_tests.dir/andersen_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/andersen_test.cc.o.d"
  "/root/repo/tests/bdd_property_test.cc" "tests/CMakeFiles/oha_tests.dir/bdd_property_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/bdd_property_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/oha_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/exec_semantics_test.cc" "tests/CMakeFiles/oha_tests.dir/exec_semantics_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/exec_semantics_test.cc.o.d"
  "/root/repo/tests/fasttrack_djit_test.cc" "tests/CMakeFiles/oha_tests.dir/fasttrack_djit_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/fasttrack_djit_test.cc.o.d"
  "/root/repo/tests/fasttrack_test.cc" "tests/CMakeFiles/oha_tests.dir/fasttrack_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/fasttrack_test.cc.o.d"
  "/root/repo/tests/giri_test.cc" "tests/CMakeFiles/oha_tests.dir/giri_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/giri_test.cc.o.d"
  "/root/repo/tests/interpreter_test.cc" "tests/CMakeFiles/oha_tests.dir/interpreter_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/interpreter_test.cc.o.d"
  "/root/repo/tests/invariant_checker_test.cc" "tests/CMakeFiles/oha_tests.dir/invariant_checker_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/invariant_checker_test.cc.o.d"
  "/root/repo/tests/invariants_test.cc" "tests/CMakeFiles/oha_tests.dir/invariants_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/invariants_test.cc.o.d"
  "/root/repo/tests/ir_test.cc" "tests/CMakeFiles/oha_tests.dir/ir_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/ir_test.cc.o.d"
  "/root/repo/tests/lockset_mhp_test.cc" "tests/CMakeFiles/oha_tests.dir/lockset_mhp_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/lockset_mhp_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/oha_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/pipeline_extra_test.cc" "tests/CMakeFiles/oha_tests.dir/pipeline_extra_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/pipeline_extra_test.cc.o.d"
  "/root/repo/tests/pipeline_test.cc" "tests/CMakeFiles/oha_tests.dir/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/pipeline_test.cc.o.d"
  "/root/repo/tests/profiler_test.cc" "tests/CMakeFiles/oha_tests.dir/profiler_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/profiler_test.cc.o.d"
  "/root/repo/tests/random_program_test.cc" "tests/CMakeFiles/oha_tests.dir/random_program_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/random_program_test.cc.o.d"
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/oha_tests.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/report_test.cc.o.d"
  "/root/repo/tests/slicer_bdd_parity_test.cc" "tests/CMakeFiles/oha_tests.dir/slicer_bdd_parity_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/slicer_bdd_parity_test.cc.o.d"
  "/root/repo/tests/slicer_test.cc" "tests/CMakeFiles/oha_tests.dir/slicer_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/slicer_test.cc.o.d"
  "/root/repo/tests/soundness_property_test.cc" "tests/CMakeFiles/oha_tests.dir/soundness_property_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/soundness_property_test.cc.o.d"
  "/root/repo/tests/speculation_property_test.cc" "tests/CMakeFiles/oha_tests.dir/speculation_property_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/speculation_property_test.cc.o.d"
  "/root/repo/tests/static_race_test.cc" "tests/CMakeFiles/oha_tests.dir/static_race_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/static_race_test.cc.o.d"
  "/root/repo/tests/support_test.cc" "tests/CMakeFiles/oha_tests.dir/support_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/support_test.cc.o.d"
  "/root/repo/tests/verifier_test.cc" "tests/CMakeFiles/oha_tests.dir/verifier_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/verifier_test.cc.o.d"
  "/root/repo/tests/workload_property_test.cc" "tests/CMakeFiles/oha_tests.dir/workload_property_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/workload_property_test.cc.o.d"
  "/root/repo/tests/workload_shape_test.cc" "tests/CMakeFiles/oha_tests.dir/workload_shape_test.cc.o" "gcc" "tests/CMakeFiles/oha_tests.dir/workload_shape_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oha.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
