file(REMOVE_RECURSE
  "../examples/example_race_hunting"
  "../examples/example_race_hunting.pdb"
  "CMakeFiles/example_race_hunting.dir/race_hunting.cpp.o"
  "CMakeFiles/example_race_hunting.dir/race_hunting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_race_hunting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
