# Empty dependencies file for example_race_hunting.
# This may be replaced when dependencies are built.
