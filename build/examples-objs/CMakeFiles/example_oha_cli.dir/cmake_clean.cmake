file(REMOVE_RECURSE
  "../examples/example_oha_cli"
  "../examples/example_oha_cli.pdb"
  "CMakeFiles/example_oha_cli.dir/oha_cli.cpp.o"
  "CMakeFiles/example_oha_cli.dir/oha_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_oha_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
