# Empty dependencies file for example_oha_cli.
# This may be replaced when dependencies are built.
