file(REMOVE_RECURSE
  "../examples/example_invariant_explorer"
  "../examples/example_invariant_explorer.pdb"
  "CMakeFiles/example_invariant_explorer.dir/invariant_explorer.cpp.o"
  "CMakeFiles/example_invariant_explorer.dir/invariant_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_invariant_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
