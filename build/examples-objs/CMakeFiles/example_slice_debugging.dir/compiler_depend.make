# Empty compiler generated dependencies file for example_slice_debugging.
# This may be replaced when dependencies are built.
