file(REMOVE_RECURSE
  "../examples/example_slice_debugging"
  "../examples/example_slice_debugging.pdb"
  "CMakeFiles/example_slice_debugging.dir/slice_debugging.cpp.o"
  "CMakeFiles/example_slice_debugging.dir/slice_debugging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_slice_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
