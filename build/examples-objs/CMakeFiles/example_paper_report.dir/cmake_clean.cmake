file(REMOVE_RECURSE
  "../examples/example_paper_report"
  "../examples/example_paper_report.pdb"
  "CMakeFiles/example_paper_report.dir/paper_report.cpp.o"
  "CMakeFiles/example_paper_report.dir/paper_report.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_paper_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
