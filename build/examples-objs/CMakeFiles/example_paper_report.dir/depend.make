# Empty dependencies file for example_paper_report.
# This may be replaced when dependencies are built.
