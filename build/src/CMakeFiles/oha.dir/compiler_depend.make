# Empty compiler generated dependencies file for oha.
# This may be replaced when dependencies are built.
