file(REMOVE_RECURSE
  "liboha.a"
)
