# Empty dependencies file for oha.
# This may be replaced when dependencies are built.
