
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/andersen.cc" "src/CMakeFiles/oha.dir/analysis/andersen.cc.o" "gcc" "src/CMakeFiles/oha.dir/analysis/andersen.cc.o.d"
  "/root/repo/src/analysis/callgraph.cc" "src/CMakeFiles/oha.dir/analysis/callgraph.cc.o" "gcc" "src/CMakeFiles/oha.dir/analysis/callgraph.cc.o.d"
  "/root/repo/src/analysis/lockset.cc" "src/CMakeFiles/oha.dir/analysis/lockset.cc.o" "gcc" "src/CMakeFiles/oha.dir/analysis/lockset.cc.o.d"
  "/root/repo/src/analysis/mhp.cc" "src/CMakeFiles/oha.dir/analysis/mhp.cc.o" "gcc" "src/CMakeFiles/oha.dir/analysis/mhp.cc.o.d"
  "/root/repo/src/analysis/race_detector.cc" "src/CMakeFiles/oha.dir/analysis/race_detector.cc.o" "gcc" "src/CMakeFiles/oha.dir/analysis/race_detector.cc.o.d"
  "/root/repo/src/analysis/slicer.cc" "src/CMakeFiles/oha.dir/analysis/slicer.cc.o" "gcc" "src/CMakeFiles/oha.dir/analysis/slicer.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/oha.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/oha.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/optft.cc" "src/CMakeFiles/oha.dir/core/optft.cc.o" "gcc" "src/CMakeFiles/oha.dir/core/optft.cc.o.d"
  "/root/repo/src/core/optslice.cc" "src/CMakeFiles/oha.dir/core/optslice.cc.o" "gcc" "src/CMakeFiles/oha.dir/core/optslice.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/oha.dir/core/report.cc.o" "gcc" "src/CMakeFiles/oha.dir/core/report.cc.o.d"
  "/root/repo/src/dyn/fasttrack.cc" "src/CMakeFiles/oha.dir/dyn/fasttrack.cc.o" "gcc" "src/CMakeFiles/oha.dir/dyn/fasttrack.cc.o.d"
  "/root/repo/src/dyn/giri.cc" "src/CMakeFiles/oha.dir/dyn/giri.cc.o" "gcc" "src/CMakeFiles/oha.dir/dyn/giri.cc.o.d"
  "/root/repo/src/dyn/invariant_checker.cc" "src/CMakeFiles/oha.dir/dyn/invariant_checker.cc.o" "gcc" "src/CMakeFiles/oha.dir/dyn/invariant_checker.cc.o.d"
  "/root/repo/src/dyn/plans.cc" "src/CMakeFiles/oha.dir/dyn/plans.cc.o" "gcc" "src/CMakeFiles/oha.dir/dyn/plans.cc.o.d"
  "/root/repo/src/exec/interpreter.cc" "src/CMakeFiles/oha.dir/exec/interpreter.cc.o" "gcc" "src/CMakeFiles/oha.dir/exec/interpreter.cc.o.d"
  "/root/repo/src/invariants/invariant_set.cc" "src/CMakeFiles/oha.dir/invariants/invariant_set.cc.o" "gcc" "src/CMakeFiles/oha.dir/invariants/invariant_set.cc.o.d"
  "/root/repo/src/ir/cfg.cc" "src/CMakeFiles/oha.dir/ir/cfg.cc.o" "gcc" "src/CMakeFiles/oha.dir/ir/cfg.cc.o.d"
  "/root/repo/src/ir/instruction.cc" "src/CMakeFiles/oha.dir/ir/instruction.cc.o" "gcc" "src/CMakeFiles/oha.dir/ir/instruction.cc.o.d"
  "/root/repo/src/ir/module.cc" "src/CMakeFiles/oha.dir/ir/module.cc.o" "gcc" "src/CMakeFiles/oha.dir/ir/module.cc.o.d"
  "/root/repo/src/ir/parser.cc" "src/CMakeFiles/oha.dir/ir/parser.cc.o" "gcc" "src/CMakeFiles/oha.dir/ir/parser.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/CMakeFiles/oha.dir/ir/printer.cc.o" "gcc" "src/CMakeFiles/oha.dir/ir/printer.cc.o.d"
  "/root/repo/src/ir/verifier.cc" "src/CMakeFiles/oha.dir/ir/verifier.cc.o" "gcc" "src/CMakeFiles/oha.dir/ir/verifier.cc.o.d"
  "/root/repo/src/profile/profiler.cc" "src/CMakeFiles/oha.dir/profile/profiler.cc.o" "gcc" "src/CMakeFiles/oha.dir/profile/profiler.cc.o.d"
  "/root/repo/src/support/bdd.cc" "src/CMakeFiles/oha.dir/support/bdd.cc.o" "gcc" "src/CMakeFiles/oha.dir/support/bdd.cc.o.d"
  "/root/repo/src/support/common.cc" "src/CMakeFiles/oha.dir/support/common.cc.o" "gcc" "src/CMakeFiles/oha.dir/support/common.cc.o.d"
  "/root/repo/src/support/table.cc" "src/CMakeFiles/oha.dir/support/table.cc.o" "gcc" "src/CMakeFiles/oha.dir/support/table.cc.o.d"
  "/root/repo/src/workloads/race_workloads.cc" "src/CMakeFiles/oha.dir/workloads/race_workloads.cc.o" "gcc" "src/CMakeFiles/oha.dir/workloads/race_workloads.cc.o.d"
  "/root/repo/src/workloads/slice_workloads.cc" "src/CMakeFiles/oha.dir/workloads/slice_workloads.cc.o" "gcc" "src/CMakeFiles/oha.dir/workloads/slice_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
