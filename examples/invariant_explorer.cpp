/**
 * @file
 * Invariant explorer: profile one of the built-in benchmark
 * workloads, print the learned likely invariants, save/reload them in
 * the text format the paper's tools use, and show how the invariant
 * set converges as profiling grows.
 *
 * Usage: invariant_explorer [workload-name]   (default: redis)
 */

#include <cstdio>
#include <string>

#include "profile/profiler.h"
#include "workloads/workloads.h"

using namespace oha;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "redis";
    const bool isRace = [&] {
        for (const auto &n : workloads::raceWorkloadNames())
            if (n == name)
                return true;
        return false;
    }();
    const auto workload = isRace
                              ? workloads::makeRaceWorkload(name, 48, 1)
                              : workloads::makeSliceWorkload(name, 48, 1);
    const ir::Module &module = *workload.module;

    std::printf("workload '%s': %zu functions, %zu blocks, %zu "
                "instructions\n\n",
                name.c_str(), module.numFunctions(), module.numBlocks(),
                module.numInstrs());

    prof::ProfileOptions options;
    options.callContexts = !isRace;
    prof::ProfilingCampaign campaign(module, options);

    std::printf("%-6s %-10s %-10s %-8s %-9s %-10s\n", "runs", "blocks",
                "callees", "ctxs", "locks", "singletons");
    for (std::size_t i = 0; i < workload.profilingSet.size(); ++i) {
        campaign.addRun(workload.profilingSet[i]);
        if ((i + 1) % 8 == 0 || i == 0) {
            const auto &inv = campaign.invariants();
            std::size_t calleeFacts = 0;
            for (const auto &[site, funcs] : inv.calleeSets)
                calleeFacts += funcs.size();
            std::printf("%-6zu %-10zu %-10zu %-8zu %-9zu %-10zu\n",
                        i + 1, inv.visitedBlocks.size(), calleeFacts,
                        inv.callContexts.size(),
                        inv.mustAliasLocks.size(),
                        inv.singletonSpawnSites.size());
        }
    }

    const inv::InvariantSet &final = campaign.invariants();
    const std::size_t unvisited =
        module.numBlocks() - final.visitedBlocks.size();
    std::printf("\nlikely-unreachable code: %zu of %zu blocks (%.0f%%)\n",
                unvisited, module.numBlocks(),
                100.0 * double(unvisited) / double(module.numBlocks()));

    // Round-trip through the paper's text-file format.
    const std::string text = final.saveText();
    const inv::InvariantSet reloaded = inv::InvariantSet::loadText(text);
    std::printf("text round-trip: %zu bytes, equal=%s\n", text.size(),
                reloaded == final ? "yes" : "NO");

    std::printf("\nfirst lines of the invariant file:\n");
    std::size_t shown = 0, pos = 0;
    while (shown < 8 && pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        std::printf("  %s\n",
                    text.substr(pos, eol - pos).substr(0, 72).c_str());
        pos = eol + 1;
        ++shown;
    }
    return 0;
}
