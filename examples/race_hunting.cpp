/**
 * @file
 * Race hunting with OptFT: build a multithreaded program with a
 * latent bug, run the full optimistic pipeline, and show that the
 * speculative detector reports exactly what plain FastTrack reports —
 * at a fraction of the checking work.
 *
 * The program is a small job server: workers pull jobs, update shared
 * statistics under a lock, and — on a rare "admin" job — touch a
 * debug counter *without* the lock.  That unlocked touch is the bug.
 */

#include <cstdio>

#include "analysis/race_detector.h"
#include "dyn/fasttrack.h"
#include "dyn/invariant_checker.h"
#include "dyn/plans.h"
#include "ir/builder.h"
#include "profile/profiler.h"

using namespace oha;

namespace {

constexpr std::int64_t kAdminJob = 77;

void
buildJobServer(ir::Module &module)
{
    ir::IRBuilder b(module);
    const auto stats = module.addGlobal("stats", 4);
    const auto mutex = module.addGlobal("mutex", 1);
    const auto debugCtr = module.addGlobal("debug_counter", 1);

    ir::Function *worker = b.createFunction("worker", 1);
    {
        ir::Function *f = worker;
        ir::BasicBlock *loop = b.createBlock(f, "loop");
        ir::BasicBlock *body = b.createBlock(f, "body");
        ir::BasicBlock *admin = b.createBlock(f, "admin");
        ir::BasicBlock *next = b.createBlock(f, "next");
        ir::BasicBlock *done = b.createBlock(f, "done");

        const ir::Reg i = b.constInt(0);
        const ir::Reg n = b.constInt(40);
        const ir::Reg one = b.constInt(1);
        b.br(loop);

        b.setInsertPoint(loop);
        b.condBr(b.lt(i, n), body, done);

        b.setInsertPoint(body);
        const ir::Reg job = b.inputDyn(b.add(b.mul(0, n), i), 8);
        // Locked statistics update (the common case).
        const ir::Reg m = b.globalAddr(mutex);
        b.lock(m);
        const ir::Reg cell =
            b.gepDyn(b.globalAddr(stats), b.band(job, b.constInt(3)));
        b.store(cell, b.add(b.load(cell), one));
        b.unlock(m);
        b.condBr(b.eq(job, b.constInt(kAdminJob)), admin, next);

        b.setInsertPoint(admin); // the bug: unlocked shared update
        const ir::Reg dc = b.globalAddr(debugCtr);
        b.store(dc, b.add(b.load(dc), one));
        b.br(next);

        b.setInsertPoint(next);
        b.binopTo(i, ir::BinOpKind::Add, i, one);
        b.br(loop);

        b.setInsertPoint(done);
        b.ret(b.load(b.gep(b.globalAddr(stats), 0)));
    }

    b.createFunction("main", 0);
    const ir::Reg h1 = b.spawn(worker, {b.constInt(0)});
    const ir::Reg h2 = b.spawn(worker, {b.constInt(1)});
    b.join(h1);
    b.join(h2);
    b.output(b.load(b.globalAddr(debugCtr)));
    b.ret();
}

exec::ExecConfig
makeInput(std::uint64_t seed, bool admin)
{
    Rng rng(seed);
    exec::ExecConfig config;
    config.input.assign(96, 0);
    for (auto &v : config.input)
        v = static_cast<std::int64_t>(rng.below(4));
    if (admin)
        config.input[8 + rng.below(40)] = kAdminJob;
    config.scheduleSeed = rng.next();
    return config;
}

std::set<std::pair<InstrId, InstrId>>
detectRaces(const ir::Module &module, const exec::ExecConfig &config,
            const exec::InstrumentationPlan &plan,
            dyn::InvariantChecker *checker, bool *violated,
            std::uint64_t *checksDone)
{
    dyn::FastTrack tool;
    exec::Interpreter interp(module, config);
    interp.attach(&tool, &plan);
    if (checker) {
        checker->setControl(&interp);
        interp.attach(checker, &checker->plan());
    }
    const auto result = interp.run();
    if (violated)
        *violated = checker && checker->violated();
    if (checksDone) {
        *checksDone = result.delivered[0][exec::EventClass::Load] +
                      result.delivered[0][exec::EventClass::Store];
    }
    return tool.racePairs();
}

} // namespace

int
main()
{
    ir::Module module;
    buildJobServer(module);
    module.finalize();

    // Phase 1: profile ordinary traffic (no admin jobs).
    prof::ProfilingCampaign campaign(module, {});
    for (std::uint64_t seed = 0; seed < 12; ++seed)
        campaign.addRun(makeInput(seed, /*admin=*/false));
    const inv::InvariantSet &invariants = campaign.invariants();

    // Phase 2: sound + predicated static race detection.
    const auto sound = analysis::runStaticRaceDetector(module, nullptr);
    const auto predicated =
        analysis::runStaticRaceDetector(module, &invariants);
    std::printf("static race detection: sound keeps %zu accesses, "
                "predicated keeps %zu\n",
                sound.racyAccesses.size(), predicated.racyAccesses.size());

    const auto fullPlan = dyn::fullFastTrackPlan(module);
    const auto optPlan = dyn::optimisticFastTrackPlan(
        module, predicated.racyAccesses, invariants);

    // Phase 3: speculative detection on two kinds of runs.
    for (bool admin : {false, true}) {
        const auto config = makeInput(1234, admin);

        std::uint64_t fullChecks = 0, optChecks = 0;
        const auto reference = detectRaces(module, config, fullPlan,
                                           nullptr, nullptr, &fullChecks);

        dyn::CheckerConfig checkerConfig;
        checkerConfig.callContexts = false;
        dyn::InvariantChecker checker(module, invariants, checkerConfig);
        bool violated = false;
        auto optimistic = detectRaces(module, config, optPlan, &checker,
                                      &violated, &optChecks);
        if (violated) {
            std::printf("[%s run] invariant violated (%s) -> rollback "
                        "to sound hybrid analysis\n",
                        admin ? "admin" : "normal",
                        checker.violationReason().c_str());
            // Deterministic replay under the sound configuration.
            optimistic = detectRaces(module, config, fullPlan, nullptr,
                                     nullptr, nullptr);
        }

        std::printf("[%s run] FastTrack races=%zu, OptFT races=%zu "
                    "(equal=%s), mem checks %llu -> %llu\n",
                    admin ? "admin" : "normal", reference.size(),
                    optimistic.size(),
                    reference == optimistic ? "yes" : "NO",
                    static_cast<unsigned long long>(fullChecks),
                    static_cast<unsigned long long>(optChecks));
    }
    return 0;
}
