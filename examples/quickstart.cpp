/**
 * @file
 * Quickstart: the full optimistic-hybrid-analysis flow on a toy
 * program, end to end, in under a hundred lines of user code.
 *
 *  1. Build a tiny multithreaded program in OHA IR.
 *  2. Profile a few executions to learn likely invariants.
 *  3. Run a predicated (unsound) static race analysis.
 *  4. Run the FastTrack race detector speculatively with elided
 *     checks, falling back to sound hybrid analysis on violation.
 */

#include <cstdio>

#include "exec/interpreter.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "profile/profiler.h"

using namespace oha;

namespace {

/** A worker increments a shared counter under a lock; a buggy path
 *  (taken only for unusual inputs) skips the lock. */
void
buildProgram(ir::Module &module)
{
    ir::IRBuilder b(module);
    const auto counter = module.addGlobal("counter", 1);
    const auto mutex = module.addGlobal("mutex", 1);

    ir::Function *worker = b.createFunction("worker", 1);
    {
        ir::BasicBlock *locked = b.createBlock(worker, "locked");
        ir::BasicBlock *racy = b.createBlock(worker, "racy");
        ir::BasicBlock *done = b.createBlock(worker, "done");
        b.condBr(0, racy, locked);

        b.setInsertPoint(locked);
        const ir::Reg m = b.globalAddr(mutex);
        b.lock(m);
        const ir::Reg addr = b.globalAddr(counter);
        b.store(addr, b.add(b.load(addr), b.constInt(1)));
        b.unlock(m);
        b.br(done);

        b.setInsertPoint(racy); // likely-unreachable under profiling
        const ir::Reg addr2 = b.globalAddr(counter);
        b.store(addr2, b.add(b.load(addr2), b.constInt(1)));
        b.br(done);

        b.setInsertPoint(done);
        b.ret();
    }

    b.createFunction("main", 0);
    const ir::Reg racyFlag = b.input(0);
    const ir::Reg h1 = b.spawn(worker, {racyFlag});
    const ir::Reg h2 = b.spawn(worker, {racyFlag});
    b.join(h1);
    b.join(h2);
    b.output(b.load(b.globalAddr(counter)));
    b.ret();
}

} // namespace

int
main()
{
    ir::Module module;
    buildProgram(module);
    module.finalize();

    std::printf("=== Program under analysis ===\n%s\n",
                ir::printModule(module).c_str());

    // ---- Phase 1: profile likely invariants -------------------------
    prof::ProfilingCampaign campaign(module, {});
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        exec::ExecConfig cfg;
        cfg.input = {0}; // profiled inputs never take the racy path
        cfg.scheduleSeed = seed;
        campaign.addRun(cfg);
    }
    const inv::InvariantSet &invariants = campaign.invariants();
    std::printf("=== Likely invariants after %zu profiled runs ===\n%s\n",
                campaign.numRuns(), invariants.saveText().c_str());

    const std::size_t unvisited =
        module.numBlocks() - invariants.visitedBlocks.size();
    std::printf("likely-unreachable blocks: %zu of %zu\n", unvisited,
                module.numBlocks());
    std::printf("must-alias lock pairs:     %zu\n",
                invariants.mustAliasLocks.size());
    std::printf("singleton spawn sites:     %zu\n\n",
                invariants.singletonSpawnSites.size());

    std::printf("Run the race_hunting example to see the predicated\n"
                "static analysis and speculative FastTrack on top of\n"
                "these invariants.\n");
    return 0;
}
