/**
 * @file
 * Slice-based debugging with OptSlice: the paper's motivating use
 * case — compare the backward slices of a failing and a passing
 * execution to localize a fault (Section 5, citing [4, 25]).
 *
 * The program is a tiny calculator interpreter.  One opcode has a
 * bug: "scale" multiplies by the wrong operand when the operand is
 * zero.  We slice the output in a passing and a failing run and diff
 * the dynamic slices; the bug line is exactly in the difference.
 */

#include <cstdio>

#include "analysis/slicer.h"
#include "dyn/giri.h"
#include "dyn/invariant_checker.h"
#include "dyn/plans.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "profile/profiler.h"

using namespace oha;

namespace {

struct Calculator
{
    ir::Module module;
    InstrId endpoint = kNoInstr;
    InstrId buggyStore = kNoInstr;
};

void
buildCalculator(Calculator &calc)
{
    ir::IRBuilder b(calc.module);
    const auto acc = calc.module.addGlobal("acc", 1);

    ir::Function *add = b.createFunction("op_add", 1);
    {
        const ir::Reg cell = b.globalAddr(acc);
        b.store(cell, b.add(b.load(cell), 0));
        b.ret(b.constInt(0));
    }
    ir::Function *scale = b.createFunction("op_scale", 1);
    {
        ir::Function *f = scale;
        ir::BasicBlock *buggy = b.createBlock(f, "buggy");
        ir::BasicBlock *ok = b.createBlock(f, "ok");
        ir::BasicBlock *out = b.createBlock(f, "out");
        const ir::Reg cell = b.globalAddr(acc);
        b.condBr(b.eq(0, b.constInt(0)), buggy, ok);
        b.setInsertPoint(buggy);
        // BUG: multiplies by 31 instead of by the (zero) operand.
        b.store(cell, b.mul(b.load(cell), b.constInt(31)));
        b.br(out);
        b.setInsertPoint(ok);
        b.store(cell, b.mul(b.load(cell), 0));
        b.br(out);
        b.setInsertPoint(out);
        b.ret(b.constInt(0));
    }

    b.createFunction("main", 0);
    {
        b.store(b.globalAddr(acc), b.constInt(1));
        ir::Function *mainF = b.currentFunction();
        ir::BasicBlock *loop = b.createBlock(mainF, "loop");
        ir::BasicBlock *body = b.createBlock(mainF, "body");
        ir::BasicBlock *isAdd = b.createBlock(mainF, "isAdd");
        ir::BasicBlock *isScale = b.createBlock(mainF, "isScale");
        ir::BasicBlock *next = b.createBlock(mainF, "next");
        ir::BasicBlock *done = b.createBlock(mainF, "done");
        const ir::Reg i = b.constInt(0);
        const ir::Reg n = b.constInt(8);
        const ir::Reg one = b.constInt(1);
        b.br(loop);
        b.setInsertPoint(loop);
        b.condBr(b.lt(i, n), body, done);
        b.setInsertPoint(body);
        const ir::Reg op = b.inputDyn(i, 0);
        const ir::Reg arg = b.inputDyn(i, 8);
        b.condBr(b.eq(op, b.constInt(0)), isAdd, isScale);
        b.setInsertPoint(isAdd);
        b.call(add, {arg});
        b.br(next);
        b.setInsertPoint(isScale);
        b.call(scale, {arg});
        b.br(next);
        b.setInsertPoint(next);
        b.binopTo(i, ir::BinOpKind::Add, i, one);
        b.br(loop);
        b.setInsertPoint(done);
        b.output(b.load(b.globalAddr(acc)));
        b.ret();
    }
    calc.module.finalize();

    for (InstrId id = 0; id < calc.module.numInstrs(); ++id) {
        const auto &ins = calc.module.instr(id);
        if (ins.op == ir::Opcode::Output)
            calc.endpoint = id;
        if (ins.op == ir::Opcode::Store &&
            calc.module.block(ins.block)->label() == "buggy") {
            calc.buggyStore = id;
        }
    }
}

exec::ExecConfig
makeScript(std::initializer_list<std::pair<int, int>> ops)
{
    exec::ExecConfig config;
    config.input.assign(16, 0);
    std::size_t i = 0;
    for (auto [op, arg] : ops) {
        config.input[i] = op;
        config.input[8 + i] = arg;
        ++i;
    }
    return config;
}

} // namespace

int
main()
{
    Calculator calc;
    buildCalculator(calc);
    const ir::Module &module = calc.module;

    // Profile passing scripts only (scale never sees a zero operand).
    prof::ProfilingCampaign campaign(module, {});
    for (int k = 1; k <= 6; ++k)
        campaign.addRun(makeScript({{0, k}, {1, 2}, {0, k + 1}}));
    const inv::InvariantSet &invariants = campaign.invariants();

    // Predicated static slice -> OptSlice instrumentation plan.
    analysis::AndersenOptions aopts;
    aopts.invariants = &invariants;
    const auto pts = analysis::runAndersen(module, aopts);
    analysis::SlicerOptions sopts;
    sopts.invariants = &invariants;
    const analysis::StaticSlicer slicer(module, pts, sopts);
    const auto staticSlice = slicer.slice(calc.endpoint);
    const auto plan = dyn::sliceGiriPlan(module, staticSlice.instructions);
    std::printf("predicated static slice: %zu instructions "
                "(buggy path pruned as likely-unreachable: %s)\n",
                staticSlice.instructions.size(),
                staticSlice.instructions.count(calc.buggyStore) ? "no"
                                                                : "yes");

    auto dynamicSlice = [&](const exec::ExecConfig &config) {
        // Optimistic first; fall back to the full plan on violation
        // (the failing run takes the never-profiled buggy path).
        dyn::GiriSlicer optimistic(module);
        dyn::CheckerConfig checkerConfig;
        dyn::InvariantChecker checker(module, invariants, checkerConfig);
        exec::Interpreter interp(module, config);
        checker.setControl(&interp);
        interp.attach(&optimistic, &plan);
        interp.attach(&checker, &checker.plan());
        interp.run();
        if (!checker.violated())
            return optimistic.slice(calc.endpoint);
        std::printf("  (mis-speculation: %s -> rollback)\n",
                    checker.violationReason().c_str());
        dyn::GiriSlicer full(module);
        const auto fullPlan = dyn::fullGiriPlan(module);
        exec::Interpreter redo(module, config);
        redo.attach(&full, &fullPlan);
        redo.run();
        return full.slice(calc.endpoint);
    };

    std::printf("\nslicing a passing run (scale by 2):\n");
    const auto passing =
        dynamicSlice(makeScript({{0, 3}, {1, 2}, {0, 1}}));
    std::printf("  dynamic slice: %zu instructions\n", passing.size());

    std::printf("\nslicing a failing run (scale by 0 -> wrong answer):\n");
    const auto failing =
        dynamicSlice(makeScript({{0, 3}, {1, 0}, {0, 1}}));
    std::printf("  dynamic slice: %zu instructions\n", failing.size());

    std::printf("\ninstructions only in the failing slice:\n");
    for (InstrId id : failing) {
        if (!passing.count(id)) {
            std::printf("  i%-4u %s%s\n", id,
                        ir::printInstruction(module, module.instr(id))
                            .c_str(),
                        id == calc.buggyStore ? "   <-- the bug" : "");
        }
    }
    return 0;
}
