/**
 * @file
 * Regenerate the paper-vs-measured comparison report from live runs
 * of both pipelines on every benchmark — the executable counterpart
 * of EXPERIMENTS.md.  Output is deterministic markdown, suitable for
 * diffing across library changes.
 *
 * Usage: paper_report [--quick]
 */

#include <cstdio>
#include <cstring>

#include "core/report.h"

int
main(int argc, char **argv)
{
    oha::core::ReportOptions options;
    if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
        options.profileRuns = 12;
        options.raceTestRuns = 6;
        options.sliceTestRuns = 4;
    }
    std::fputs(oha::core::generateSuiteReport(options).c_str(), stdout);
    return 0;
}
