/**
 * @file
 * oha_cli — a command-line driver for the library.
 *
 *   oha_cli dump <workload>              print a benchmark in IR text
 *   oha_cli run <file.ir> [inputs...]    parse + execute an IR file
 *   oha_cli profile <file.ir> <runs>     profile and print invariants
 *   oha_cli optft <workload>             full OptFT pipeline summary
 *   oha_cli optslice <workload>          full OptSlice pipeline summary
 *
 * The `run`/`profile` commands consume the textual IR produced by
 * `dump` (or written by hand), demonstrating the parse/print
 * round-trip as a real workflow.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/optft.h"
#include "core/optslice.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "profile/profiler.h"

using namespace oha;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: oha_cli dump <workload>\n"
                 "       oha_cli run <file.ir> [input words...]\n"
                 "       oha_cli profile <file.ir> <runs>\n"
                 "       oha_cli optft <workload>\n"
                 "       oha_cli optslice <workload>\n");
    return 2;
}

bool
isRaceWorkload(const std::string &name)
{
    for (const auto &n : workloads::raceWorkloadNames())
        if (n == name)
            return true;
    return false;
}

bool
isSliceWorkload(const std::string &name)
{
    for (const auto &n : workloads::sliceWorkloadNames())
        if (n == name)
            return true;
    return false;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        OHA_FATAL("cannot open '%s'", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

int
cmdDump(const std::string &name)
{
    if (isRaceWorkload(name)) {
        const auto w = workloads::makeRaceWorkload(name, 1, 1);
        std::fputs(ir::printModule(*w.module).c_str(), stdout);
        return 0;
    }
    if (isSliceWorkload(name)) {
        const auto w = workloads::makeSliceWorkload(name, 1, 1);
        std::fputs(ir::printModule(*w.module).c_str(), stdout);
        return 0;
    }
    std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
    return 1;
}

int
cmdRun(const std::string &path, int argc, char **argv)
{
    const auto module = ir::parseModule(readFile(path));
    exec::ExecConfig config;
    for (int i = 0; i < argc; ++i)
        config.input.push_back(std::atoll(argv[i]));
    exec::Interpreter interp(*module, config);
    const auto result = interp.run();
    for (const auto &[instr, value] : result.outputs)
        std::printf("output[i%u] = %lld\n", instr,
                    static_cast<long long>(value));
    std::printf("status=%d steps=%llu threads=%u\n",
                static_cast<int>(result.status),
                static_cast<unsigned long long>(result.steps),
                result.numThreads);
    return result.finished() ? 0 : 1;
}

int
cmdProfile(const std::string &path, int runs)
{
    const auto module = ir::parseModule(readFile(path));
    prof::ProfileOptions options;
    options.callContexts = true;
    prof::ProfilingCampaign campaign(*module, options);
    for (int i = 0; i < runs; ++i) {
        exec::ExecConfig config;
        config.scheduleSeed = static_cast<std::uint64_t>(i);
        Rng rng(static_cast<std::uint64_t>(i) * 7919 + 13);
        config.input.resize(64);
        for (auto &v : config.input)
            v = static_cast<std::int64_t>(rng.below(1024));
        campaign.addRun(config);
    }
    std::fputs(campaign.invariants().saveText().c_str(), stdout);
    return 0;
}

int
cmdOptFt(const std::string &name)
{
    if (!isRaceWorkload(name)) {
        std::fprintf(stderr, "'%s' is not a race workload\n",
                     name.c_str());
        return 1;
    }
    const auto workload = workloads::makeRaceWorkload(name, 48, 16);
    const auto r = core::runOptFt(workload);
    std::printf("%s: FastTrack %.1fx  HybridFT %.1fx  OptFT %.1fx  "
                "(speedups %.1fx / %.1fx)  races=%zu rollbacks=%llu "
                "reportsMatch=%s\n",
                r.name.c_str(), r.fastTrack.normalized(),
                r.hybridFt.normalized(), r.optFt.normalized(),
                r.speedupVsFastTrack, r.speedupVsHybrid, r.racesObserved,
                static_cast<unsigned long long>(r.misSpeculations),
                r.raceReportsMatch ? "yes" : "NO");
    return r.raceReportsMatch ? 0 : 1;
}

int
cmdOptSlice(const std::string &name)
{
    if (!isSliceWorkload(name)) {
        std::fprintf(stderr, "'%s' is not a slicing workload\n",
                     name.c_str());
        return 1;
    }
    const auto workload = workloads::makeSliceWorkload(name, 48, 12);
    const auto r = core::runOptSlice(workload);
    std::printf("%s: hybrid %.1fx  OptSlice %.1fx  speedup %.1fx  "
                "slices %0.f->%0.f  rollbacks=%llu slicesMatch=%s\n",
                r.name.c_str(), r.hybrid.normalized(),
                r.optimistic.normalized(), r.dynSpeedup, r.soundSliceSize,
                r.optSliceSize,
                static_cast<unsigned long long>(r.misSpeculations),
                r.sliceResultsMatch ? "yes" : "NO");
    return r.sliceResultsMatch ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string command = argv[1];
    if (command == "dump")
        return cmdDump(argv[2]);
    if (command == "run")
        return cmdRun(argv[2], argc - 3, argv + 3);
    if (command == "profile" && argc >= 4)
        return cmdProfile(argv[2], std::atoi(argv[3]));
    if (command == "optft")
        return cmdOptFt(argv[2]);
    if (command == "optslice")
        return cmdOptSlice(argv[2]);
    return usage();
}
