/**
 * @file
 * Figure 5 reproduction: normalized runtimes for FastTrack, hybrid
 * FastTrack and OptFT across the 14 race-detection benchmarks, with
 * the per-configuration cost breakdown (framework overhead, invariant
 * checks, FastTrack checks, rollbacks).  Benchmarks right of the
 * marked line are proven race-free by sound static race detection.
 *
 * Paper reference: OptFT 3.5x vs FastTrack, 1.8x vs hybrid FastTrack
 * on the 9 non-trivial benchmarks; OptFT approaches the RoadRunner
 * framework floor; sunflow/montecarlo see little gain.
 */

#include "bench_common.h"

using namespace oha;

namespace {

std::string
breakdown(const core::RunCost &cost)
{
    const double base = cost.base;
    auto part = [&](double v) { return fmtDouble(v / base, 2); };
    return part(cost.framework) + "/" + part(cost.invariants) + "/" +
           part(cost.analysis) + "/" + part(cost.rollback);
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 5: OptFT normalized runtimes (race detection)",
        "avg 3.5x vs FastTrack, 1.8x vs hybrid FT; right of the line "
        "statically race-free");

    TextTable table({"benchmark", "base(s)", "FastTrack", "Hybrid FT",
                     "OptFT", "OptFT fw/inv/ft/rb", "spd vs FT",
                     "spd vs Hyb", "races", "rollbacks"});

    // One job per benchmark: build the workload and evaluate its test
    // set; jobs run batched over OHA_THREADS workers.
    struct Row
    {
        double paperBaseline = 0;
        core::OptFtResult result;
    };
    const auto &names = workloads::raceWorkloadNames();
    const auto rows = bench::evalCorpus(names, [](const std::string &name) {
        const auto workload = workloads::makeRaceWorkload(
            name, bench::kRaceProfileRuns, bench::kRaceTestRuns);
        Row row;
        row.paperBaseline = workload.paperBaselineSeconds;
        row.result = core::runOptFt(workload, bench::standardOptFtConfig());
        return row;
    });

    bench::JsonReport json("fig5_optft_runtimes");
    std::vector<double> speedupFt, speedupHybrid;
    std::vector<double> invariantShares, rollbackShares;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const core::OptFtResult &result = rows[i].result;

        json.add(name, "fasttrack", result.fastTrack.total() * 1e3);
        json.add(name, "hybrid-ft", result.hybridFt.total() * 1e3);
        json.add(name, "optft", result.optFt.total() * 1e3);
        json.metric(name, "optft", "speedup_vs_fasttrack",
                    result.speedupVsFastTrack);
        json.metric(name, "optft", "rollbacks",
                    double(result.misSpeculations));

        std::string label = result.name;
        if (result.staticallyRaceFree)
            label += " *";
        table.addRow({label,
                      fmtDouble(rows[i].paperBaseline, 2),
                      fmtDouble(result.fastTrack.normalized(), 1),
                      fmtDouble(result.hybridFt.normalized(), 1),
                      fmtDouble(result.optFt.normalized(), 1),
                      breakdown(result.optFt),
                      fmtSpeedup(result.speedupVsFastTrack),
                      fmtSpeedup(result.speedupVsHybrid),
                      std::to_string(result.racesObserved),
                      std::to_string(result.misSpeculations)});

        if (!result.staticallyRaceFree) {
            speedupFt.push_back(result.speedupVsFastTrack);
            speedupHybrid.push_back(result.speedupVsHybrid);
            invariantShares.push_back(result.optFt.invariants /
                                      result.optFt.base);
            rollbackShares.push_back(result.optFt.rollback /
                                     result.optFt.base);
        }
        if (!result.raceReportsMatch) {
            std::printf("SOUNDNESS VIOLATION in %s: optimistic reports "
                        "differ from FastTrack\n",
                        name.c_str());
            return 1;
        }
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("(* = proven race-free by the sound static detector — "
                "the paper's right-of-line group)\n");
    std::printf("(breakdown columns are fractions of baseline: "
                "framework/invariant checks/FastTrack checks/rollbacks)\n\n");
    std::printf("average OptFT speedup over the 9 non-trivial "
                "benchmarks: %.1fx vs FastTrack (paper: 3.5x), "
                "%.1fx vs hybrid FT (paper: 1.8x)\n",
                bench::mean(speedupFt), bench::mean(speedupHybrid));
    std::printf("average invariant-check overhead: %.1f%% of baseline "
                "(paper: 4.3%%); average rollback overhead: %.1f%% "
                "(paper: 5.7%%, range 0-21.9%%)\n",
                100.0 * bench::mean(invariantShares),
                100.0 * bench::mean(rollbackShares));
    json.write();
    return 0;
}
