/**
 * @file
 * Figure 7 reproduction: the effect of profiling effort on OptSlice
 * mis-speculation rates.  For each benchmark we sweep the number of
 * profiled executions and report the fraction of testing-corpus
 * slicing tasks that violated an invariant (and hence rolled back).
 *
 * Paper reference: most benchmarks converge to ~0% very quickly;
 * vim and go explore large state spaces and converge slowest.
 */

#include "bench_common.h"

using namespace oha;

int
main()
{
    bench::banner("Figure 7: mis-speculation rate vs profiling effort",
                  "most benchmarks -> ~0 quickly; vim/go converge "
                  "slowest");

    const std::vector<std::size_t> sweep = {1, 2, 4, 8, 16, 32, 48};

    std::vector<std::string> headers = {"benchmark"};
    for (std::size_t runs : sweep)
        headers.push_back(std::to_string(runs) + " runs");
    TextTable table(headers);

    for (const auto &name : workloads::sliceWorkloadNames()) {
        std::vector<std::string> row = {name};
        for (std::size_t runs : sweep) {
            const auto workload = workloads::makeSliceWorkload(
                name, runs, bench::kSliceTestRuns);
            core::OptSliceConfig config = bench::standardOptSliceConfig();
            config.maxProfileRuns = runs;
            config.convergenceWindow = runs; // profile the whole set
            const auto result = core::runOptSlice(workload, config);
            const double tasks =
                double(result.testRuns) * double(result.endpoints);
            const double rate =
                tasks > 0 ? double(result.misSpeculations) / tasks : 0.0;
            row.push_back(fmtDouble(rate, 3));
            if (!result.sliceResultsMatch) {
                std::printf("SOUNDNESS VIOLATION in %s @ %zu runs\n",
                            name.c_str(), runs);
                return 1;
            }
        }
        table.addRow(row);
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("(cells are mis-speculation rates over testing tasks; "
                "the x-axis sweeps profiling executions, the paper's "
                "profiling-time axis)\n");
    return 0;
}
