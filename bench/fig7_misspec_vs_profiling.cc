/**
 * @file
 * Figure 7 reproduction: the effect of profiling effort on OptSlice
 * mis-speculation rates.  For each benchmark we sweep the number of
 * profiled executions and report the fraction of testing-corpus
 * slicing tasks that violated an invariant (and hence rolled back).
 *
 * Paper reference: most benchmarks converge to ~0% very quickly;
 * vim and go explore large state spaces and converge slowest.
 *
 * Two series per benchmark: "misspec_rate" is the historical
 * fire-and-forget pipeline (adaptiveRecovery off — every bad input
 * pays its own rollback), "misspec_rate_adaptive" is the default
 * demote + re-predicate repair loop, which should dominate the
 * historical series wherever misspeculation is frequent (one repair
 * per lying fact instead of one rollback per affected task).
 */

#include "bench_common.h"

using namespace oha;

int
main()
{
    bench::banner("Figure 7: mis-speculation rate vs profiling effort",
                  "most benchmarks -> ~0 quickly; vim/go converge "
                  "slowest");

    const std::vector<std::size_t> sweep = {1, 2, 4, 8, 16, 32, 48};

    std::vector<std::string> headers = {"benchmark"};
    for (std::size_t runs : sweep)
        headers.push_back(std::to_string(runs) + " runs");
    TextTable table(headers);

    // Every (benchmark, profiling-effort, recovery-mode) cell of the
    // sweep grid is an independent pipeline evaluation; batch the
    // whole grid over OHA_THREADS workers and format the cells in
    // grid order.
    const auto &names = workloads::sliceWorkloadNames();
    const auto cells = support::runBatch(
        names.size() * sweep.size() * 2, [&](std::size_t cell) {
            const std::size_t grid = cell / 2;
            const std::string &name = names[grid / sweep.size()];
            const std::size_t runs = sweep[grid % sweep.size()];
            const auto workload = workloads::makeSliceWorkload(
                name, runs, bench::kSliceTestRuns);
            core::OptSliceConfig config = bench::standardOptSliceConfig();
            config.maxProfileRuns = runs;
            config.convergenceWindow = runs; // profile the whole set
            config.adaptiveRecovery = cell % 2 == 1;
            return core::runOptSlice(workload, config);
        });

    auto misspecRate = [](const core::OptSliceResult &result) {
        const double tasks =
            double(result.testRuns) * double(result.endpoints);
        return tasks > 0 ? double(result.misSpeculations) / tasks : 0.0;
    };

    bench::JsonReport json("fig7_misspec_vs_profiling");
    for (std::size_t n = 0; n < names.size(); ++n) {
        std::vector<std::string> row = {names[n]};
        for (std::size_t s = 0; s < sweep.size(); ++s) {
            const auto &historical =
                cells[(n * sweep.size() + s) * 2];
            const auto &adaptive =
                cells[(n * sweep.size() + s) * 2 + 1];
            const double rate = misspecRate(historical);
            const double adaptiveRate = misspecRate(adaptive);
            row.push_back(fmtDouble(rate, 3) + "/" +
                          fmtDouble(adaptiveRate, 3));
            const std::string variant =
                "profile-" + std::to_string(sweep[s]);
            json.metric(names[n], variant, "misspec_rate", rate);
            json.metric(names[n], variant, "misspec_rate_adaptive",
                        adaptiveRate);
            json.metric(names[n], variant, "repredications",
                        double(adaptive.repredications));
            if (!historical.sliceResultsMatch ||
                !adaptive.sliceResultsMatch) {
                std::printf("SOUNDNESS VIOLATION in %s @ %zu runs\n",
                            names[n].c_str(), sweep[s]);
                return 1;
            }
            if (adaptiveRate > rate) {
                std::printf("RECOVERY REGRESSION in %s @ %zu runs: "
                            "adaptive %.3f > historical %.3f\n",
                            names[n].c_str(), sweep[s], adaptiveRate,
                            rate);
                return 1;
            }
        }
        table.addRow(row);
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("(cells are historical/adaptive mis-speculation rates "
                "over testing tasks; the x-axis sweeps profiling "
                "executions, the paper's profiling-time axis)\n");
    json.write();
    return 0;
}
