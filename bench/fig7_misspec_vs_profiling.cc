/**
 * @file
 * Figure 7 reproduction: the effect of profiling effort on OptSlice
 * mis-speculation rates.  For each benchmark we sweep the number of
 * profiled executions and report the fraction of testing-corpus
 * slicing tasks that violated an invariant (and hence rolled back).
 *
 * Paper reference: most benchmarks converge to ~0% very quickly;
 * vim and go explore large state spaces and converge slowest.
 */

#include "bench_common.h"

using namespace oha;

int
main()
{
    bench::banner("Figure 7: mis-speculation rate vs profiling effort",
                  "most benchmarks -> ~0 quickly; vim/go converge "
                  "slowest");

    const std::vector<std::size_t> sweep = {1, 2, 4, 8, 16, 32, 48};

    std::vector<std::string> headers = {"benchmark"};
    for (std::size_t runs : sweep)
        headers.push_back(std::to_string(runs) + " runs");
    TextTable table(headers);

    // Every (benchmark, profiling-effort) cell of the sweep grid is an
    // independent pipeline evaluation; batch the whole grid over
    // OHA_THREADS workers and format the cells in grid order.
    const auto &names = workloads::sliceWorkloadNames();
    const auto cells = support::runBatch(
        names.size() * sweep.size(), [&](std::size_t cell) {
            const std::string &name = names[cell / sweep.size()];
            const std::size_t runs = sweep[cell % sweep.size()];
            const auto workload = workloads::makeSliceWorkload(
                name, runs, bench::kSliceTestRuns);
            core::OptSliceConfig config = bench::standardOptSliceConfig();
            config.maxProfileRuns = runs;
            config.convergenceWindow = runs; // profile the whole set
            return core::runOptSlice(workload, config);
        });

    bench::JsonReport json("fig7_misspec_vs_profiling");
    for (std::size_t n = 0; n < names.size(); ++n) {
        std::vector<std::string> row = {names[n]};
        for (std::size_t s = 0; s < sweep.size(); ++s) {
            const auto &result = cells[n * sweep.size() + s];
            const double tasks =
                double(result.testRuns) * double(result.endpoints);
            const double rate =
                tasks > 0 ? double(result.misSpeculations) / tasks : 0.0;
            row.push_back(fmtDouble(rate, 3));
            json.metric(names[n],
                        "profile-" + std::to_string(sweep[s]),
                        "misspec_rate", rate);
            if (!result.sliceResultsMatch) {
                std::printf("SOUNDNESS VIOLATION in %s @ %zu runs\n",
                            names[n].c_str(), sweep[s]);
                return 1;
            }
        }
        table.addRow(row);
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("(cells are mis-speculation rates over testing tasks; "
                "the x-axis sweeps profiling executions, the paper's "
                "profiling-time axis)\n");
    json.write();
    return 0;
}
