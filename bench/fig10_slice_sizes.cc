/**
 * @file
 * Figure 10 reproduction: static slice sizes (instructions) from the
 * sound ("Base Static") and predicated ("Optimistic Static") slicers
 * over the selected non-trivial endpoints.
 *
 * Paper reference: the optimistic slicer shrinks slices by one to two
 * orders of magnitude.
 */

#include "bench_common.h"

using namespace oha;

int
main()
{
    bench::banner("Figure 10: static slice sizes, base vs optimistic",
                  "1-2 orders of magnitude reduction");

    TextTable table({"benchmark", "base static", "optimistic static",
                     "reduction"});

    bench::JsonReport json("fig10_slice_sizes");
    std::vector<double> reductions;
    for (const auto &name : workloads::sliceWorkloadNames()) {
        const auto workload = workloads::makeSliceWorkload(
            name, bench::kSliceProfileRuns, bench::kSliceTestRuns);
        const auto result =
            core::runOptSlice(workload, bench::standardOptSliceConfig());

        const double reduction =
            result.soundSliceSize /
            std::max(result.optSliceSize, 1.0);
        reductions.push_back(reduction);
        table.addRow({result.name, fmtDouble(result.soundSliceSize, 0),
                      fmtDouble(result.optSliceSize, 0),
                      fmtSpeedup(reduction)});
        json.metric(name, "base", "slice_size", result.soundSliceSize);
        json.metric(name, "optimistic", "slice_size",
                    result.optSliceSize);
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("average reduction: %.1fx\n", bench::mean(reductions));
    json.write();
    return 0;
}
