/**
 * @file
 * Shared scaffolding for the per-figure/per-table benchmark
 * harnesses.  Each binary in bench/ regenerates one table or figure
 * from the paper's evaluation section (see DESIGN.md's experiment
 * index); this header pins the corpus sizes and provides the
 * formatting helpers so the outputs line up run over run.
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/optft.h"
#include "core/optslice.h"
#include "support/durable_file.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace oha::bench {

/** Standard corpus sizes (scaled-down analogues of Section 6.1's 64 /
 *  512-2048 input sets). */
constexpr std::size_t kRaceProfileRuns = 48;
constexpr std::size_t kRaceTestRuns = 16;
constexpr std::size_t kSliceProfileRuns = 48;
constexpr std::size_t kSliceTestRuns = 12;

inline core::OptFtConfig
standardOptFtConfig()
{
    core::OptFtConfig config;
    config.maxProfileRuns = kRaceProfileRuns;
    config.convergenceWindow = 8;
    return config;
}

inline core::OptSliceConfig
standardOptSliceConfig()
{
    core::OptSliceConfig config;
    config.maxProfileRuns = kSliceProfileRuns;
    config.convergenceWindow = 8;
    return config;
}

/** Print the standard experiment banner. */
inline void
banner(const char *experiment, const char *paperClaim)
{
    std::printf("================================================="
                "=====================\n");
    std::printf("%s\n", experiment);
    std::printf("paper: %s\n", paperClaim);
    std::printf("================================================="
                "=====================\n\n");
}

/**
 * Evaluate one benchmark per entry of @p names — fn(name) builds the
 * workload and runs its full test-set evaluation — batching the
 * evaluations over OHA_THREADS worker threads.  Results come back in
 * `names` order, so the printed tables are byte-identical for any
 * thread count.
 */
template <typename Fn>
auto
evalCorpus(const std::vector<std::string> &names, Fn fn)
    -> std::vector<decltype(fn(names.front()))>
{
    return support::runBatch(
        names.size(), [&](std::size_t i) { return fn(names[i]); });
}

/** Arithmetic mean helper (the paper reports plain averages). */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0;
    double sum = 0;
    for (double v : values)
        sum += v;
    return sum / double(values.size());
}

/** Monotonic wall clock in milliseconds. */
inline double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Machine-readable sink for benchmark records.  Every harness creates
 * one with its figure name and calls add() per (workload, variant)
 * measurement; write() emits `BENCH_<figure>.json` in the working
 * directory so the perf trajectory can be tracked across PRs without
 * scraping the human-readable tables.  `events` is the number of
 * delivered events when the harness tracks them, 0 otherwise (the
 * pipeline-level figure harnesses report modeled costs, not event
 * streams).
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string figure) : figure_(std::move(figure)) {}

    void
    add(const std::string &workload, const std::string &variant,
        double wallMs, std::uint64_t events = 0)
    {
        records_.push_back({workload, variant, wallMs, events, "", 0});
    }

    /** Record a named scalar (slice size, alias rate, break-even
     *  seconds...) for harnesses whose headline number is not an
     *  event-throughput measurement. */
    void
    metric(const std::string &workload, const std::string &variant,
           const std::string &name, double value)
    {
        records_.push_back({workload, variant, 0, 0, name, value});
    }

    /** Write BENCH_<figure>.json atomically (temp + fsync + rename —
     *  a crashed or disk-full run never truncates the previous
     *  report); returns false on I/O failure. */
    bool
    write() const
    {
        const std::string path = "BENCH_" + figure_ + ".json";
        char line[512];
        std::string json;
        // Thread-scaling series (solver-threads-N, replay shards...)
        // are only interpretable against the host's core count, so
        // stamp it into every report.
        std::snprintf(line, sizeof(line),
                      "{\n  \"figure\": \"%s\",\n"
                      "  \"hardware_concurrency\": %u,\n"
                      "  \"records\": [\n",
                      figure_.c_str(),
                      std::thread::hardware_concurrency());
        json += line;
        for (std::size_t i = 0; i < records_.size(); ++i) {
            const Record &r = records_[i];
            const char *tail = i + 1 < records_.size() ? "," : "";
            if (!r.metricName.empty()) {
                std::snprintf(line, sizeof(line),
                              "    {\"workload\": \"%s\", \"variant\": "
                              "\"%s\", \"metric\": \"%s\", "
                              "\"value\": %.6f}%s\n",
                              r.workload.c_str(), r.variant.c_str(),
                              r.metricName.c_str(), r.metricValue, tail);
                json += line;
                continue;
            }
            const double perSec =
                r.wallMs > 0 ? double(r.events) / (r.wallMs / 1000.0) : 0;
            std::snprintf(
                line, sizeof(line),
                "    {\"workload\": \"%s\", \"variant\": \"%s\", "
                "\"wall_ms\": %.3f, \"events\": %llu, "
                "\"events_per_sec\": %.0f}%s\n",
                r.workload.c_str(), r.variant.c_str(), r.wallMs,
                static_cast<unsigned long long>(r.events), perSec, tail);
            json += line;
        }
        json += "  ]\n}\n";
        std::string error;
        if (!support::atomicWriteFile(path, json, &error)) {
            std::fprintf(stderr, "warning: cannot write %s: %s\n",
                         path.c_str(), error.c_str());
            return false;
        }
        std::printf("wrote %s (%zu records)\n", path.c_str(),
                    records_.size());
        return true;
    }

  private:
    struct Record
    {
        std::string workload;
        std::string variant;
        double wallMs;
        std::uint64_t events;
        std::string metricName; ///< empty for throughput records
        double metricValue;
    };

    std::string figure_;
    std::vector<Record> records_;
};

} // namespace oha::bench
