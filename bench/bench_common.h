/**
 * @file
 * Shared scaffolding for the per-figure/per-table benchmark
 * harnesses.  Each binary in bench/ regenerates one table or figure
 * from the paper's evaluation section (see DESIGN.md's experiment
 * index); this header pins the corpus sizes and provides the
 * formatting helpers so the outputs line up run over run.
 */

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/optft.h"
#include "core/optslice.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace oha::bench {

/** Standard corpus sizes (scaled-down analogues of Section 6.1's 64 /
 *  512-2048 input sets). */
constexpr std::size_t kRaceProfileRuns = 48;
constexpr std::size_t kRaceTestRuns = 16;
constexpr std::size_t kSliceProfileRuns = 48;
constexpr std::size_t kSliceTestRuns = 12;

inline core::OptFtConfig
standardOptFtConfig()
{
    core::OptFtConfig config;
    config.maxProfileRuns = kRaceProfileRuns;
    config.convergenceWindow = 8;
    return config;
}

inline core::OptSliceConfig
standardOptSliceConfig()
{
    core::OptSliceConfig config;
    config.maxProfileRuns = kSliceProfileRuns;
    config.convergenceWindow = 8;
    return config;
}

/** Print the standard experiment banner. */
inline void
banner(const char *experiment, const char *paperClaim)
{
    std::printf("================================================="
                "=====================\n");
    std::printf("%s\n", experiment);
    std::printf("paper: %s\n", paperClaim);
    std::printf("================================================="
                "=====================\n\n");
}

/**
 * Evaluate one benchmark per entry of @p names — fn(name) builds the
 * workload and runs its full test-set evaluation — batching the
 * evaluations over OHA_THREADS worker threads.  Results come back in
 * `names` order, so the printed tables are byte-identical for any
 * thread count.
 */
template <typename Fn>
auto
evalCorpus(const std::vector<std::string> &names, Fn fn)
    -> std::vector<decltype(fn(names.front()))>
{
    return support::runBatch(
        names.size(), [&](std::size_t i) { return fn(names[i]); });
}

/** Arithmetic mean helper (the paper reports plain averages). */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0;
    double sum = 0;
    for (double v : values)
        sum += v;
    return sum / double(values.size());
}

} // namespace oha::bench
