/**
 * @file
 * Figure 6 reproduction: normalized runtimes of the traditional
 * hybrid slicer versus OptSlice across the 7 C-application
 * benchmarks, with the OptSlice cost breakdown (invariant checks,
 * slicing instrumentation, rollbacks).
 *
 * Paper reference: speedups 1.2x (nginx) to 78.5x (zlib), average
 * 8.3x; perl/nginx smallest; pure Giri is not run because it
 * exhausts system resources.
 */

#include "bench_common.h"

using namespace oha;

namespace {

std::string
breakdown(const core::RunCost &cost)
{
    const double base = cost.base;
    auto part = [&](double v) { return fmtDouble(v / base, 2); };
    return part(cost.invariants) + "/" + part(cost.analysis) + "/" +
           part(cost.rollback);
}

} // namespace

int
main()
{
    bench::banner("Figure 6: OptSlice normalized runtimes (dynamic "
                  "slicing)",
                  "speedups 1.2x-78.5x over traditional hybrid, avg "
                  "8.3x; zlib largest, nginx/perl smallest");

    TextTable table({"benchmark", "base(s)", "Trad. Hybrid", "OptSlice",
                     "OptSlice inv/slice/rb", "speedup", "rollbacks",
                     "endpoints"});

    // One job per benchmark, batched over OHA_THREADS workers.
    struct Row
    {
        double paperBaseline = 0;
        core::OptSliceResult result;
    };
    const auto &names = workloads::sliceWorkloadNames();
    const auto rows = bench::evalCorpus(names, [](const std::string &name) {
        const auto workload = workloads::makeSliceWorkload(
            name, bench::kSliceProfileRuns, bench::kSliceTestRuns);
        Row row;
        row.paperBaseline = workload.paperBaselineSeconds;
        row.result =
            core::runOptSlice(workload, bench::standardOptSliceConfig());
        return row;
    });

    bench::JsonReport json("fig6_optslice_runtimes");
    std::vector<double> speedups;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const core::OptSliceResult &result = rows[i].result;

        json.add(name, "hybrid", result.hybrid.total() * 1e3);
        json.add(name, "optslice", result.optimistic.total() * 1e3);
        json.metric(name, "optslice", "dyn_speedup", result.dynSpeedup);
        json.metric(name, "optslice", "rollbacks",
                    double(result.misSpeculations));

        table.addRow({result.name,
                      fmtDouble(rows[i].paperBaseline, 2),
                      fmtDouble(result.hybrid.normalized(), 1),
                      fmtDouble(result.optimistic.normalized(), 1),
                      breakdown(result.optimistic),
                      fmtSpeedup(result.dynSpeedup),
                      std::to_string(result.misSpeculations),
                      std::to_string(result.endpoints)});
        speedups.push_back(result.dynSpeedup);

        if (!result.sliceResultsMatch) {
            std::printf("SOUNDNESS VIOLATION in %s: optimistic slices "
                        "differ from hybrid slices\n",
                        name.c_str());
            return 1;
        }
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("(breakdown columns are fractions of baseline: "
                "invariant checks/slicing instrumentation/rollbacks)\n");
    std::printf("(pure Giri is omitted, as in the paper: full "
                "instrumentation exhausts resources on real runs)\n\n");
    std::printf("average OptSlice speedup: %.1fx (paper: 8.3x)\n",
                bench::mean(speedups));
    json.write();
    return 0;
}
