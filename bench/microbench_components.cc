/**
 * @file
 * google-benchmark microbenchmarks for the substrate components:
 * interpreter throughput, FastTrack per-event cost, Giri trace
 * appends, Andersen solving, static slicing and invariant checking.
 * These are wall-clock measurements of THIS implementation (not paper
 * reproductions) — useful for tracking regressions in the library
 * itself.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "analysis/race_detector.h"
#include "analysis/slicer.h"
#include "dyn/fasttrack.h"
#include "dyn/giri.h"
#include "dyn/plans.h"
#include "profile/profiler.h"
#include "workloads/workloads.h"

using namespace oha;

namespace {

const workloads::Workload &
raceWorkload()
{
    static const workloads::Workload workload =
        workloads::makeRaceWorkload("lusearch", 1, 1);
    return workload;
}

const workloads::Workload &
sliceWorkload()
{
    static const workloads::Workload workload =
        workloads::makeSliceWorkload("redis", 1, 1);
    return workload;
}

void
BM_InterpreterPlain(benchmark::State &state)
{
    const auto &workload = raceWorkload();
    std::uint64_t steps = 0;
    for (auto _ : state) {
        exec::Interpreter interp(*workload.module,
                                 workload.testingSet.front());
        const auto result = interp.run();
        steps += result.steps;
        benchmark::DoNotOptimize(result.steps);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_InterpreterPlain);

void
BM_FastTrackFullInstrumentation(benchmark::State &state)
{
    const auto &workload = raceWorkload();
    const auto plan = dyn::fullFastTrackPlan(*workload.module);
    std::uint64_t steps = 0;
    for (auto _ : state) {
        dyn::FastTrack tool;
        exec::Interpreter interp(*workload.module,
                                 workload.testingSet.front());
        interp.attach(&tool, &plan);
        const auto result = interp.run();
        steps += result.steps;
        benchmark::DoNotOptimize(tool.races().size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_FastTrackFullInstrumentation);

void
BM_GiriFullInstrumentation(benchmark::State &state)
{
    const auto &workload = sliceWorkload();
    const auto plan = dyn::fullGiriPlan(*workload.module);
    std::uint64_t steps = 0;
    for (auto _ : state) {
        dyn::GiriSlicer tool(*workload.module);
        exec::Interpreter interp(*workload.module,
                                 workload.testingSet.front());
        interp.attach(&tool, &plan);
        const auto result = interp.run();
        steps += result.steps;
        benchmark::DoNotOptimize(tool.traceLength());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_GiriFullInstrumentation);

void
BM_AndersenCi(benchmark::State &state)
{
    const auto &workload = sliceWorkload();
    for (auto _ : state) {
        const auto result = analysis::runAndersen(*workload.module, {});
        benchmark::DoNotOptimize(result.workUnits);
    }
}
BENCHMARK(BM_AndersenCi);

void
BM_AndersenCs(benchmark::State &state)
{
    const auto &workload = sliceWorkload();
    analysis::AndersenOptions options;
    options.contextSensitive = true;
    for (auto _ : state) {
        const auto result =
            analysis::runAndersen(*workload.module, options);
        benchmark::DoNotOptimize(result.workUnits);
    }
}
BENCHMARK(BM_AndersenCs);

void
BM_StaticRaceDetector(benchmark::State &state)
{
    const auto &workload = raceWorkload();
    for (auto _ : state) {
        const auto result =
            analysis::runStaticRaceDetector(*workload.module, nullptr);
        benchmark::DoNotOptimize(result.racyAccesses.size());
    }
}
BENCHMARK(BM_StaticRaceDetector);

void
BM_StaticSlice(benchmark::State &state)
{
    const auto &workload = sliceWorkload();
    const auto pts = analysis::runAndersen(*workload.module, {});
    const analysis::StaticSlicer slicer(*workload.module, pts, {});
    InstrId endpoint = kNoInstr;
    for (InstrId id = 0; id < workload.module->numInstrs(); ++id)
        if (workload.module->instr(id).op == ir::Opcode::Output)
            endpoint = id;
    for (auto _ : state) {
        const auto slice = slicer.slice(endpoint);
        benchmark::DoNotOptimize(slice.instructions.size());
    }
}
BENCHMARK(BM_StaticSlice);

void
BM_ProfilingRun(benchmark::State &state)
{
    const auto &workload = sliceWorkload();
    for (auto _ : state) {
        prof::ProfileOptions options;
        options.callContexts = true;
        prof::ProfilingCampaign campaign(*workload.module, options);
        campaign.addRun(workload.profilingSet.front());
        benchmark::DoNotOptimize(campaign.invariants().factCount());
    }
}
BENCHMARK(BM_ProfilingRun);

/**
 * Console reporter that additionally captures every benchmark's
 * per-iteration wall time (and item throughput where the benchmark
 * sets items-processed) into the shared BENCH_*.json sink, so this
 * binary emits the same machine-readable record stream as the figure
 * harnesses.
 */
class JsonTeeReporter : public benchmark::ConsoleReporter
{
  public:
    explicit JsonTeeReporter(bench::JsonReport &json) : json_(json) {}

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            const double iters =
                run.iterations > 0 ? double(run.iterations) : 1.0;
            const double wallMs =
                run.real_accumulated_time / iters * 1e3;
            // items_per_second is already finalized to a rate by the
            // time it reaches the reporter; undo it to items/iteration.
            const auto it = run.counters.find("items_per_second");
            const std::uint64_t events =
                it != run.counters.end()
                    ? static_cast<std::uint64_t>(
                          double(it->second) *
                          run.real_accumulated_time / iters)
                    : 0;
            json_.add(run.benchmark_name(), "per-iteration", wallMs,
                      events);
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    bench::JsonReport &json_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    bench::JsonReport json("microbench_components");
    JsonTeeReporter reporter(json);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    json.write();
    benchmark::Shutdown();
    return 0;
}
