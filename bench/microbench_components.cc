/**
 * @file
 * google-benchmark microbenchmarks for the substrate components:
 * interpreter throughput, FastTrack per-event cost, Giri trace
 * appends, Andersen solving, static slicing and invariant checking.
 * These are wall-clock measurements of THIS implementation (not paper
 * reproductions) — useful for tracking regressions in the library
 * itself.
 */

#include <benchmark/benchmark.h>

#include "analysis/race_detector.h"
#include "analysis/slicer.h"
#include "dyn/fasttrack.h"
#include "dyn/giri.h"
#include "dyn/plans.h"
#include "profile/profiler.h"
#include "workloads/workloads.h"

using namespace oha;

namespace {

const workloads::Workload &
raceWorkload()
{
    static const workloads::Workload workload =
        workloads::makeRaceWorkload("lusearch", 1, 1);
    return workload;
}

const workloads::Workload &
sliceWorkload()
{
    static const workloads::Workload workload =
        workloads::makeSliceWorkload("redis", 1, 1);
    return workload;
}

void
BM_InterpreterPlain(benchmark::State &state)
{
    const auto &workload = raceWorkload();
    std::uint64_t steps = 0;
    for (auto _ : state) {
        exec::Interpreter interp(*workload.module,
                                 workload.testingSet.front());
        const auto result = interp.run();
        steps += result.steps;
        benchmark::DoNotOptimize(result.steps);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_InterpreterPlain);

void
BM_FastTrackFullInstrumentation(benchmark::State &state)
{
    const auto &workload = raceWorkload();
    const auto plan = dyn::fullFastTrackPlan(*workload.module);
    std::uint64_t steps = 0;
    for (auto _ : state) {
        dyn::FastTrack tool;
        exec::Interpreter interp(*workload.module,
                                 workload.testingSet.front());
        interp.attach(&tool, &plan);
        const auto result = interp.run();
        steps += result.steps;
        benchmark::DoNotOptimize(tool.races().size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_FastTrackFullInstrumentation);

void
BM_GiriFullInstrumentation(benchmark::State &state)
{
    const auto &workload = sliceWorkload();
    const auto plan = dyn::fullGiriPlan(*workload.module);
    std::uint64_t steps = 0;
    for (auto _ : state) {
        dyn::GiriSlicer tool(*workload.module);
        exec::Interpreter interp(*workload.module,
                                 workload.testingSet.front());
        interp.attach(&tool, &plan);
        const auto result = interp.run();
        steps += result.steps;
        benchmark::DoNotOptimize(tool.traceLength());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_GiriFullInstrumentation);

void
BM_AndersenCi(benchmark::State &state)
{
    const auto &workload = sliceWorkload();
    for (auto _ : state) {
        const auto result = analysis::runAndersen(*workload.module, {});
        benchmark::DoNotOptimize(result.workUnits);
    }
}
BENCHMARK(BM_AndersenCi);

void
BM_AndersenCs(benchmark::State &state)
{
    const auto &workload = sliceWorkload();
    analysis::AndersenOptions options;
    options.contextSensitive = true;
    for (auto _ : state) {
        const auto result =
            analysis::runAndersen(*workload.module, options);
        benchmark::DoNotOptimize(result.workUnits);
    }
}
BENCHMARK(BM_AndersenCs);

void
BM_StaticRaceDetector(benchmark::State &state)
{
    const auto &workload = raceWorkload();
    for (auto _ : state) {
        const auto result =
            analysis::runStaticRaceDetector(*workload.module, nullptr);
        benchmark::DoNotOptimize(result.racyAccesses.size());
    }
}
BENCHMARK(BM_StaticRaceDetector);

void
BM_StaticSlice(benchmark::State &state)
{
    const auto &workload = sliceWorkload();
    const auto pts = analysis::runAndersen(*workload.module, {});
    const analysis::StaticSlicer slicer(*workload.module, pts, {});
    InstrId endpoint = kNoInstr;
    for (InstrId id = 0; id < workload.module->numInstrs(); ++id)
        if (workload.module->instr(id).op == ir::Opcode::Output)
            endpoint = id;
    for (auto _ : state) {
        const auto slice = slicer.slice(endpoint);
        benchmark::DoNotOptimize(slice.instructions.size());
    }
}
BENCHMARK(BM_StaticSlice);

void
BM_ProfilingRun(benchmark::State &state)
{
    const auto &workload = sliceWorkload();
    for (auto _ : state) {
        prof::ProfileOptions options;
        options.callContexts = true;
        prof::ProfilingCampaign campaign(*workload.module, options);
        campaign.addRun(workload.profilingSet.front());
        benchmark::DoNotOptimize(campaign.invariants().factCount());
    }
}
BENCHMARK(BM_ProfilingRun);

} // namespace

BENCHMARK_MAIN();
