/**
 * @file
 * Static-phase microbenchmark: constraint-solver throughput and
 * end-to-end static-analysis wall time, pre- vs post-overhaul.
 *
 * Like microbench_shadow, this measures real wall time of THIS
 * implementation (the figure/table harnesses report modeled costs),
 * making it the regression observable for the predicated static
 * analysis hot path.  Two comparisons per workload:
 *
 *   solver        one Andersen solve, reference (pre-overhaul FIFO
 *                 full-propagation) vs delta (difference propagation,
 *                 offline constraint reduction, least-recently-fired
 *                 worklist); events = solver work units;
 *   static-phase  a Figure 7/8-style calibration sweep: the whole
 *                 static phase (sound + predicated detector or slicer
 *                 stack plus the calibration / ranking solves) re-run
 *                 once per profiling-campaign size, exactly as the
 *                 sweep harnesses re-run it per sweep point.  Pre is
 *                 the pre-overhaul shape: reference solver, every
 *                 solve and every slice from scratch at every point.
 *                 Post is the production shape: delta solver with all
 *                 static results routed through the memo cache, so
 *                 sweep points whose invariant sets have converged
 *                 reuse whole detector outputs and slice sets.  The
 *                 cache is reset per repetition, so each rep measures
 *                 a cold sweep, not a warmed-over one.
 *
 * A third series measures the wavefront-parallel solver's thread
 * scaling: from-scratch solves of a propagation-dominated
 * dispatch-surface module (the suite workloads solve in under 2 ms,
 * where per-solve fixed costs drown any parallel win; this one is
 * built with 2048 registered objects so per-wave set unions dominate)
 * at solver-thread counts 1, 2 and 4, reported as solver-threads-N.
 * The 4-thread solve must be >= 2x faster than 1-thread — the PR's
 * acceptance bar, enforced only on hosts with >= 4 hardware threads
 * (the JSON's hardware_concurrency field says which regime a recorded
 * run was in) — and all three must report identical work units (the
 * solver is deterministic; only wall time may change).
 *
 * Each measurement is best-of-N; BENCH_microbench_static.json carries
 * the samples plus the aggregate end-to-end speedup.
 * OHA_BENCH_SMOKE=1 (CI) shrinks repetitions and downgrades a missed
 * scaling bar to a warning — shared-runner timing is too noisy to
 * gate on — but never relaxes the work-unit parity assert.
 */

#include "bench_common.h"

#include <cstdlib>

#include "analysis/andersen_cache.h"
#include "analysis/race_detector.h"
#include "analysis/slicer.h"
#include "profile/profiler.h"
#include "workloads/workloads.h"

using namespace oha;

namespace {

bool
smokeMode()
{
    const char *env = std::getenv("OHA_BENCH_SMOKE");
    return env && *env && *env != '0';
}

struct Sample
{
    double bestMs = 0;
    std::uint64_t events = 0; ///< solver work units (0 if untracked)
};

template <typename RunOnce>
Sample
measure(RunOnce runOnce)
{
    const int kReps = smokeMode() ? 2 : 5;
    Sample sample;
    for (int rep = 0; rep < kReps; ++rep) {
        const double t0 = bench::nowMs();
        const std::uint64_t events = runOnce();
        const double ms = bench::nowMs() - t0;
        if (rep == 0 || ms < sample.bestMs)
            sample.bestMs = ms;
        sample.events = events;
    }
    return sample;
}

/** The sweep's invariant sets: one campaign per profiling-run count,
 *  exactly as Figures 7/8 sample them.  Later points converge to the
 *  same set, which is precisely what the memo layer exploits. */
std::vector<inv::InvariantSet>
sweepInvariants(const workloads::Workload &workload)
{
    std::vector<inv::InvariantSet> sweep;
    for (std::size_t runs : {1u, 2u, 4u, 8u}) {
        prof::ProfilingCampaign campaign(*workload.module, {});
        campaign.addRunsUntilConverged(workload.profilingSet, runs,
                                       runs + 1);
        sweep.push_back(campaign.invariants());
    }
    return sweep;
}

/** One Andersen solve (predicated CI — the detector's configuration). */
std::uint64_t
solveOnce(const workloads::Workload &workload,
          const inv::InvariantSet &invariants, bool reference)
{
    analysis::AndersenOptions options;
    options.invariants = &invariants;
    options.referenceSolver = reference;
    const analysis::AndersenResult result =
        analysis::runAndersen(*workload.module, options);
    return result.workUnits;
}

/**
 * The OptFT static phase across a calibration sweep: per sweep point,
 * sound detector, predicated detector, and the lock-elision
 * calibration's points-to solve.  @p post routes everything through
 * the static-result memo on the delta solver — the sound detector is
 * computed once for the whole sweep, converged predicated points hit
 * whole-detector entries, and the calibration solve hits the
 * predicated detector's Andersen entry.  Pre recomputes every piece
 * at every point on the reference solver.
 */
std::uint64_t
racePhaseOnce(const workloads::Workload &workload,
              const std::vector<inv::InvariantSet> &sweep, bool post)
{
    const ir::Module &module = *workload.module;
    std::uint64_t units = 0;
    if (post)
        analysis::resetAndersenCache();
    for (const inv::InvariantSet &invariants : sweep) {
        analysis::AndersenOptions aopts;
        aopts.invariants = &invariants;
        if (post) {
            const auto detectors = support::runBatch(
                2,
                [&](std::size_t i) {
                    return analysis::runStaticRaceDetectorMemo(
                        workload.module,
                        i == 0 ? nullptr : &invariants);
                },
                0);
            units += detectors[0]->workUnits + detectors[1]->workUnits;
            units += analysis::runAndersenMemo(workload.module, aopts)
                         ->workUnits;
        } else {
            units += analysis::runStaticRaceDetector(module, nullptr,
                                                     nullptr, true)
                         .workUnits;
            units += analysis::runStaticRaceDetector(module, &invariants,
                                                     nullptr, true)
                         .workUnits;
            aopts.referenceSolver = true;
            units += analysis::runAndersen(module, aopts).workUnits;
        }
    }
    return units;
}

/**
 * The OptSlice static phase across a calibration sweep: per sweep
 * point, sound CS and predicated CS points-to (CI fallback on budget
 * overflow), the CI ranking solve, and a sound + predicated slice
 * from every Output.  Pre solves and slices everything from scratch
 * at every point on the reference solver; post routes points-to AND
 * slice sets through the memo (the ranking CI is served from the
 * sound CS solve's pre-pass, converged points reuse stored slices).
 */
std::uint64_t
slicePhaseOnce(const workloads::Workload &workload,
               const std::vector<inv::InvariantSet> &sweep, bool post)
{
    const ir::Module &module = *workload.module;
    std::vector<InstrId> endpoints;
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == ir::Opcode::Output)
            endpoints.push_back(id);

    std::uint64_t units = 0;
    if (post)
        analysis::resetAndersenCache();
    for (const inv::InvariantSet &invariants : sweep) {
        auto sliceAllDirect = [&](const analysis::AndersenResult &pts,
                                  const inv::InvariantSet *inv) {
            analysis::SlicerOptions options;
            options.invariants = inv;
            const analysis::StaticSlicer slicer(module, pts, options);
            for (InstrId endpoint : endpoints)
                units += slicer.slice(endpoint).workUnits;
        };
        auto sliceAllMemo = [&](const analysis::AndersenResult &pts,
                                const inv::InvariantSet *inv,
                                bool pickedCs) {
            const auto slices = analysis::sliceSetMemo(
                workload.module, inv,
                analysis::SlicerOptions().maxWork ^
                    (pickedCs ? 1ull << 63 : 0),
                endpoints, [&]() {
                    analysis::SliceSetResult out;
                    analysis::SlicerOptions options;
                    options.invariants = inv;
                    const analysis::StaticSlicer slicer(module, pts,
                                                        options);
                    const auto results = support::runBatch(
                        endpoints.size(),
                        [&](std::size_t e) {
                            return slicer.slice(endpoints[e]);
                        },
                        0);
                    out.contextSensitive = pickedCs;
                    out.complete = true;
                    for (auto &slice : results) {
                        out.workUnits += slice.workUnits;
                        out.slices.push_back(
                            std::move(slice.instructions));
                    }
                    return out;
                });
            units += slices->workUnits;
        };

        analysis::AndersenOptions soundCs, predCs, ciOptions, predCi;
        soundCs.contextSensitive = true;
        predCs.contextSensitive = true;
        predCs.invariants = &invariants;
        predCi.invariants = &invariants;
        if (post) {
            auto sound =
                analysis::runAndersenMemo(workload.module, soundCs);
            units += sound->workUnits;
            bool soundCsPicked = sound->completed;
            if (!soundCsPicked) { // CS budget overflow: CI fallback
                sound =
                    analysis::runAndersenMemo(workload.module, ciOptions);
                units += sound->workUnits;
            }
            auto pred = analysis::runAndersenMemo(workload.module, predCs);
            units += pred->workUnits;
            bool predCsPicked = pred->completed;
            if (!predCsPicked) {
                pred = analysis::runAndersenMemo(workload.module, predCi);
                units += pred->workUnits;
            }
            units += analysis::runAndersenMemo(workload.module, ciOptions)
                         ->workUnits;
            sliceAllMemo(*sound, nullptr, soundCsPicked);
            sliceAllMemo(*pred, &invariants, predCsPicked);
        } else {
            soundCs.referenceSolver = true;
            predCs.referenceSolver = true;
            ciOptions.referenceSolver = true;
            predCi.referenceSolver = true;
            auto sound = analysis::runAndersen(module, soundCs);
            units += sound.workUnits;
            if (!sound.completed) {
                sound = analysis::runAndersen(module, ciOptions);
                units += sound.workUnits;
            }
            auto pred = analysis::runAndersen(module, predCs);
            units += pred.workUnits;
            if (!pred.completed) {
                pred = analysis::runAndersen(module, predCi);
                units += pred.workUnits;
            }
            units += analysis::runAndersen(module, ciOptions).workUnits;
            sliceAllDirect(sound, nullptr);
            sliceAllDirect(pred, &invariants);
        }
    }
    return units;
}

} // namespace

int
main()
{
    bench::banner("Microbench: predicated static-analysis throughput",
                  "optimistic hybrid analysis must keep the predicated "
                  "static phase cheap enough to amortize (Section 5, "
                  "Table 2)");

    bench::JsonReport json("microbench_static");
    TextTable table(
        {"workload", "variant", "wall ms", "work units", "units/sec"});

    auto row = [&](const std::string &name, const char *variant,
                   const Sample &sample) {
        const double perSec =
            sample.bestMs > 0
                ? double(sample.events) / (sample.bestMs / 1000.0)
                : 0;
        table.addRow({name, variant, fmtDouble(sample.bestMs, 2),
                      std::to_string(sample.events),
                      fmtDouble(perSec / 1e6, 2) + "M"});
        json.add(name, variant, sample.bestMs, sample.events);
    };

    double preMs = 0, postMs = 0;

    for (const std::string &name : workloads::raceWorkloadNames()) {
        const auto workload = workloads::makeRaceWorkload(name, 8, 1);
        const std::vector<inv::InvariantSet> sweep =
            sweepInvariants(workload);
        const inv::InvariantSet &invariants = sweep.back();
        row(name, "solver-reference",
            measure([&] { return solveOnce(workload, invariants, true); }));
        row(name, "solver-delta",
            measure(
                [&] { return solveOnce(workload, invariants, false); }));
        const Sample pre = measure(
            [&] { return racePhaseOnce(workload, sweep, false); });
        const Sample post = measure(
            [&] { return racePhaseOnce(workload, sweep, true); });
        row(name, "static-phase-pre", pre);
        row(name, "static-phase-post", post);
        preMs += pre.bestMs;
        postMs += post.bestMs;
    }

    for (const std::string &name : workloads::sliceWorkloadNames()) {
        const auto workload = workloads::makeSliceWorkload(name, 8, 1);
        const std::vector<inv::InvariantSet> sweep =
            sweepInvariants(workload);
        const inv::InvariantSet &invariants = sweep.back();
        row(name, "solver-reference",
            measure([&] { return solveOnce(workload, invariants, true); }));
        row(name, "solver-delta",
            measure(
                [&] { return solveOnce(workload, invariants, false); }));
        const Sample pre = measure(
            [&] { return slicePhaseOnce(workload, sweep, false); });
        const Sample post = measure(
            [&] { return slicePhaseOnce(workload, sweep, true); });
        row(name, "static-phase-pre", pre);
        row(name, "static-phase-post", post);
        preMs += pre.bestMs;
        postMs += post.bestMs;
    }

    // Wavefront thread scaling on the propagation-dominated module.
    // Solves run from scratch (no memo) so every sample pays the full
    // propagation; work units must not move with the thread count.
    const std::shared_ptr<const ir::Module> dispatch =
        workloads::makeDispatchSurfaceModule(smokeMode() ? 120 : 300, 32,
                                             64);
    double threadMs[3] = {0, 0, 0};
    std::uint64_t threadUnits[3] = {0, 0, 0};
    const std::uint32_t threadCounts[3] = {1, 2, 4};
    for (int t = 0; t < 3; ++t) {
        const Sample sample = measure([&] {
            analysis::AndersenOptions options;
            options.solverThreads = threadCounts[t];
            return analysis::runAndersen(*dispatch, options).workUnits;
        });
        char variant[32];
        std::snprintf(variant, sizeof variant, "solver-threads-%u",
                      threadCounts[t]);
        row("dispatch-surface", variant, sample);
        threadMs[t] = sample.bestMs;
        threadUnits[t] = sample.events;
    }
    if (threadUnits[1] != threadUnits[0] ||
        threadUnits[2] != threadUnits[0]) {
        std::printf("FAIL: solver work units vary with thread count "
                    "(%llu / %llu / %llu)\n",
                    static_cast<unsigned long long>(threadUnits[0]),
                    static_cast<unsigned long long>(threadUnits[1]),
                    static_cast<unsigned long long>(threadUnits[2]));
        return 1;
    }
    const double scaling4 =
        threadMs[2] > 0 ? threadMs[0] / threadMs[2] : 0;

    const double speedup = postMs > 0 ? preMs / postMs : 0;
    std::printf("%s\n", table.str().c_str());
    std::printf("end-to-end static phase: pre %.1f ms, post %.1f ms, "
                "speedup %.2fx\n",
                preMs, postMs, speedup);
    std::printf("wavefront scaling (dispatch-surface): 1t %.1f ms, "
                "2t %.1f ms, 4t %.1f ms, 4-thread speedup %.2fx\n",
                threadMs[0], threadMs[1], threadMs[2], scaling4);
    json.metric("aggregate", "static-phase", "pre_ms", preMs);
    json.metric("aggregate", "static-phase", "post_ms", postMs);
    json.metric("aggregate", "static-phase", "speedup", speedup);
    json.metric("aggregate", "solver-threads", "speedup_4t", scaling4);

    json.write();

    if (scaling4 < 2.0) {
        const unsigned hw = std::thread::hardware_concurrency();
        if (smokeMode()) {
            std::printf("WARNING: 4-thread solver speedup %.2fx below "
                        "the 2x bar (ignored in smoke mode)\n",
                        scaling4);
        } else if (hw < 4) {
            // 4 workers timesliced on < 4 cores cannot beat 1 worker;
            // the determinism asserts above still ran at full value.
            std::printf("WARNING: 4-thread solver speedup %.2fx below "
                        "the 2x bar (host has only %u hardware "
                        "threads; bar needs >= 4)\n",
                        scaling4, hw);
        } else {
            std::printf("FAIL: 4-thread solver speedup %.2fx below the "
                        "2x bar\n",
                        scaling4);
            return 1;
        }
    }
    return 0;
}
