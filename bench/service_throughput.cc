/**
 * @file
 * Analysis-daemon throughput benchmark: the service's steady-state
 * win over batch mode is the shared cross-request cache.
 *
 * Protocol:
 *
 *  1. Parity: one race and one slice workload run once in batch mode
 *     (direct runOptFt/runOptSlice calls on a cold cache) and then
 *     through the service at 1 and 4 shards.  The field comparison
 *     must match exactly — the determinism contract says the service
 *     is just a scheduler around pure pipeline functions.
 *
 *  2. Cold pass: reset the shared cache, submit a mixed corpus of
 *     race + slice requests to a 4-shard daemon, collect per-request
 *     latency (queue + run wall time) and requests/sec.  Every static
 *     solve and trace capture misses.
 *
 *  3. Warm pass: rebuild every workload from scratch (NEW module
 *     objects — the cache is value-keyed, not pointer-keyed) and
 *     submit the same corpus again.  The static phase and the trace
 *     captures all hit; the acceptance bar is a >= 90% cache hit rate
 *     and a warm p50 latency below 50% of cold p50.
 *
 *  4. Restart-warm pass: a daemon with a state directory snapshots
 *     the warm cache on graceful shutdown (service/snapshot.h); after
 *     a full cache reset a fresh daemon reloads it.  Andersen results
 *     are recomputed (never persisted), so the bars relax to >= 80%
 *     hit rate and p50 < 70% of cold.
 *
 * OHA_BENCH_SMOKE=1 shrinks the corpus for CI.  JSON output:
 * BENCH_service_throughput.json.
 */

#include "bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <future>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "analysis/andersen_cache.h"
#include "service/analysis_service.h"
#include "service/snapshot.h"
#include "workloads/workloads.h"

using namespace oha;

namespace {

bool
smokeMode()
{
    const char *env = std::getenv("OHA_BENCH_SMOKE");
    return env && *env && *env != '0';
}

/** Percentile over a copy of @p values (nearest-rank). */
double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    const std::size_t rank = std::min(
        values.size() - 1,
        static_cast<std::size_t>(p / 100.0 * double(values.size())));
    return values[rank];
}

struct Corpus
{
    std::vector<std::string> race;
    std::vector<std::string> slice;
    std::size_t profileRuns;
    std::size_t raceTestRuns;
    std::size_t sliceTestRuns;

    std::size_t size() const { return race.size() + slice.size(); }

    /** Build request @p i from scratch — fresh module objects every
     *  call, so warm-pass hits prove the cache is value-keyed. */
    service::AnalysisRequest
    request(std::size_t i) const
    {
        service::AnalysisRequest request;
        request.workload =
            i < race.size()
                ? workloads::makeRaceWorkload(race[i], profileRuns,
                                              raceTestRuns)
                : workloads::makeSliceWorkload(slice[i - race.size()],
                                               profileRuns, sliceTestRuns);
        return request;
    }
};

struct PassStats
{
    double wallMs = 0;
    double p50 = 0;
    double p95 = 0;
    double requestsPerSec = 0;
    double hitRate = 0;
};

/** Submit the whole corpus to a fresh @p shards-shard daemon and
 *  measure latency distribution plus the shared-cache hit rate.  A
 *  non-empty @p stateDir makes the daemon warm-start from (and, on
 *  shutdown, persist to) <stateDir>/oha-cache.snapshot. */
PassStats
runPass(const Corpus &corpus, std::size_t shards,
        const std::string &stateDir = std::string())
{
    const auto before = analysis::andersenCacheStats();

    service::ServiceConfig config;
    config.shards = shards;
    config.maxQueueDepth = corpus.size() + 1;
    config.stateDir = stateDir;
    service::AnalysisService daemon(config);

    const double t0 = bench::nowMs();
    std::vector<std::future<service::ServiceRunResult>> futures;
    futures.reserve(corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i)
        futures.push_back(daemon.submit(corpus.request(i)));

    std::vector<double> latencies;
    latencies.reserve(futures.size());
    for (auto &future : futures) {
        const auto result = future.get();
        if (result.outcome != service::RequestOutcome::Done) {
            std::fprintf(stderr, "request failed: %s\n",
                         result.error.c_str());
            std::abort();
        }
        latencies.push_back(result.queueMs + result.runMs);
    }
    daemon.drain();

    PassStats stats;
    stats.wallMs = bench::nowMs() - t0;
    stats.p50 = percentile(latencies, 50);
    stats.p95 = percentile(latencies, 95);
    stats.requestsPerSec =
        stats.wallMs > 0 ? double(corpus.size()) / (stats.wallMs / 1000.0)
                         : 0;

    const auto after = analysis::andersenCacheStats();
    const std::uint64_t hits = after.hits - before.hits;
    const std::uint64_t misses = (after.misses - before.misses) +
                                 (after.verifiedMisses -
                                  before.verifiedMisses);
    stats.hitRate =
        hits + misses > 0 ? double(hits) / double(hits + misses) : 0;
    return stats;
}

bool
sameFtResult(const core::OptFtResult &a, const core::OptFtResult &b)
{
    return a.name == b.name && a.testRuns == b.testRuns &&
           a.soundStaticSeconds == b.soundStaticSeconds &&
           a.predStaticSeconds == b.predStaticSeconds &&
           a.misSpeculations == b.misSpeculations &&
           a.racesObserved == b.racesObserved &&
           a.raceReportsMatch == b.raceReportsMatch &&
           a.speedupVsFastTrack == b.speedupVsFastTrack &&
           a.speedupVsHybrid == b.speedupVsHybrid &&
           a.interpretedSteps == b.interpretedSteps &&
           a.optFt.total() == b.optFt.total() &&
           a.hybridFt.total() == b.hybridFt.total();
}

bool
sameSliceResult(const core::OptSliceResult &a, const core::OptSliceResult &b)
{
    return a.name == b.name && a.testRuns == b.testRuns &&
           a.endpoints == b.endpoints &&
           a.misSpeculations == b.misSpeculations &&
           a.sliceResultsMatch == b.sliceResultsMatch &&
           a.soundSliceSize == b.soundSliceSize &&
           a.optSliceSize == b.optSliceSize &&
           a.dynSpeedup == b.dynSpeedup &&
           a.interpretedSteps == b.interpretedSteps &&
           a.optimistic.total() == b.optimistic.total() &&
           a.hybrid.total() == b.hybrid.total();
}

} // namespace

int
main()
{
    bench::banner(
        "Service throughput: persistent daemon + shared cross-request cache",
        "amortize predicated static analysis and trace capture across "
        "requests instead of paying them per invocation");

    const bool smoke = smokeMode();
    Corpus corpus;
    {
        const auto &race = workloads::raceWorkloadNames();
        const auto &slice = workloads::sliceWorkloadNames();
        const std::size_t raceCount = smoke ? 3 : 8;
        const std::size_t sliceCount = smoke ? 1 : 4;
        corpus.race.assign(race.begin(),
                           race.begin() +
                               std::min(raceCount, race.size()));
        corpus.slice.assign(slice.begin(),
                            slice.begin() +
                                std::min(sliceCount, slice.size()));
        // Small corpora on purpose: the shared cache carries the
        // static phase, the trace captures and the profiling
        // observations, but the per-configuration dynamic tools
        // (FastTrack/Giri over the testing inputs) run live in every
        // pass — the smaller the testing corpus, the closer the
        // measurement is to the cacheable share of a steady-state
        // daemon request.
        corpus.profileRuns = smoke ? 2 : 4;
        corpus.raceTestRuns = 2;
        corpus.sliceTestRuns = 2;
    }

    bench::JsonReport json("service_throughput");

    // ---- 1. Service-vs-batch parity at 1 and 4 shards ---------------
    analysis::resetAndersenCache();
    const auto batchFt =
        core::runOptFt(workloads::makeRaceWorkload(
                           corpus.race.front(), corpus.profileRuns,
                           corpus.raceTestRuns),
                       {});
    const auto batchSlice =
        core::runOptSlice(workloads::makeSliceWorkload(
                              corpus.slice.front(), corpus.profileRuns,
                              corpus.sliceTestRuns),
                          {});
    bool parityOk = true;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        service::ServiceConfig config;
        config.shards = shards;
        service::AnalysisService daemon(config);
        auto ftFuture = daemon.submit(corpus.request(0));
        auto sliceFuture = daemon.submit(corpus.request(corpus.race.size()));
        const auto ft = ftFuture.get();
        const auto slice = sliceFuture.get();
        const bool ok =
            ft.outcome == service::RequestOutcome::Done &&
            slice.outcome == service::RequestOutcome::Done &&
            ft.ft.has_value() && slice.slice.has_value() &&
            sameFtResult(batchFt, *ft.ft) &&
            sameSliceResult(batchSlice, *slice.slice);
        parityOk = parityOk && ok;
        json.metric("parity", "shards_" + std::to_string(shards),
                    "matches_batch", ok ? 1 : 0);
        std::printf("parity @ %zu shards: %s\n", shards,
                    ok ? "MATCH" : "MISMATCH");
    }

    // ---- 2+3. Cold pass vs warm pass --------------------------------
    analysis::resetAndersenCache();
    const PassStats cold = runPass(corpus, 4);
    const PassStats warm = runPass(corpus, 4);

    // ---- 4. Restart-warm: a daemon with a state directory persists
    // the warm cache on graceful shutdown; after a full cache reset
    // (simulated process restart) a fresh daemon reloads it and the
    // corpus runs against the restored entries.  Andersen results are
    // never persisted (recomputed), so the bar is lower than warm.
    const std::string stateDir = "oha-bench-state";
    ::mkdir(stateDir.c_str(), 0755);
    ::unlink(service::defaultSnapshotPath(stateDir).c_str());
    runPass(corpus, 4, stateDir); // warm daemon; snapshot on shutdown
    analysis::resetAndersenCache();
    const PassStats restart = runPass(corpus, 4, stateDir);

    TextTable table({"pass", "wall ms", "req/s", "p50 ms", "p95 ms",
                     "cache hit rate"});
    auto row = [&](const char *pass, const PassStats &s) {
        table.addRow({pass, fmtDouble(s.wallMs, 1),
                      fmtDouble(s.requestsPerSec, 1), fmtDouble(s.p50, 2),
                      fmtDouble(s.p95, 2), fmtDouble(s.hitRate * 100, 1) +
                                               "%"});
        const std::string variant = pass;
        json.metric("corpus", variant, "wall_ms", s.wallMs);
        json.metric("corpus", variant, "requests_per_sec",
                    s.requestsPerSec);
        json.metric("corpus", variant, "p50_ms", s.p50);
        json.metric("corpus", variant, "p95_ms", s.p95);
        json.metric("corpus", variant, "cache_hit_rate", s.hitRate);
    };
    row("cold", cold);
    row("warm", warm);
    row("restart-warm", restart);
    std::printf("%s\n", table.str().c_str());

    const double p50Ratio = cold.p50 > 0 ? warm.p50 / cold.p50 : 0;
    const double restartRatio = cold.p50 > 0 ? restart.p50 / cold.p50 : 0;
    json.metric("corpus", "warm", "p50_vs_cold", p50Ratio);
    json.metric("corpus", "restart-warm", "p50_vs_cold", restartRatio);
    std::printf("requests: %zu (%zu race + %zu slice)\n", corpus.size(),
                corpus.race.size(), corpus.slice.size());
    std::printf("warm hit rate: %.1f%% (bar: >= 90%%)\n",
                warm.hitRate * 100);
    std::printf("warm p50 / cold p50: %.2f (bar: < 0.50)\n", p50Ratio);
    std::printf("restart-warm hit rate: %.1f%% (bar: >= 80%%)\n",
                restart.hitRate * 100);
    std::printf("restart-warm p50 / cold p50: %.2f (bar: < 0.70)\n",
                restartRatio);

    bool ok = parityOk;
    if (warm.hitRate < 0.9) {
        std::printf("WARNING: warm hit rate below the 90%% bar\n");
        ok = false;
    }
    if (p50Ratio >= 0.5) {
        std::printf("WARNING: warm p50 not under half of cold p50\n");
        ok = false;
    }
    // The restart bars are timing-sensitive on tiny smoke corpora;
    // under OHA_BENCH_SMOKE a miss warns without failing the run.
    if (restart.hitRate < 0.8) {
        std::printf("WARNING: restart-warm hit rate below the 80%% "
                    "bar\n");
        ok = ok && smoke;
    }
    if (restartRatio >= 0.7) {
        std::printf("WARNING: restart-warm p50 not under 0.70 of cold "
                    "p50\n");
        ok = ok && smoke;
    }
    if (!parityOk)
        std::printf("WARNING: service/batch parity mismatch\n");

    json.write();
    return ok ? 0 : 1;
}
