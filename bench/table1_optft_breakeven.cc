/**
 * @file
 * Table 1 reproduction: end-to-end OptFT analysis costs for the nine
 * benchmarks not statically proven race-free — offline static and
 * profiling times, break-even execution time versus hybrid and
 * traditional FastTrack, and the optimistic speedups.
 *
 * Paper reference: OptFT breaks even within minutes of analyzed test
 * time for most benchmarks; montecarlo never beats hybrid FT; xalan's
 * break-even is hours.
 */

#include "bench_common.h"

using namespace oha;

int
main()
{
    bench::banner(
        "Table 1: OptFT end-to-end analysis times and break-even",
        "break-even within minutes for most; montecarlo never; "
        "speedups up to 3.6x/9.8x");

    TextTable table({"testname", "trad static", "profile", "opt static",
                     "breakeven vs HybFT", "breakeven vs TradFT",
                     "speedup vs HybFT", "speedup vs TradFT"});

    bench::JsonReport json("table1_optft_breakeven");
    for (const auto &name : workloads::raceWorkloadNames()) {
        const auto workload = workloads::makeRaceWorkload(
            name, bench::kRaceProfileRuns, bench::kRaceTestRuns);
        const auto result =
            core::runOptFt(workload, bench::standardOptFtConfig());
        if (result.staticallyRaceFree)
            continue; // Table 1 covers the non-race-free nine

        json.metric(name, "optft", "trad_static_s",
                    result.soundStaticSeconds);
        json.metric(name, "optft", "profile_s", result.profileSeconds);
        json.metric(name, "optft", "opt_static_s",
                    result.predStaticSeconds);
        json.metric(name, "optft", "breakeven_vs_hybrid_s",
                    result.breakEvenVsHybrid);
        json.metric(name, "optft", "breakeven_vs_fasttrack_s",
                    result.breakEvenVsFastTrack);
        json.metric(name, "optft", "speedup_vs_hybrid",
                    result.speedupVsHybrid);
        json.metric(name, "optft", "speedup_vs_fasttrack",
                    result.speedupVsFastTrack);

        auto breakeven = [](double t) {
            return t < 0 ? std::string("-") : fmtTime(t);
        };
        table.addRow({result.name,
                      fmtTime(result.soundStaticSeconds),
                      fmtTime(result.profileSeconds),
                      fmtTime(result.predStaticSeconds),
                      breakeven(result.breakEvenVsHybrid),
                      breakeven(result.breakEvenVsFastTrack),
                      fmtSpeedup(result.speedupVsHybrid),
                      fmtSpeedup(result.speedupVsFastTrack)});
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("(times are modeled seconds from the deterministic "
                "cost model; '-' = never breaks even)\n");
    std::printf("(Break-even: baseline execution time T at which "
                "profiling + predicated static + optimistic dynamic "
                "costs drop below the competitor's total)\n");
    json.write();
    return 0;
}
