/**
 * @file
 * Ablation for the strength/stability trade-off of Section 2.1:
 * "we could aggressively assume a property that is infrequently
 * violated during profiling as a likely invariant.  This stronger,
 * but less stable invariant may result in significant reduction in
 * dynamic checks, but increase the chance of invariant violations."
 *
 * We sweep the aggressive-LUC threshold (blocks executed fewer than N
 * times across the profiling campaign are assumed unreachable) and
 * report, per slicing benchmark: the predicated static slice size,
 * the mis-speculation rate, and the net normalized OptSlice runtime
 * (which prices the extra rollbacks).  The sweet spot is
 * benchmark-dependent — exactly the trade-off the paper describes.
 */

#include "bench_common.h"

using namespace oha;

int
main()
{
    bench::banner("Ablation: aggressive likely-unreachable code "
                  "(Section 2.1 trade-off)",
                  "stronger invariants cut checks but raise "
                  "mis-speculation; net effect varies");

    const std::vector<std::uint64_t> thresholds = {0, 2, 4, 8};

    TextTable table({"benchmark", "threshold", "opt slice", "misspec rate",
                     "OptSlice norm", "speedup"});

    bench::JsonReport json("ablation_aggressive_luc");
    for (const auto &name : {std::string("redis"), std::string("vim"),
                             std::string("zlib")}) {
        for (std::uint64_t threshold : thresholds) {
            const auto workload = workloads::makeSliceWorkload(
                name, bench::kSliceProfileRuns, bench::kSliceTestRuns);
            core::OptSliceConfig config =
                bench::standardOptSliceConfig();
            config.aggressiveLucMinVisits = threshold;
            const auto result = core::runOptSlice(workload, config);
            const double tasks =
                double(result.testRuns) * double(result.endpoints);
            const std::string variant =
                "threshold-" + std::to_string(threshold);
            json.metric(name, variant, "opt_slice_size",
                        result.optSliceSize);
            json.metric(name, variant, "misspec_rate",
                        tasks > 0 ? double(result.misSpeculations) / tasks
                                  : 0.0);
            json.metric(name, variant, "optslice_norm",
                        result.optimistic.normalized());
            table.addRow(
                {name,
                 threshold <= 1 ? "off" : std::to_string(threshold),
                 fmtDouble(result.optSliceSize, 0),
                 fmtDouble(tasks > 0 ? double(result.misSpeculations) /
                                           tasks
                                     : 0.0,
                           3),
                 fmtDouble(result.optimistic.normalized(), 1),
                 fmtSpeedup(result.dynSpeedup)});
            if (!result.sliceResultsMatch) {
                std::printf("SOUNDNESS VIOLATION in %s @ threshold "
                            "%llu\n",
                            name.c_str(),
                            static_cast<unsigned long long>(threshold));
                return 1;
            }
        }
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("(soundness holds at every threshold — rollbacks absorb "
                "the extra violations; only the cost moves)\n");
    json.write();
    return 0;
}
