/**
 * @file
 * Incremental re-analysis microbenchmark: the edit-compile-analyze
 * loop an analysis service lives in.  For each workload and edit size
 * (1 / 5 / 20% of functions, at least one), measures on the edited
 * module
 *
 *   full     from-scratch runAndersen;
 *   patched  the whole incremental path a warm service request pays:
 *            computeModuleDiff + lowerToConstraints +
 *            runAndersenIncremental from the cached base result.
 *
 * Parity is asserted, not sampled: points-to sets, indirect-call
 * targets and every static slice must be byte-identical between the
 * two paths (any mismatch fails the run regardless of mode), and the
 * incremental race detector must report exactly the from-scratch
 * races on the race workloads.
 *
 * The headline bar: at the 1% edit size the patched path must be
 * >= 5x faster than the full re-solve on the service-scale workload
 * (workloads::makeDispatchSurfaceModule — a pointer-dense dispatch
 * surface where Andersen propagation dominates constraint
 * construction, the regime an analysis service actually serves).  The
 * sub-millisecond suite modules (vim/perl/redis) are swept and
 * reported too, but excluded from the bar: at their size the
 * O(module) per-request costs both paths share — constraint
 * generation, result assembly — dominate wall time and cap any
 * speedup near 2x regardless of how little re-solving happens (the
 * work-unit column shows the solver-effort gap directly).
 * OHA_BENCH_SMOKE=1 (CI) downgrades a missed bar to a warning —
 * shared-runner timing is too noisy to gate on — but never relaxes
 * the parity asserts.
 */

#include "bench_common.h"

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "analysis/andersen_cache.h"
#include "analysis/constraint_diff.h"
#include "analysis/race_detector.h"
#include "analysis/slicer.h"
#include "ir/module_diff.h"
#include "workloads/edits.h"
#include "workloads/workloads.h"

using namespace oha;

namespace {

bool
smokeMode()
{
    const char *env = std::getenv("OHA_BENCH_SMOKE");
    return env && *env && *env != '0';
}

struct Sample
{
    double bestMs = 0;
    std::uint64_t events = 0; ///< solver work units
};

template <typename RunOnce>
Sample
measure(RunOnce runOnce)
{
    const int reps = smokeMode() ? 2 : 7;
    Sample sample;
    for (int rep = 0; rep < reps; ++rep) {
        const double t0 = bench::nowMs();
        const std::uint64_t events = runOnce();
        const double ms = bench::nowMs() - t0;
        if (rep == 0 || ms < sample.bestMs)
            sample.bestMs = ms;
        sample.events = events;
    }
    return sample;
}

/** Observable identity of a solve over @p module: flattened
 *  points-to sets, indirect-call targets, and the static slice of
 *  every Output endpoint.  workUnits deliberately excluded. */
std::vector<std::uint64_t>
signatureOf(const ir::Module &module,
            const analysis::AndersenResult &result)
{
    std::vector<std::uint64_t> sig;
    sig.push_back(result.completed);
    const std::uint64_t sep = ~0ull;
    for (const auto &func : module.functions())
        for (ir::Reg reg = 0; reg < func->numRegs(); ++reg) {
            result.ptsAllContexts(func->id(), reg)
                .forEach([&](std::uint32_t cell) { sig.push_back(cell); });
            sig.push_back(sep);
        }
    for (InstrId id = 0; id < module.numInstrs(); ++id)
        if (module.instr(id).op == ir::Opcode::ICall) {
            for (FuncId f : result.icallTargets(id))
                sig.push_back(f);
            sig.push_back(sep);
        }
    const analysis::StaticSlicer slicer(module, result, {});
    for (InstrId id = 0; id < module.numInstrs(); ++id) {
        if (module.instr(id).op != ir::Opcode::Output)
            continue;
        const analysis::StaticSliceResult slice = slicer.slice(id);
        sig.push_back(slice.completed);
        for (InstrId instr : slice.instructions)
            sig.push_back(instr);
        sig.push_back(sep);
    }
    return sig;
}

/** The incremental path a warm service request pays, end to end. */
analysis::AndersenResult
patchedSolve(const ir::Module &base,
             const analysis::AndersenResult &baseResult,
             const ir::Module &next, bool *usedIncremental = nullptr)
{
    const ir::ModuleDiff structural = ir::computeModuleDiff(base, next);
    const analysis::ConstraintDiff diff = analysis::lowerToConstraints(
        base, next, structural, nullptr, nullptr);
    analysis::IncrementalInput input;
    input.baseModule = &base;
    input.base = &baseResult;
    input.diff = &diff;
    return analysis::runAndersenIncremental(next, {}, input, nullptr,
                                            usedIncremental);
}

int
parityFailure(const std::string &where)
{
    std::fprintf(stderr,
                 "FAIL: incremental/full parity mismatch (%s)\n",
                 where.c_str());
    return 1;
}

} // namespace

int
main()
{
    bench::banner(
        "Microbench: incremental cross-version static analysis",
        "an analysis service amortizes the predicated static phase "
        "across edits; re-analysis cost must track edit size, not "
        "module size");

    bench::JsonReport json("microbench_incremental");
    TextTable table({"workload", "edit", "variant", "wall ms",
                     "work units", "speedup"});

    const std::vector<std::pair<double, const char *>> kEdits = {
        {0.01, "1%"}, {0.05, "5%"}, {0.20, "20%"}};
    // The bar workload last, after the small suite modules.
    const std::string kBarWorkload = "dispatch-surface";
    const std::vector<std::string> kSweep = {"vim", "perl", "redis",
                                             kBarWorkload};

    double speedupAt1 = 0;

    for (const std::string &name : kSweep) {
        const std::shared_ptr<const ir::Module> modulePtr =
            name == kBarWorkload
                ? workloads::makeDispatchSurfaceModule(300)
                : workloads::makeSliceWorkload(name, 1, 1).module;
        const ir::Module &base = *modulePtr;
        const analysis::AndersenResult baseResult =
            analysis::runAndersen(base, {});

        for (const auto &[frac, label] : kEdits) {
            const std::size_t count = std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       frac * double(base.numFunctions()) + 0.5));
            const std::unique_ptr<ir::Module> next =
                workloads::editFunctions(
                    base, workloads::firstFunctionNames(base, count));

            // Parity first (unconditional, outside the timing loop).
            bool usedIncremental = false;
            const analysis::AndersenResult once =
                patchedSolve(base, baseResult, *next, &usedIncremental);
            const analysis::AndersenResult scratch =
                analysis::runAndersen(*next, {});
            if (!usedIncremental)
                return parityFailure(name + " " + label +
                                     ": incremental path not taken");
            if (signatureOf(*next, once) != signatureOf(*next, scratch))
                return parityFailure(name + " " + label);

            const Sample full = measure([&] {
                return analysis::runAndersen(*next, {}).workUnits;
            });
            const Sample patched = measure([&] {
                return patchedSolve(base, baseResult, *next).workUnits;
            });
            const double speedup = patched.bestMs > 0
                                       ? full.bestMs / patched.bestMs
                                       : 0;
            table.addRow({name, label, "full",
                          fmtDouble(full.bestMs, 3),
                          std::to_string(full.events), ""});
            table.addRow({name, label, "patched",
                          fmtDouble(patched.bestMs, 3),
                          std::to_string(patched.events),
                          fmtDouble(speedup, 2) + "x"});
            json.add(name, std::string("full-") + label, full.bestMs,
                     full.events);
            json.add(name, std::string("patched-") + label,
                     patched.bestMs, patched.events);
            json.metric(name, label, "speedup", speedup);
            if (frac == 0.01 && name == kBarWorkload)
                speedupAt1 = speedup;
        }
    }

    // Race-report parity: the incremental detector must report
    // exactly the from-scratch races on an edited race workload.
    for (const std::string &name :
         std::vector<std::string>{"sunflow", "xalan"}) {
        analysis::resetAndersenCache();
        const workloads::Workload workload =
            workloads::makeRaceWorkload(name, 1, 1);
        const std::shared_ptr<const ir::Module> base = workload.module;
        std::vector<std::string> names;
        for (const auto &func : base->functions())
            if (names.empty() && func->name() != "main")
                names.push_back(func->name());
        const std::shared_ptr<const ir::Module> next =
            workloads::editFunctions(*base, names);

        const ir::ModuleDiff structural =
            ir::computeModuleDiff(*base, *next);
        const analysis::ConstraintDiff diff =
            analysis::lowerToConstraints(*base, *next, structural,
                                         nullptr, nullptr);
        analysis::RaceIncrementalInput input;
        input.baseModule = base;
        input.baseRace = std::make_shared<analysis::StaticRaceResult>(
            analysis::runStaticRaceDetector(*base, nullptr, base));
        input.diff = &diff;
        const analysis::StaticRaceResult inc =
            analysis::runStaticRaceDetectorIncremental(next, nullptr,
                                                       input);
        const analysis::StaticRaceResult fresh =
            analysis::runStaticRaceDetector(*next, nullptr);
        if (inc.racyPairs != fresh.racyPairs ||
            inc.racyAccesses != fresh.racyAccesses)
            return parityFailure(name + " race reports");
    }
    analysis::resetAndersenCache();
    std::printf("race-report parity: ok (sunflow, xalan)\n\n");

    std::printf("%s\n", table.str().c_str());
    std::printf("1%% edit on %s: speedup %.2fx (bar: >= 5x)\n",
                kBarWorkload.c_str(), speedupAt1);
    json.metric("aggregate", "1%", "speedup", speedupAt1);
    json.write();

    if (speedupAt1 < 5.0) {
        if (smokeMode()) {
            std::printf("WARNING: 1%%-edit speedup %.2fx below the 5x "
                        "bar (ignored in smoke mode)\n",
                        speedupAt1);
        } else {
            std::fprintf(stderr,
                         "FAIL: 1%%-edit speedup %.2fx below the 5x "
                         "bar\n",
                         speedupAt1);
            return 1;
        }
    }
    return 0;
}
