/**
 * @file
 * Record-once/analyze-many microbenchmark: real wall time for the
 * trace capture/replay subsystem, per workload and per path.
 *
 * Two layers of measurement:
 *
 *  1. Event level (best-of-N): for each workload's first testing
 *     input, the cost of (a) recording the trace once, (b) running a
 *     full-plan analysis on a live interpreter, and (c) replaying the
 *     recorded trace through the same analysis.  Replay skips guest
 *     fetch/decode/eval entirely, so (c) should beat (b) on delivered
 *     events/sec; the `replay_speedup` metric is (b)/(c) wall time.
 *
 *  2. Pipeline level: end-to-end runOptFt (Figure 5 workloads) and
 *     runOptSlice (Figure 6 workloads) with useTraceReplay off vs on.
 *     Results are byte-identical by construction (pinned by
 *     trace_replay_parity_test); what changes is interpreter work.
 *     The `interp_step_ratio` metric — direct interpretedSteps over
 *     replay interpretedSteps — is the headline: the direct path
 *     interprets every testing input 3+ times (full, hybrid,
 *     optimistic, plus rollbacks), the replay path exactly once, so
 *     the ratio must be >= 2 (the PR's acceptance bar) and is
 *     architecturally >= 3 on the FastTrack side.  `e2e_speedup` is
 *     the matching wall-clock ratio.
 *
 * OHA_BENCH_SMOKE=1 shrinks corpora and repetitions for CI smoke
 * runs.  JSON: BENCH_microbench_trace.json.
 */

#include "bench_common.h"

#include <cstdlib>

#include "dyn/fasttrack.h"
#include "dyn/giri.h"
#include "dyn/plans.h"
#include "exec/trace.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

using namespace oha;

namespace {

bool
smokeMode()
{
    const char *env = std::getenv("OHA_BENCH_SMOKE");
    return env && *env && *env != '0';
}

struct Sample
{
    double bestMs = 0;
    std::uint64_t events = 0;

    double
    eventsPerSec() const
    {
        return bestMs > 0 ? double(events) / (bestMs / 1000.0) : 0;
    }
};

/** Best-of-@p reps wall time of one deterministic measurement. */
template <typename RunOnce>
Sample
measure(int reps, RunOnce runOnce)
{
    Sample sample;
    for (int rep = 0; rep < reps; ++rep) {
        const double t0 = bench::nowMs();
        const std::uint64_t events = runOnce();
        const double ms = bench::nowMs() - t0;
        if (rep == 0 || ms < sample.bestMs)
            sample.bestMs = ms;
        sample.events = events;
    }
    return sample;
}

} // namespace

int
main()
{
    bench::banner("Microbench: record-once / analyze-many trace replay",
                  "rollback is deterministic re-execution (Section 2.3); "
                  "capture the event stream once and replay it per "
                  "analysis instead");

    const bool smoke = smokeMode();
    const int kReps = smoke ? 2 : 5;
    const int kPipeReps = smoke ? 1 : 3;
    const std::size_t profileRuns = smoke ? 4 : bench::kRaceProfileRuns;
    const std::size_t testRuns = smoke ? 2 : bench::kRaceTestRuns;
    const std::size_t sliceTestRuns = smoke ? 2 : bench::kSliceTestRuns;

    bench::JsonReport json("microbench_trace");
    TextTable table({"workload", "variant", "wall ms", "events",
                     "events/sec"});
    auto row = [&](const std::string &name, const char *variant,
                   const Sample &sample) {
        table.addRow({name, variant, fmtDouble(sample.bestMs, 2),
                      std::to_string(sample.events),
                      fmtDouble(sample.eventsPerSec() / 1e6, 2) + "M"});
        json.add(name, variant, sample.bestMs, sample.events);
    };

    // ---- Event level: live FastTrack vs replayed FastTrack ----------
    std::vector<std::string> raceNames = workloads::raceWorkloadNames();
    std::vector<std::string> sliceNames = workloads::sliceWorkloadNames();
    if (smoke) {
        raceNames.resize(std::min<std::size_t>(raceNames.size(), 2));
        sliceNames.resize(std::min<std::size_t>(sliceNames.size(), 1));
    }

    std::vector<double> replaySpeedups;
    std::string largestName;
    std::uint64_t largestEvents = 0;
    for (const std::string &name : raceNames) {
        const auto workload = workloads::makeRaceWorkload(name, 1, 1);
        const ir::Module &module = *workload.module;
        const auto &input = workload.testingSet.front();
        const auto plan = dyn::fullFastTrackPlan(module);

        const Sample record = measure(kReps, [&] {
            const auto trace = exec::recordRun(module, input);
            return trace.result.totalEvents.total();
        });
        row(name, "record", record);
        if (record.events > largestEvents) {
            largestEvents = record.events;
            largestName = name;
        }

        const Sample direct = measure(kReps, [&] {
            dyn::FastTrack tool;
            exec::Interpreter interp(module, input);
            interp.attach(&tool, &plan);
            const auto result = interp.run();
            if (tool.races().size() > 1u << 20)
                std::abort();
            return result.delivered[0].total();
        });
        row(name, "fasttrack-direct", direct);

        const exec::RecordedTrace trace = exec::recordRun(module, input);
        const Sample replay = measure(kReps, [&] {
            dyn::FastTrack tool;
            exec::TraceReplayer replayer(module, trace);
            replayer.attach(&tool, &plan);
            const auto result = replayer.run();
            if (tool.races().size() > 1u << 20)
                std::abort();
            return result.delivered[0].total();
        });
        row(name, "fasttrack-replay", replay);

        const double speedup =
            replay.bestMs > 0 ? direct.bestMs / replay.bestMs : 0;
        json.metric(name, "fasttrack", "replay_speedup", speedup);
        replaySpeedups.push_back(speedup);
    }

    for (const std::string &name : sliceNames) {
        const auto workload = workloads::makeSliceWorkload(name, 1, 1);
        const ir::Module &module = *workload.module;
        const auto &input = workload.testingSet.front();
        const auto plan = dyn::fullGiriPlan(module);

        const Sample direct = measure(kReps, [&] {
            dyn::GiriSlicer tool(module);
            exec::Interpreter interp(module, input);
            interp.attach(&tool, &plan);
            const auto result = interp.run();
            if (tool.traceLength() > 1ull << 40)
                std::abort();
            return result.delivered[0].total();
        });
        row(name, "giri-direct", direct);

        const exec::RecordedTrace trace = exec::recordRun(module, input);
        const Sample replay = measure(kReps, [&] {
            dyn::GiriSlicer tool(module);
            exec::TraceReplayer replayer(module, trace);
            replayer.attach(&tool, &plan);
            const auto result = replayer.run();
            if (tool.traceLength() > 1ull << 40)
                std::abort();
            return result.delivered[0].total();
        });
        row(name, "giri-replay", replay);

        const double speedup =
            replay.bestMs > 0 ? direct.bestMs / replay.bestMs : 0;
        json.metric(name, "giri", "replay_speedup", speedup);
        replaySpeedups.push_back(speedup);
    }

    std::printf("%s\n", table.str().c_str());

    // ---- Sharded replay: one capture, N decode workers --------------
    // Each shard decodes the full stream but owns a disjoint obj-id
    // partition, so the useful throughput axis is aggregate decoded
    // events/sec across workers (shards x stream events / wall time).
    // The 4-shard series must clear 2x the 1-shard series on the
    // largest corpus (the PR acceptance bar).
    if (!largestName.empty()) {
        const auto workload = workloads::makeRaceWorkload(largestName, 1, 1);
        const ir::Module &module = *workload.module;
        const auto &input = workload.testingSet.front();
        const auto plan = dyn::fullFastTrackPlan(module);
        const exec::RecordedTrace trace = exec::recordRun(module, input);
        const std::uint64_t streamEvents = trace.result.totalEvents.total();

        TextTable shardTable({"workload", "shards", "wall ms",
                              "decoded events", "agg events/sec"});
        double baseEps = 0;
        double eps4 = 0;
        for (const std::uint32_t shards : {1u, 2u, 4u}) {
            const Sample sample = measure(kReps, [&] {
                support::runBatch(
                    shards,
                    [&](std::size_t s) {
                        dyn::FastTrack tool;
                        exec::TraceReplayer replayer(module, trace);
                        if (shards > 1) {
                            tool.setShardFilter(
                                static_cast<std::uint32_t>(s), shards);
                            replayer.setShardFilter(
                                static_cast<std::uint32_t>(s), shards);
                        }
                        replayer.attach(&tool, &plan);
                        const auto result = replayer.run();
                        if (tool.races().size() > 1u << 20)
                            std::abort();
                        return result.steps;
                    },
                    shards);
                return std::uint64_t(shards) * streamEvents;
            });
            const double eps = sample.eventsPerSec();
            if (shards == 1)
                baseEps = eps;
            if (shards == 4)
                eps4 = eps;
            shardTable.addRow({largestName, std::to_string(shards),
                               fmtDouble(sample.bestMs, 2),
                               std::to_string(sample.events),
                               fmtDouble(eps / 1e6, 2) + "M"});
            const std::string variant =
                "sharded-replay-" + std::to_string(shards);
            json.add(largestName, variant, sample.bestMs, sample.events);
            json.metric(largestName, "fasttrack",
                        "sharded_agg_events_per_sec_" +
                            std::to_string(shards),
                        eps);
            if (shards > 1)
                json.metric(largestName, "fasttrack",
                            "sharded_speedup_" + std::to_string(shards),
                            baseEps > 0 ? eps / baseEps : 0);
        }
        std::printf("%s\n", shardTable.str().c_str());
        const double shardSpeedup = baseEps > 0 ? eps4 / baseEps : 0;
        std::printf("4-shard aggregate decode throughput: %.2fx of "
                    "serial\n\n",
                    shardSpeedup);
        if (shardSpeedup < 2.0) {
            std::printf("WARNING: 4-shard aggregate events/sec below the "
                        "2x acceptance bar\n");
        }

        // ---- Segmented spill capture + mmap-backed replay -----------
        // Force the largest capture through the spill path (~8
        // segments) and price both sides: capture with pwrite spill,
        // replay with per-segment mmap windows.  The resident fraction
        // is what record-once/analyze-many actually holds in RAM.
        exec::TraceStoreOptions spillOptions;
        spillOptions.segmentBytes = std::max<std::size_t>(
            4096, static_cast<std::size_t>(trace.events.sizeBytes() / 8));
        const Sample spillRecord = measure(kReps, [&] {
            const auto spilled =
                exec::recordRun(module, input, spillOptions);
            if (!spilled.events.spilled())
                std::abort(); // the spill path must actually engage
            return spilled.result.totalEvents.total();
        });
        row(largestName, "record-spilled", spillRecord);

        const exec::RecordedTrace spilled =
            exec::recordRun(module, input, spillOptions);
        const Sample spillReplay = measure(kReps, [&] {
            dyn::FastTrack tool;
            exec::TraceReplayer replayer(module, spilled);
            replayer.attach(&tool, &plan);
            const auto result = replayer.run();
            if (tool.races().size() > 1u << 20)
                std::abort();
            return result.delivered[0].total();
        });
        row(largestName, "fasttrack-replay-spilled", spillReplay);

        const double residentFrac =
            spilled.events.sizeBytes() > 0
                ? double(spilled.events.residentBytes()) /
                      double(spilled.events.sizeBytes())
                : 0;
        json.metric(largestName, "trace", "spill_segments",
                    double(spilled.events.numSegments()));
        json.metric(largestName, "trace", "spill_resident_fraction",
                    residentFrac);
        std::printf("spill: %zu segments, %.1f%% of %llu trace bytes "
                    "resident after capture\n\n",
                    spilled.events.numSegments(), 100.0 * residentFrac,
                    static_cast<unsigned long long>(
                        spilled.events.sizeBytes()));
    }

    // ---- Pipeline level: execute-once vs execute-per-configuration --
    TextTable pipeTable({"workload", "pipeline", "direct ms", "replay ms",
                         "interp-step ratio", "e2e speedup"});
    std::vector<double> stepRatios;

    for (const std::string &name : raceNames) {
        const auto workload =
            workloads::makeRaceWorkload(name, profileRuns, testRuns);
        core::OptFtConfig direct = bench::standardOptFtConfig();
        direct.useTraceReplay = false;
        core::OptFtConfig replay = bench::standardOptFtConfig();
        replay.useTraceReplay = true;

        core::OptFtResult directResult, replayResult;
        const Sample directMs = measure(kPipeReps, [&] {
            directResult = core::runOptFt(workload, direct);
            return directResult.interpretedSteps;
        });
        const Sample replayMs = measure(kPipeReps, [&] {
            replayResult = core::runOptFt(workload, replay);
            return replayResult.interpretedSteps;
        });

        const double ratio =
            replayResult.interpretedSteps > 0
                ? double(directResult.interpretedSteps) /
                      double(replayResult.interpretedSteps)
                : 0;
        const double e2e = replayMs.bestMs > 0
                               ? directMs.bestMs / replayMs.bestMs
                               : 0;
        stepRatios.push_back(ratio);
        pipeTable.addRow({name, "optft", fmtDouble(directMs.bestMs, 1),
                          fmtDouble(replayMs.bestMs, 1),
                          fmtDouble(ratio, 2), fmtDouble(e2e, 2)});
        json.add(name, "optft-direct", directMs.bestMs,
                 directResult.interpretedSteps);
        json.add(name, "optft-replay", replayMs.bestMs,
                 replayResult.interpretedSteps);
        json.metric(name, "optft", "interp_step_ratio", ratio);
        json.metric(name, "optft", "e2e_speedup", e2e);
    }

    for (const std::string &name : sliceNames) {
        const auto workload =
            workloads::makeSliceWorkload(name, profileRuns, sliceTestRuns);
        core::OptSliceConfig direct = bench::standardOptSliceConfig();
        direct.useTraceReplay = false;
        core::OptSliceConfig replay = bench::standardOptSliceConfig();
        replay.useTraceReplay = true;

        core::OptSliceResult directResult, replayResult;
        const Sample directMs = measure(kPipeReps, [&] {
            directResult = core::runOptSlice(workload, direct);
            return directResult.interpretedSteps;
        });
        const Sample replayMs = measure(kPipeReps, [&] {
            replayResult = core::runOptSlice(workload, replay);
            return replayResult.interpretedSteps;
        });

        const double ratio =
            replayResult.interpretedSteps > 0
                ? double(directResult.interpretedSteps) /
                      double(replayResult.interpretedSteps)
                : 0;
        const double e2e = replayMs.bestMs > 0
                               ? directMs.bestMs / replayMs.bestMs
                               : 0;
        stepRatios.push_back(ratio);
        pipeTable.addRow({name, "optslice", fmtDouble(directMs.bestMs, 1),
                          fmtDouble(replayMs.bestMs, 1),
                          fmtDouble(ratio, 2), fmtDouble(e2e, 2)});
        json.add(name, "optslice-direct", directMs.bestMs,
                 directResult.interpretedSteps);
        json.add(name, "optslice-replay", replayMs.bestMs,
                 replayResult.interpretedSteps);
        json.metric(name, "optslice", "interp_step_ratio", ratio);
        json.metric(name, "optslice", "e2e_speedup", e2e);
    }

    std::printf("%s\n", pipeTable.str().c_str());

    const double meanRatio = bench::mean(stepRatios);
    std::printf("mean replay speedup (single analysis): %.2fx\n",
                bench::mean(replaySpeedups));
    std::printf("mean interpreter-work reduction (pipeline): %.2fx\n",
                meanRatio);
    json.metric("aggregate", "all", "mean_interp_step_ratio", meanRatio);
    if (meanRatio < 2.0) {
        std::printf("WARNING: interpreter-work reduction below the 2x "
                    "acceptance bar\n");
    }

    json.write();
    return 0;
}
