/**
 * @file
 * Figure 9 reproduction: load/store may-alias rates for the sound
 * ("Base Static") and predicated ("Optimistic Static") points-to
 * analyses.  As in the paper, both analyses are evaluated over the
 * access set of the optimistic analysis (accesses in likely-visited
 * blocks), so the comparison is apples-to-apples.
 *
 * Paper reference: predicated analysis cuts alias rates sharply on
 * several benchmarks (vim 0.12 -> 0.002, zlib 0.11 -> 0.03), and
 * never increases them.
 */

#include "bench_common.h"

#include "analysis/andersen.h"
#include "analysis/andersen_cache.h"
#include "profile/profiler.h"

using namespace oha;

int
main()
{
    bench::banner("Figure 9: points-to alias rates, base vs optimistic",
                  "optimistic alias rates drop, never rise");

    TextTable table({"benchmark", "base static", "optimistic static",
                     "reduction"});

    analysis::resetAndersenCache();
    bench::JsonReport json("fig9_alias_rates");
    for (const auto &name : workloads::sliceWorkloadNames()) {
        const auto workload = workloads::makeSliceWorkload(
            name, bench::kSliceProfileRuns, bench::kSliceTestRuns);
        const auto result =
            core::runOptSlice(workload, bench::standardOptSliceConfig());

        const double reduction =
            result.soundAliasRate > 0
                ? result.soundAliasRate / std::max(result.optAliasRate,
                                                   1e-9)
                : 1.0;
        table.addRow({result.name, fmtDouble(result.soundAliasRate, 4),
                      fmtDouble(result.optAliasRate, 4),
                      fmtSpeedup(reduction)});
        json.metric(name, "base", "alias_rate", result.soundAliasRate);
        json.metric(name, "optimistic", "alias_rate",
                    result.optAliasRate);
        if (result.optAliasRate > result.soundAliasRate + 1e-12) {
            std::printf("REGRESSION: %s optimistic alias rate above "
                        "base\n",
                        name.c_str());
            return 1;
        }
    }

    const analysis::AndersenCacheStats stats =
        analysis::andersenCacheStats();
    json.metric("aggregate", "static-memo", "cache_hits",
                double(stats.hits));
    json.metric("aggregate", "static-memo", "cache_misses",
                double(stats.misses));
    // Wavefront-solver shape over the whole figure (misses only —
    // cache hits run no solver).
    json.metric("aggregate", "solver", "solver_solves",
                double(stats.solverSolves));
    json.metric("aggregate", "solver", "solver_waves",
                double(stats.solverWaves));
    json.metric("aggregate", "solver", "solver_cycle_merges",
                double(stats.solverCycleMerges));
    json.metric("aggregate", "solver", "solver_wave_imbalance",
                stats.solverMaxWaveImbalance);

    std::printf("%s\n", table.str().c_str());
    std::printf("(alias rate = probability a random load/store pair "
                "may alias, over the optimistic access set)\n");
    std::printf("static-memo cache: %llu hits, %llu misses\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));
    std::printf("wavefront solver: %llu solves, %llu waves, "
                "%llu cycle merges, max wave imbalance %.3f\n",
                static_cast<unsigned long long>(stats.solverSolves),
                static_cast<unsigned long long>(stats.solverWaves),
                static_cast<unsigned long long>(stats.solverCycleMerges),
                stats.solverMaxWaveImbalance);
    json.write();
    return 0;
}
