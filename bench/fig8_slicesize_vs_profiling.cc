/**
 * @file
 * Figure 8 reproduction: the effect of profiling effort on predicated
 * static slice sizes.  For each benchmark we sweep the number of
 * profiled executions and report the mean optimistic static slice
 * size over the selected endpoints.
 *
 * Paper reference: slice sizes stay consistent as profiling grows for
 * most applications; go's large input-dependent state space keeps its
 * slice size moving (and growth need not be monotonic).
 */

#include "bench_common.h"

using namespace oha;

int
main()
{
    bench::banner("Figure 8: predicated static slice size vs profiling",
                  "stable for most benchmarks; go keeps moving");

    const std::vector<std::size_t> sweep = {1, 2, 4, 8, 16, 32, 48};

    std::vector<std::string> headers = {"benchmark"};
    for (std::size_t runs : sweep)
        headers.push_back(std::to_string(runs) + " runs");
    TextTable table(headers);

    // Batch the whole (benchmark, profiling-effort) grid over
    // OHA_THREADS workers; cells come back in grid order.
    const auto &names = workloads::sliceWorkloadNames();
    const auto cells = support::runBatch(
        names.size() * sweep.size(), [&](std::size_t cell) {
            const std::string &name = names[cell / sweep.size()];
            const std::size_t runs = sweep[cell % sweep.size()];
            const auto workload =
                workloads::makeSliceWorkload(name, runs, 2);
            core::OptSliceConfig config = bench::standardOptSliceConfig();
            config.maxProfileRuns = runs;
            config.convergenceWindow = runs;
            return core::runOptSlice(workload, config).optSliceSize;
        });

    bench::JsonReport json("fig8_slicesize_vs_profiling");
    for (std::size_t n = 0; n < names.size(); ++n) {
        std::vector<std::string> row = {names[n]};
        for (std::size_t s = 0; s < sweep.size(); ++s) {
            row.push_back(fmtDouble(cells[n * sweep.size() + s], 0));
            json.metric(names[n],
                        "profile-" + std::to_string(sweep[s]),
                        "opt_slice_size", cells[n * sweep.size() + s]);
        }
        table.addRow(row);
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("(cells are mean predicated static slice sizes, in "
                "instructions, over the chosen endpoints)\n");
    json.write();
    return 0;
}
