/**
 * @file
 * Figure 8 reproduction: the effect of profiling effort on predicated
 * static slice sizes.  For each benchmark we sweep the number of
 * profiled executions and report the mean optimistic static slice
 * size over the selected endpoints.
 *
 * Paper reference: slice sizes stay consistent as profiling grows for
 * most applications; go's large input-dependent state space keeps its
 * slice size moving (and growth need not be monotonic).
 */

#include "bench_common.h"

using namespace oha;

int
main()
{
    bench::banner("Figure 8: predicated static slice size vs profiling",
                  "stable for most benchmarks; go keeps moving");

    const std::vector<std::size_t> sweep = {1, 2, 4, 8, 16, 32, 48};

    std::vector<std::string> headers = {"benchmark"};
    for (std::size_t runs : sweep)
        headers.push_back(std::to_string(runs) + " runs");
    TextTable table(headers);

    for (const auto &name : workloads::sliceWorkloadNames()) {
        std::vector<std::string> row = {name};
        for (std::size_t runs : sweep) {
            const auto workload =
                workloads::makeSliceWorkload(name, runs, 2);
            core::OptSliceConfig config = bench::standardOptSliceConfig();
            config.maxProfileRuns = runs;
            config.convergenceWindow = runs;
            const auto result = core::runOptSlice(workload, config);
            row.push_back(fmtDouble(result.optSliceSize, 0));
        }
        table.addRow(row);
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("(cells are mean predicated static slice sizes, in "
                "instructions, over the chosen endpoints)\n");
    return 0;
}
