/**
 * @file
 * Shadow-memory / trace-arena microbenchmark: delivered events per
 * second for the dynamic-analysis data plane, per workload and per
 * tool configuration.
 *
 * Unlike the figure/table harnesses (which report modeled costs), this
 * one measures real wall time of THIS implementation, so it is the
 * regression observable for the per-event hot path: FastTrack shadow
 * lookups, Giri trace appends, and the interpreter's event dispatch.
 * Three variants per workload:
 *
 *   interp-plain    uninstrumented interpreter floor (events = all
 *                   events that occurred, none delivered);
 *   fasttrack-full  full-plan FastTrack attached (race workloads);
 *   giri-full       full-plan GiriSlicer attached (slice workloads).
 *
 * Each measurement is best-of-N wall time over an identical
 * deterministic run; the JSON (BENCH_microbench_shadow.json) carries
 * (workload, variant, wall-ms, delivered events) so the perf
 * trajectory is tracked across PRs.
 */

#include "bench_common.h"

#include "dyn/fasttrack.h"
#include "dyn/giri.h"
#include "dyn/plans.h"
#include "workloads/workloads.h"

using namespace oha;

namespace {

constexpr int kReps = 5;

struct Sample
{
    double bestMs = 0;
    std::uint64_t events = 0; ///< delivered (or total for plain)

    double
    eventsPerSec() const
    {
        return bestMs > 0 ? double(events) / (bestMs / 1000.0) : 0;
    }
};

/** Best-of-kReps wall time of one deterministic run under @p attach.
 *  @p attach receives the interpreter and returns the tool to keep
 *  alive for the run (may attach nothing for the plain variant). */
template <typename RunOnce>
Sample
measure(RunOnce runOnce)
{
    Sample sample;
    for (int rep = 0; rep < kReps; ++rep) {
        const double t0 = bench::nowMs();
        const std::uint64_t events = runOnce();
        const double ms = bench::nowMs() - t0;
        if (rep == 0 || ms < sample.bestMs)
            sample.bestMs = ms;
        sample.events = events;
    }
    return sample;
}

Sample
measurePlain(const workloads::Workload &workload)
{
    return measure([&] {
        exec::Interpreter interp(*workload.module,
                                 workload.testingSet.front());
        const auto result = interp.run();
        return result.totalEvents.total();
    });
}

Sample
measureFastTrack(const workloads::Workload &workload,
                 const exec::InstrumentationPlan &plan)
{
    return measure([&] {
        dyn::FastTrack tool;
        exec::Interpreter interp(*workload.module,
                                 workload.testingSet.front());
        interp.attach(&tool, &plan);
        const auto result = interp.run();
        // Keep the race set observable so the tool work is not dead.
        if (tool.races().size() > 1u << 20)
            std::abort();
        return result.delivered[0].total();
    });
}

Sample
measureGiri(const workloads::Workload &workload,
            const exec::InstrumentationPlan &plan)
{
    return measure([&] {
        dyn::GiriSlicer tool(*workload.module);
        exec::Interpreter interp(*workload.module,
                                 workload.testingSet.front());
        interp.attach(&tool, &plan);
        const auto result = interp.run();
        if (tool.traceLength() > 1ull << 40)
            std::abort();
        return result.delivered[0].total();
    });
}

} // namespace

int
main()
{
    bench::banner("Microbench: shadow-memory / trace hot-path throughput",
                  "per-event metadata work dominates dynamic-analysis "
                  "overhead (Section 2.3, Figure 2)");

    bench::JsonReport json("microbench_shadow");
    TextTable table({"workload", "variant", "wall ms", "events",
                     "events/sec"});

    std::uint64_t ftEvents = 0, giriEvents = 0;
    double ftMs = 0, giriMs = 0;

    auto row = [&](const std::string &name, const char *variant,
                   const Sample &sample) {
        table.addRow({name, variant, fmtDouble(sample.bestMs, 2),
                      std::to_string(sample.events),
                      fmtDouble(sample.eventsPerSec() / 1e6, 2) + "M"});
        json.add(name, variant, sample.bestMs, sample.events);
    };

    for (const std::string &name : workloads::raceWorkloadNames()) {
        const auto workload = workloads::makeRaceWorkload(name, 1, 1);
        const auto plan = dyn::fullFastTrackPlan(*workload.module);
        row(name, "interp-plain", measurePlain(workload));
        const Sample ft = measureFastTrack(workload, plan);
        row(name, "fasttrack-full", ft);
        ftEvents += ft.events;
        ftMs += ft.bestMs;
    }

    for (const std::string &name : workloads::sliceWorkloadNames()) {
        const auto workload = workloads::makeSliceWorkload(name, 1, 1);
        const auto plan = dyn::fullGiriPlan(*workload.module);
        row(name, "interp-plain", measurePlain(workload));
        const Sample giri = measureGiri(workload, plan);
        row(name, "giri-full", giri);
        giriEvents += giri.events;
        giriMs += giri.bestMs;
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("aggregate fasttrack-full: %.2fM events/sec "
                "(%llu events, %.1f ms)\n",
                ftMs > 0 ? ftEvents / ftMs / 1e3 : 0,
                static_cast<unsigned long long>(ftEvents), ftMs);
    std::printf("aggregate giri-full:      %.2fM events/sec "
                "(%llu events, %.1f ms)\n",
                giriMs > 0 ? giriEvents / giriMs / 1e3 : 0,
                static_cast<unsigned long long>(giriEvents), giriMs);

    json.write();
    return 0;
}
