/**
 * @file
 * Table 2 reproduction: end-to-end slicing analysis costs — the most
 * accurate analysis type (CS/CI) that runs for the sound and
 * predicated points-to and slicing analyses, their modeled times,
 * profiling time, break-even versus traditional hybrid slicing, and
 * the dynamic speedup.
 *
 * Paper reference: likely invariants let vim/nginx flip from CI to CS
 * analyses; break-even is 0s for several benchmarks and under three
 * minutes everywhere.
 */

#include "bench_common.h"

#include "analysis/andersen_cache.h"

using namespace oha;

int
main()
{
    bench::banner(
        "Table 2: OptSlice end-to-end analysis times and break-even",
        "predicated analyses run CS where sound ones cannot; "
        "break-even <= ~3 minutes");

    analysis::resetAndersenCache();

    TextTable table({"testname", "trad pts AT/t", "trad slice AT/t",
                     "profile", "opt pts AT/t", "opt slice AT/t",
                     "breakeven", "dyn speedup"});

    auto cell = [](const core::AnalysisPick &pick) {
        return std::string(pick.contextSensitive ? "CS " : "CI ") +
               fmtTime(pick.seconds);
    };

    bench::JsonReport json("table2_optslice_breakeven");
    for (const auto &name : workloads::sliceWorkloadNames()) {
        const auto workload = workloads::makeSliceWorkload(
            name, bench::kSliceProfileRuns, bench::kSliceTestRuns);
        const auto result =
            core::runOptSlice(workload, bench::standardOptSliceConfig());

        json.metric(name, "sound", "pts_s", result.soundPts.seconds);
        json.metric(name, "sound", "slice_s", result.soundSlice.seconds);
        json.metric(name, "optimistic", "pts_s", result.optPts.seconds);
        json.metric(name, "optimistic", "slice_s",
                    result.optSlice.seconds);
        json.metric(name, "optimistic", "profile_s",
                    result.profileSeconds);
        json.metric(name, "optimistic", "breakeven_s", result.breakEven);
        json.metric(name, "optimistic", "dyn_speedup",
                    result.dynSpeedup);

        table.addRow({result.name, cell(result.soundPts),
                      cell(result.soundSlice), fmtTime(result.profileSeconds),
                      cell(result.optPts), cell(result.optSlice),
                      result.breakEven < 0 ? std::string("-")
                                           : fmtTime(result.breakEven),
                      fmtSpeedup(result.dynSpeedup)});
    }

    const analysis::AndersenCacheStats stats =
        analysis::andersenCacheStats();
    json.metric("aggregate", "static-memo", "cache_hits",
                double(stats.hits));
    json.metric("aggregate", "static-memo", "cache_misses",
                double(stats.misses));

    std::printf("%s\n", table.str().c_str());
    std::printf("(AT = analysis type: the most accurate of CS/CI that "
                "completes within budget; times are modeled seconds)\n");
    std::printf("static-memo cache: %llu hits, %llu misses\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));
    json.write();
    return 0;
}
