/**
 * @file
 * Figure 11 reproduction: the effect of individual likely invariants
 * on static slice size.  Starting from the sound ("Base") slicer we
 * incrementally enable likely-unreachable code, likely callee sets,
 * and likely-unused call contexts; the last step also switches the
 * analysis to context-sensitive where it now completes within budget
 * (the paper's vim/nginx CI -> CS flip).
 *
 * Paper reference: each invariant shaves slice size; the call-context
 * invariant unlocks CS slicing for the biggest drop.
 */

#include "bench_common.h"

#include "analysis/slicer.h"
#include "profile/profiler.h"

using namespace oha;

namespace {

/** Mean static slice size over @p endpoints under @p invariants. */
std::pair<double, bool>
sliceSizeWith(const ir::Module &module,
              const std::vector<InstrId> &endpoints,
              const inv::InvariantSet *invariants, bool tryContextSensitive)
{
    analysis::AndersenOptions aopts;
    aopts.invariants = invariants;
    aopts.contextSensitive = tryContextSensitive;
    aopts.maxContexts = 4000;
    analysis::AndersenResult pts = analysis::runAndersen(module, aopts);
    bool cs = tryContextSensitive;
    if (!pts.completed) {
        aopts.contextSensitive = false;
        pts = analysis::runAndersen(module, aopts);
        cs = false;
    }

    analysis::SlicerOptions sopts;
    sopts.invariants = invariants;
    const analysis::StaticSlicer slicer(module, pts, sopts);
    double sum = 0;
    for (InstrId endpoint : endpoints)
        sum += double(slicer.slice(endpoint).instructions.size());
    return {sum / double(endpoints.size()), cs};
}

} // namespace

int
main()
{
    bench::banner("Figure 11: per-invariant effect on static slice size",
                  "LUC, callee sets, then call contexts each shrink "
                  "slices; contexts unlock CS analysis");

    TextTable table({"benchmark", "base", "+LUC", "+callee sets",
                     "+call contexts", "final AT"});

    bench::JsonReport json("fig11_invariant_ablation");
    for (const auto &name : workloads::sliceWorkloadNames()) {
        const auto workload = workloads::makeSliceWorkload(
            name, bench::kSliceProfileRuns, 2);
        const ir::Module &module = *workload.module;

        prof::ProfileOptions profOptions;
        profOptions.callContexts = true;
        prof::ProfilingCampaign campaign(module, profOptions);
        for (const auto &input : workload.profilingSet)
            campaign.addRun(input);
        const inv::InvariantSet &full = campaign.invariants();

        // Endpoints: all outputs (small modules; matches the other
        // slicing benches' selection closely enough for a trend plot).
        std::vector<InstrId> endpoints;
        for (InstrId id = 0; id < module.numInstrs(); ++id)
            if (module.instr(id).op == ir::Opcode::Output)
                endpoints.push_back(id);

        // Stage 0: sound CI baseline.
        const auto base = sliceSizeWith(module, endpoints, nullptr,
                                        false);

        // Stage 1: + likely-unreachable code.
        inv::InvariantSet luc;
        luc.numBlocks = full.numBlocks;
        luc.visitedBlocks = full.visitedBlocks;
        const auto withLuc =
            sliceSizeWith(module, endpoints, &luc, false);

        // Stage 2: + likely callee sets.
        inv::InvariantSet callees = luc;
        callees.calleeSets = full.calleeSets;
        const auto withCallees =
            sliceSizeWith(module, endpoints, &callees, false);

        // Stage 3: + likely-unused call contexts (CS now attempted).
        const auto withContexts =
            sliceSizeWith(module, endpoints, &full, true);

        table.addRow({name, fmtDouble(base.first, 0),
                      fmtDouble(withLuc.first, 0),
                      fmtDouble(withCallees.first, 0),
                      fmtDouble(withContexts.first, 0),
                      withContexts.second ? "CS" : "CI"});
        json.metric(name, "base", "slice_size", base.first);
        json.metric(name, "luc", "slice_size", withLuc.first);
        json.metric(name, "callee-sets", "slice_size",
                    withCallees.first);
        json.metric(name, "call-contexts", "slice_size",
                    withContexts.first);
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("(cells are mean static slice sizes in instructions "
                "over all endpoints; stages add invariants "
                "cumulatively)\n");
    json.write();
    return 0;
}
